//! API-compatible subset of [`proptest`](https://docs.rs/proptest), vendored
//! because the build container has no crates.io access.
//!
//! Differences from real proptest, by design:
//!
//! * **Deterministic generation** — every case's RNG seed is derived from the
//!   test name and the case index, so runs are exactly reproducible with no
//!   seed persistence files;
//! * **No shrinking** — a failing case reports its case index and seed and
//!   panics with the original assertion message;
//! * **Regex-lite strings** — `&str` strategies support the `[class]{lo,hi}`
//!   shape (which is what real-world strategies overwhelmingly use) and fall
//!   back to alphanumeric strings for anything fancier.
//!
//! The surface the workspace uses — `proptest!`, `prop_oneof!`,
//! `prop_assert!`/`prop_assert_eq!`, `any`, `Just`, ranges, tuples,
//! `collection::{vec, hash_set}`, `.prop_map`, `ProptestConfig::with_cases` —
//! behaves like the real crate.

use std::fmt;

/// Deterministic splitmix64 generator driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Seed for `case` of the test named `name` (stable across runs).
    pub fn for_case(name_hash: u64, case: u64) -> Self {
        TestRng::new(name_hash.wrapping_add(case.wrapping_mul(0xbf58_476d_1ce4_e5b9)))
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// FNV-1a, used to derive per-test RNG seeds from the test name.
pub fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// How many cases each property runs.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

impl ProptestConfig {
    /// A config running exactly `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }

    /// Type-erases this strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("BoxedStrategy { .. }")
    }
}

/// Uniform choice among type-erased alternatives; built by [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len());
        self.options[idx].generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The whole-domain strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        marker: std::marker::PhantomData,
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        })+
    };
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning many magnitudes.
        (rng.next_f64() - 0.5) * 2.0e18
    }
}

macro_rules! range_strategy {
    ($($t:ty),+) => {
        $(impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        })+
    };
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {
        $(impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        })+
    };
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_class_pattern(self)
            .unwrap_or_else(|| (DEFAULT_ALPHABET.chars().collect(), 0, 16));
        let len = lo + rng.below(hi - lo + 1);
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len())])
            .collect()
    }
}

const DEFAULT_ALPHABET: &str = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";

/// Parses the `[class]{lo,hi}` regex shape; returns `None` for anything else.
fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let (class, counts) = rest.split_once(']')?;
    let counts = counts.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = counts.split_once(',')?;
    let (lo, hi): (usize, usize) = (lo.trim().parse().ok()?, hi.trim().parse().ok()?);
    if hi < lo {
        return None;
    }
    let chars: Vec<char> = class.chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (a, b) = (chars[i], chars[i + 2]);
            if a > b {
                return None;
            }
            alphabet.extend((a..=b).filter(|c| c.is_ascii()));
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        None
    } else {
        Some((alphabet, lo, hi))
    }
}

pub mod collection {
    //! Collection strategies (`vec`, `hash_set`).

    use super::{Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.start + rng.below(self.size.end - self.size.start);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing `HashSet`s with target sizes drawn from `size`.
    ///
    /// Like real proptest, the set may come out smaller than the target when
    /// the element strategy keeps producing duplicates; a bounded number of
    /// redraws keeps generation total.
    pub fn hash_set<S: Strategy>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S::Value: Eq + Hash,
    {
        assert!(size.start < size.end, "empty size range");
        HashSetStrategy { element, size }
    }

    /// Strategy returned by [`hash_set`].
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.start + rng.below(self.size.end - self.size.start);
            let mut set = HashSet::with_capacity(target);
            let mut attempts = 0;
            while set.len() < target && attempts < target * 4 + 8 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Defines property tests: each function parameter is drawn from its
/// strategy for every case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __name_hash = $crate::fnv(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases as u64 {
                let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    let mut __rng = $crate::TestRng::for_case(__name_hash, __case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }));
                if let Err(panic) = __result {
                    eprintln!(
                        "proptest: {} failed at case {}/{} (deterministic; rerun reproduces it)",
                        stringify!($name),
                        __case + 1,
                        __cfg.cases,
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

/// Uniform choice among the listed strategies (all must yield one type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Asserts a condition inside a property (no shrinking, so this panics).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

pub mod prelude {
    //! Everything property tests normally import.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng, Union,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1_000 {
            let v = Strategy::generate(&(10u64..20), &mut rng);
            assert!((10..20).contains(&v));
            let s = Strategy::generate(&(-5i64..5), &mut rng);
            assert!((-5..5).contains(&s));
            let f = Strategy::generate(&(-1.0f64..1.0), &mut rng);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let strat = crate::collection::vec((0u64..100, any::<bool>()), 1..50);
        let a: Vec<_> = (0..10)
            .map(|c| Strategy::generate(&strat, &mut TestRng::for_case(42, c)))
            .collect();
        let b: Vec<_> = (0..10)
            .map(|c| Strategy::generate(&strat, &mut TestRng::for_case(42, c)))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn class_pattern_strings_match_alphabet_and_length() {
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-c0-1 ]{2,6}", &mut rng);
            assert!(s.len() >= 2 && s.len() <= 6);
            assert!(s.chars().all(|c| "abc01 ".contains(c)));
        }
    }

    #[test]
    fn oneof_covers_every_alternative() {
        let strat = prop_oneof![Just(0u8), Just(1u8), Just(2u8)];
        let mut rng = TestRng::new(11);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[Strategy::generate(&strat, &mut rng) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works(xs in crate::collection::vec(any::<u32>(), 0..10), flag in any::<bool>()) {
            prop_assert!(xs.len() < 10);
            let _ = flag;
        }
    }
}
