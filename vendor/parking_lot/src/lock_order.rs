//! Opt-in lock-order tracking (feature `lock-order`).
//!
//! With the feature enabled (the workspace turns it on for test builds via
//! the root crate's dev-dependencies; release builds never compile it), every
//! blocking `lock()` / `read()` / `write()` records an edge in a global
//! acquisition graph: *holding L1 while acquiring L2* adds `L1 → L2`.  Before
//! the edge is added, a reverse path `L2 →* L1` is searched; finding one
//! means two call sites disagree about the order these locks nest in — the
//! classic ABBA deadlock, reported as a panic **naming both acquisition
//! sites** (the current pair and the previously recorded pair) before the
//! process can actually wedge.  Recursive acquisition of one lock by one
//! thread is reported the same way.
//!
//! `try_lock` / `try_read` / `try_write` successes are pushed on the held
//! stack (so edges *from* them are tracked: holding a try-acquired lock
//! while blocking on another can still deadlock) but are never flagged as
//! acquisitions themselves — a failed `try_*` backs off instead of blocking,
//! so no cycle through that edge can wedge.
//!
//! [`Condvar::wait`](crate::Condvar::wait) releases the guard's lock for the
//! duration of the wait and re-records the acquisition on wakeup, so locks
//! held *across* a wait keep their ordering constraints while the waited-on
//! lock itself does not pin a stale edge.

/// Whether lock-order tracking is compiled in.
pub const fn enabled() -> bool {
    cfg!(feature = "lock-order")
}

/// Number of distinct acquisition-order edges recorded so far (0 when the
/// `lock-order` feature is off).  Tests use this to assert the tracker is
/// actually wired in, not silently compiled out.
#[cfg(not(feature = "lock-order"))]
pub fn edges_recorded() -> usize {
    0
}

#[cfg(feature = "lock-order")]
pub use imp::edges_recorded;

#[cfg(feature = "lock-order")]
pub(crate) use imp::{on_acquire, on_acquire_try, on_reacquire, on_release, on_wait_release};

#[cfg(feature = "lock-order")]
mod imp {
    use std::cell::RefCell;
    use std::collections::{HashMap, HashSet};
    use std::panic::Location;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock};

    type Site = &'static Location<'static>;

    /// The sites that first established an ordering edge: where the held
    /// lock had been acquired, and where the second lock was acquired on
    /// top of it.
    struct Edge {
        held_site: Site,
        acquired_site: Site,
    }

    #[derive(Default)]
    struct Graph {
        /// `edges[a][b]` exists when some thread acquired `b` holding `a`.
        edges: HashMap<u64, HashMap<u64, Edge>>,
        count: usize,
    }

    fn graph() -> &'static Mutex<Graph> {
        static GRAPH: OnceLock<Mutex<Graph>> = OnceLock::new();
        GRAPH.get_or_init(Mutex::default)
    }

    fn graph_lock() -> std::sync::MutexGuard<'static, Graph> {
        graph()
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Lock ids are assigned lazily on first acquisition because
    /// `Mutex::new` is `const`; slot value 0 means unassigned.
    static NEXT_ID: AtomicU64 = AtomicU64::new(1);

    fn lock_id(slot: &AtomicU64) -> u64 {
        let id = slot.load(Ordering::Relaxed);
        if id != 0 {
            return id;
        }
        let fresh = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        match slot.compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => fresh,
            Err(existing) => existing,
        }
    }

    struct HeldLock {
        id: u64,
        site: Site,
        shared: bool,
    }

    thread_local! {
        /// Locks this thread currently holds, in acquisition order.
        static HELD: RefCell<Vec<HeldLock>> = const { RefCell::new(Vec::new()) };
    }

    /// Number of distinct acquisition-order edges recorded so far.
    pub fn edges_recorded() -> usize {
        graph_lock().count
    }

    /// A blocking acquisition: recursion check, cycle check, edge
    /// recording, held-stack push — in that order, all *before* the caller
    /// blocks, so a would-be deadlock is a panic rather than a hang.
    /// `shared` is true for `RwLock::read` (read-after-read recursion is
    /// legal; any recursion involving an exclusive side is not).
    #[track_caller]
    pub(crate) fn on_acquire(slot: &AtomicU64, shared: bool) -> u64 {
        acquire(lock_id(slot), shared)
    }

    /// [`on_acquire`] for a lock whose id is already known — the
    /// `Condvar::wait` wakeup path, where only the guard (not the lock) is
    /// in scope.  Condvars only pair with mutexes, hence exclusive.
    #[track_caller]
    pub(crate) fn on_reacquire(id: u64) {
        acquire(id, false);
    }

    #[track_caller]
    fn acquire(id: u64, shared: bool) -> u64 {
        let site = Location::caller();
        HELD.with(|held| {
            let held = held.borrow();
            if let Some(first) = held.iter().find(|h| h.id == id && !(h.shared && shared)) {
                panic!(
                    "lock-order violation: recursive acquisition of lock #{id} at \
                     {site} (already held since {})",
                    first.site
                );
            }
            if held.is_empty() {
                return;
            }
            let mut g = graph_lock();
            let g = &mut *g;
            for h in held.iter() {
                if h.id == id {
                    // Read-after-read of one lock: no ordering edge.
                    continue;
                }
                if let Some((via, edge)) = find_reverse_path(g, id, h.id) {
                    panic!(
                        "lock-order violation (potential deadlock): acquiring lock \
                         #{id} at {site} while holding lock #{} acquired at \
                         {}, but the reverse order is already established: \
                         lock #{id} was held (acquired at {}) when lock #{via} was \
                         acquired at {}",
                        h.id, h.site, edge.held_site, edge.acquired_site
                    );
                }
                if let std::collections::hash_map::Entry::Vacant(slot) =
                    g.edges.entry(h.id).or_default().entry(id)
                {
                    slot.insert(Edge {
                        held_site: h.site,
                        acquired_site: site,
                    });
                    g.count += 1;
                }
            }
        });
        HELD.with(|held| held.borrow_mut().push(HeldLock { id, site, shared }));
        id
    }

    /// A successful `try_*` acquisition: pushed on the held stack (edges
    /// *from* it matter) but never checked or recorded as an edge target —
    /// a failed try backs off instead of blocking.
    #[track_caller]
    pub(crate) fn on_acquire_try(slot: &AtomicU64, shared: bool) -> u64 {
        let id = lock_id(slot);
        let site = Location::caller();
        HELD.with(|held| held.borrow_mut().push(HeldLock { id, site, shared }));
        id
    }

    /// Guard drop: remove the most recent held entry for `id`.  Guards can
    /// be dropped out of acquisition order, hence the reverse search.
    pub(crate) fn on_release(id: u64) {
        // `try_with`: a guard owned by e.g. a static can be dropped after
        // this thread's TLS is gone; losing that pop is harmless.
        let _ = HELD.try_with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|h| h.id == id) {
                held.remove(pos);
            }
        });
    }

    /// `Condvar::wait` releases the guard's lock while sleeping; the
    /// reacquisition on wakeup goes back through [`on_acquire`] so an
    /// order inversion against locks held across the wait is still caught.
    pub(crate) fn on_wait_release(id: u64) {
        on_release(id);
    }

    /// Is `to` reachable from `from`?  On success returns the first hop of
    /// a witness path: the direct successor `via` and the recorded sites of
    /// the `from → via` edge (for the panic message).
    fn find_reverse_path(g: &Graph, from: u64, to: u64) -> Option<(u64, &Edge)> {
        let out = g.edges.get(&from)?;
        if let Some(edge) = out.get(&to) {
            return Some((to, edge));
        }
        for (&via, edge) in out {
            // A node with no outgoing edges cannot reach `to` (`via == to`
            // was the direct-edge case above); skipping it keeps this scan
            // cheap even when `from` has accumulated many edges to
            // short-lived locks that were never acquired while held.
            if !g.edges.contains_key(&via) {
                continue;
            }
            if reaches(g, via, to, &mut HashSet::from([from])) {
                return Some((via, edge));
            }
        }
        None
    }

    fn reaches(g: &Graph, from: u64, to: u64, visited: &mut HashSet<u64>) -> bool {
        if from == to {
            return true;
        }
        if !visited.insert(from) {
            return false;
        }
        g.edges
            .get(&from)
            .is_some_and(|out| out.keys().any(|&n| reaches(g, n, to, visited)))
    }
}
