//! API-compatible subset of [`parking_lot`](https://docs.rs/parking_lot)
//! backed by `std::sync`, vendored because the build container has no
//! crates.io access.
//!
//! Only the surface the workspace uses is provided: [`Mutex`] / [`RwLock`]
//! with guard-returning (non-poisoning) `lock`/`read`/`write`, and a
//! [`Condvar`] whose `wait` takes `&mut MutexGuard` like parking_lot's does
//! (std's `Condvar::wait` consumes the guard instead).  Poisoning is
//! deliberately swallowed: a panicking holder does not turn every later
//! `lock()` into an error, matching parking_lot semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};
use std::time::Duration;

/// A mutual exclusion primitive. `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
///
/// Holds an `Option` internally so [`Condvar::wait`] can temporarily take the
/// underlying std guard out and put the reacquired one back.
pub struct MutexGuard<'a, T: ?Sized> {
    raw: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let raw = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { raw: Some(raw) }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { raw: Some(g) }),
            Err(TryLockError::Poisoned(poisoned)) => Some(MutexGuard {
                raw: Some(poisoned.into_inner()),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (requires `&mut`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.raw.as_deref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.raw.as_deref_mut().expect("guard taken during wait")
    }
}

/// A condition variable whose `wait` reacquires through a `&mut MutexGuard`,
/// matching parking_lot's signature.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard's mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let raw = guard.raw.take().expect("guard taken during wait");
        let raw = match self.inner.wait(raw) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.raw = Some(raw);
    }

    /// Like [`Condvar::wait`] with a timeout; returns `true` if it timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let raw = guard.raw.take().expect("guard taken during wait");
        let (raw, result) = match self.inner.wait_timeout(raw, timeout) {
            Ok((g, r)) => (g, r),
            Err(poisoned) => {
                let (g, r) = poisoned.into_inner();
                (g, r)
            }
        };
        guard.raw = Some(raw);
        result.timed_out()
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

/// A reader-writer lock. `read()`/`write()` return the guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-access guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    raw: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    raw: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let raw = match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        RwLockReadGuard { raw }
    }

    /// Acquires exclusive access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let raw = match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        RwLockWriteGuard { raw }
    }

    /// Attempts shared access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { raw: g }),
            Err(TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                raw: p.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { raw: g }),
            Err(TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                raw: p.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (requires `&mut`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.raw
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.raw
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.raw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let handle = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            *started = true;
            drop(started);
            cvar.notify_all();
        });
        let (lock, cvar) = &*pair;
        let mut started = lock.lock();
        while !*started {
            cvar.wait(&mut started);
        }
        assert!(*started);
        drop(started);
        handle.join().unwrap();
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!((*a, *b), (5, 5));
        }
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn lock_survives_a_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
