//! API-compatible subset of [`parking_lot`](https://docs.rs/parking_lot)
//! backed by `std::sync`, vendored because the build container has no
//! crates.io access.
//!
//! Only the surface the workspace uses is provided: [`Mutex`] / [`RwLock`]
//! with guard-returning (non-poisoning) `lock`/`read`/`write`, and a
//! [`Condvar`] whose `wait` takes `&mut MutexGuard` like parking_lot's does
//! (std's `Condvar::wait` consumes the guard instead).  Poisoning is
//! deliberately swallowed: a panicking holder does not turn every later
//! `lock()` into an error, matching parking_lot semantics.

pub mod lock_order;

use std::fmt;
use std::ops::{Deref, DerefMut};
#[cfg(feature = "lock-order")]
use std::sync::atomic::AtomicU64;
use std::sync::{self, TryLockError};
use std::time::Duration;

/// A mutual exclusion primitive. `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    /// Lazily assigned [`lock_order`] id (0 = unassigned); must precede
    /// `inner`, which is the unsized tail when `T: !Sized`.
    #[cfg(feature = "lock-order")]
    order_id: AtomicU64,
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
///
/// Holds an `Option` internally so [`Condvar::wait`] can temporarily take the
/// underlying std guard out and put the reacquired one back.
pub struct MutexGuard<'a, T: ?Sized> {
    #[cfg(feature = "lock-order")]
    order_id: u64,
    raw: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            #[cfg(feature = "lock-order")]
            order_id: AtomicU64::new(0),
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "lock-order")]
        let order_id = lock_order::on_acquire(&self.order_id, false);
        let raw = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard {
            #[cfg(feature = "lock-order")]
            order_id,
            raw: Some(raw),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let raw = match self.inner.try_lock() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
            Err(TryLockError::WouldBlock) => return None,
        };
        Some(MutexGuard {
            #[cfg(feature = "lock-order")]
            order_id: lock_order::on_acquire_try(&self.order_id, false),
            raw: Some(raw),
        })
    }

    /// Returns a mutable reference to the underlying data (requires `&mut`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.raw.as_deref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.raw.as_deref_mut().expect("guard taken during wait")
    }
}

#[cfg(feature = "lock-order")]
impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        lock_order::on_release(self.order_id);
    }
}

/// A condition variable whose `wait` reacquires through a `&mut MutexGuard`,
/// matching parking_lot's signature.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard's mutex while waiting.
    #[track_caller]
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        #[cfg(feature = "lock-order")]
        lock_order::on_wait_release(guard.order_id);
        let raw = guard.raw.take().expect("guard taken during wait");
        let raw = match self.inner.wait(raw) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.raw = Some(raw);
        #[cfg(feature = "lock-order")]
        lock_order::on_reacquire(guard.order_id);
    }

    /// Like [`Condvar::wait`] with a timeout; returns `true` if it timed out.
    #[track_caller]
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        #[cfg(feature = "lock-order")]
        lock_order::on_wait_release(guard.order_id);
        let raw = guard.raw.take().expect("guard taken during wait");
        let (raw, result) = match self.inner.wait_timeout(raw, timeout) {
            Ok((g, r)) => (g, r),
            Err(poisoned) => {
                let (g, r) = poisoned.into_inner();
                (g, r)
            }
        };
        guard.raw = Some(raw);
        #[cfg(feature = "lock-order")]
        lock_order::on_reacquire(guard.order_id);
        result.timed_out()
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

/// A reader-writer lock. `read()`/`write()` return the guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    /// Lazily assigned [`lock_order`] id (0 = unassigned); must precede
    /// `inner`, which is the unsized tail when `T: !Sized`.
    #[cfg(feature = "lock-order")]
    order_id: AtomicU64,
    inner: sync::RwLock<T>,
}

/// Shared-access guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    #[cfg(feature = "lock-order")]
    order_id: u64,
    raw: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    #[cfg(feature = "lock-order")]
    order_id: u64,
    raw: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            #[cfg(feature = "lock-order")]
            order_id: AtomicU64::new(0),
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access, blocking until available.
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(feature = "lock-order")]
        let order_id = lock_order::on_acquire(&self.order_id, true);
        let raw = match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        RwLockReadGuard {
            #[cfg(feature = "lock-order")]
            order_id,
            raw,
        }
    }

    /// Acquires exclusive access, blocking until available.
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(feature = "lock-order")]
        let order_id = lock_order::on_acquire(&self.order_id, false);
        let raw = match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        RwLockWriteGuard {
            #[cfg(feature = "lock-order")]
            order_id,
            raw,
        }
    }

    /// Attempts shared access without blocking.
    #[track_caller]
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let raw = match self.inner.try_read() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => return None,
        };
        Some(RwLockReadGuard {
            #[cfg(feature = "lock-order")]
            order_id: lock_order::on_acquire_try(&self.order_id, true),
            raw,
        })
    }

    /// Attempts exclusive access without blocking.
    #[track_caller]
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        let raw = match self.inner.try_write() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => return None,
        };
        Some(RwLockWriteGuard {
            #[cfg(feature = "lock-order")]
            order_id: lock_order::on_acquire_try(&self.order_id, false),
            raw,
        })
    }

    /// Returns a mutable reference to the underlying data (requires `&mut`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.raw
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.raw
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.raw
    }
}

#[cfg(feature = "lock-order")]
impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        lock_order::on_release(self.order_id);
    }
}

#[cfg(feature = "lock-order")]
impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        lock_order::on_release(self.order_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let handle = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            *started = true;
            drop(started);
            cvar.notify_all();
        });
        let (lock, cvar) = &*pair;
        let mut started = lock.lock();
        while !*started {
            cvar.wait(&mut started);
        }
        assert!(*started);
        drop(started);
        handle.join().unwrap();
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!((*a, *b), (5, 5));
        }
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn lock_survives_a_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }

    /// The seeded ABBA deadlock: nest A→B once, then attempt B→A.  The
    /// tracker must refuse the second nesting *before blocking* and name
    /// all four acquisition sites — the pair being attempted and the pair
    /// that established the original order.
    #[test]
    #[cfg(feature = "lock-order")]
    fn abba_lock_order_violation_names_both_sites() {
        let a = Mutex::new(());
        let b = Mutex::new(());

        // Establish the legal order: B acquired while A is held.  Each
        // line!() names the acquisition on the line right below it.
        let a_first_line = line!() + 1;
        let _guard_a = a.lock();
        let b_nested_line = line!() + 1;
        let guard_b = b.lock();
        drop(guard_b);
        drop(_guard_a);

        // Attempt the reverse order; the tracker must panic on `a.lock()`.
        let mut b_first_line = 0;
        let mut a_blocked_line = 0;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            b_first_line = line!() + 1;
            let _guard_b = b.lock();
            a_blocked_line = line!() + 1;
            let _guard_a = a.lock();
        }));
        let payload = result.expect_err("the ABBA order must be refused");
        let message = payload
            .downcast_ref::<String>()
            .expect("lock-order panics carry a formatted message");

        assert!(
            message.contains("lock-order violation"),
            "unexpected message: {message}"
        );
        // The sites of the attempted (reversed) nesting...
        let here = file!();
        assert!(
            message.contains(&format!("{here}:{a_blocked_line}:")),
            "blocked acquisition site missing from: {message}"
        );
        assert!(
            message.contains(&format!("{here}:{b_first_line}:")),
            "held-lock acquisition site missing from: {message}"
        );
        // ...and the sites that established the original A→B order.
        assert!(
            message.contains(&format!("{here}:{a_first_line}:")),
            "original held site missing from: {message}"
        );
        assert!(
            message.contains(&format!("{here}:{b_nested_line}:")),
            "original nested site missing from: {message}"
        );
    }

    #[test]
    #[cfg(feature = "lock-order")]
    fn recursive_acquisition_is_refused_before_it_wedges() {
        let m = Mutex::new(());
        let _held = m.lock();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| drop(m.lock())));
        let payload = result.expect_err("self-deadlock must be refused");
        let message = payload
            .downcast_ref::<String>()
            .expect("lock-order panics carry a formatted message");
        assert!(
            message.contains("recursive acquisition"),
            "unexpected message: {message}"
        );
    }

    #[test]
    #[cfg(feature = "lock-order")]
    fn lock_order_tracker_is_live_and_counts_edges() {
        assert!(lock_order::enabled());
        let outer = Mutex::new(());
        let inner = Mutex::new(());
        let before = lock_order::edges_recorded();
        let _o = outer.lock();
        let _i = inner.lock();
        assert!(
            lock_order::edges_recorded() > before,
            "nesting two fresh locks must record a new edge"
        );
    }
}
