//! API-compatible subset of [`crossbeam`](https://docs.rs/crossbeam) backed
//! by `std::sync`, vendored because the build container has no crates.io
//! access.
//!
//! Only `crossbeam::channel` is provided, and only the MPMC surface the
//! workspace uses: [`channel::bounded`], [`channel::unbounded`], cloneable
//! [`channel::Sender`] / [`channel::Receiver`], blocking `send`/`recv`, and
//! the blocking [`channel::Receiver::iter`] that terminates once every sender
//! is dropped and the queue drains.

pub mod channel {
    //! Multi-producer multi-consumer channels.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<ChannelState<T>>,
        /// Signalled when an item is pushed or the channel disconnects.
        not_empty: Condvar,
        /// Signalled when an item is popped or the channel disconnects.
        not_full: Condvar,
        capacity: Option<usize>,
    }

    struct ChannelState<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("receiving on an empty and disconnected channel")
        }
    }

    /// The sending half of a channel. Cloning adds another producer.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel. Cloning adds another consumer.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates a channel that holds at most `capacity` in-flight messages.
    ///
    /// Real crossbeam's `bounded(0)` is a rendezvous channel; this shim does
    /// not implement rendezvous hand-off, so it rejects capacity 0 loudly
    /// rather than silently changing the synchronization semantics.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        assert!(
            capacity > 0,
            "bounded(0) rendezvous channels are not supported by the vendored crossbeam shim"
        );
        new_channel(Some(capacity))
    }

    /// Creates a channel with unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_channel(None)
    }

    fn new_channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(ChannelState {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Blocks until there is room, then enqueues `value`. Fails only when
        /// every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.shared.capacity {
                    Some(cap) if state.items.len() >= cap => {
                        state = self.shared.not_full.wait(state).unwrap();
                    }
                    _ => break,
                }
            }
            state.items.push_back(value);
            drop(state);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message is available. Fails once the channel is
        /// empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    drop(state);
                    self.shared.not_full.notify_one();
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.not_empty.wait(state).unwrap();
            }
        }

        /// Attempts to receive without blocking.
        pub fn try_recv(&self) -> Option<T> {
            let mut state = self.shared.queue.lock().unwrap();
            let item = state.items.pop_front();
            if item.is_some() {
                drop(state);
                self.shared.not_full.notify_one();
            }
            item
        }

        /// A blocking iterator over received messages; ends when every sender
        /// is dropped and the queue is drained.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    /// Blocking iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { receiver: self }
        }
    }

    /// Owning blocking iterator over a [`Receiver`].
    pub struct IntoIter<T> {
        receiver: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                // Wake receivers blocked on an empty queue so they observe
                // the disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                // Wake senders blocked on a full queue so they observe the
                // disconnect.
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_within_a_single_producer() {
            let (tx, rx) = bounded(4);
            for i in 0..4 {
                tx.send(i).unwrap();
            }
            drop(tx);
            assert_eq!(rx.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        }

        #[test]
        fn iter_ends_when_all_senders_drop() {
            let (tx, rx) = bounded(8);
            let tx2 = tx.clone();
            let a = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let b = std::thread::spawn(move || {
                for i in 100..200 {
                    tx2.send(i).unwrap();
                }
            });
            let got: Vec<i32> = rx.iter().collect();
            a.join().unwrap();
            b.join().unwrap();
            assert_eq!(got.len(), 200);
        }

        #[test]
        fn bounded_send_blocks_until_recv() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let handle = std::thread::spawn(move || tx.send(2).unwrap());
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            handle.join().unwrap();
        }

        #[test]
        fn send_fails_after_receivers_drop() {
            let (tx, rx) = bounded::<u32>(1);
            drop(rx);
            assert!(tx.send(7).is_err());
        }

        #[test]
        fn multiple_consumers_partition_the_stream() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            for i in 0..50 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let h = std::thread::spawn(move || rx2.iter().count());
            let mine = rx.iter().count();
            let theirs = h.join().unwrap();
            assert_eq!(mine + theirs, 50);
        }
    }
}
