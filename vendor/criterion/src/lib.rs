//! API-compatible subset of [`criterion`](https://docs.rs/criterion),
//! vendored because the build container has no crates.io access.
//!
//! Instead of criterion's statistical machinery this harness runs each
//! benchmark for a fixed warm-up plus a sampled measurement window and prints
//! a `name ... median ns/iter` line, which is enough for `cargo bench` to
//! compile and produce comparable numbers offline.  The public surface
//! (`Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, `criterion_group!`, `criterion_main!`)
//! matches what the workspace's benches use.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    /// Median nanoseconds per iteration, recorded by [`Bencher::iter`].
    ns_per_iter: f64,
    sample_size: usize,
}

impl Bencher {
    /// Calls `routine` repeatedly and records the median time per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed call to warm caches and (for lazy routines) allocators.
        std_black_box(routine());
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std_black_box(routine());
            samples.push(start.elapsed().as_nanos() as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

/// Identifier for one parameterised benchmark case.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form, for groups benchmarking a single function.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(value: &str) -> Self {
        BenchmarkId {
            id: value.to_string(),
        }
    }
}

impl From<&String> for BenchmarkId {
    fn from(value: &String) -> Self {
        BenchmarkId { id: value.clone() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// The benchmark driver passed to every `criterion_group!` function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// No-op for CLI compatibility with real criterion's generated mains.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the default number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, |b| f(b));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted and ignored: the fixed sample count bounds runtime instead.
    pub fn measurement_time(&mut self, _: Duration) -> &mut Self {
        self
    }

    /// Accepted and ignored: the fixed sample count bounds runtime instead.
    pub fn warm_up_time(&mut self, _: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.sample_size, |b| {
            f(b)
        });
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (printing is per-benchmark, so this is a no-op).
    pub fn finish(self) {}
}

/// Name filters from the CLI (`cargo bench -- <filter>`), like real criterion.
fn name_filters() -> &'static [String] {
    use std::sync::OnceLock;
    static FILTERS: OnceLock<Vec<String>> = OnceLock::new();
    FILTERS.get_or_init(|| {
        std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect()
    })
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let filters = name_filters();
    if !filters.is_empty() && !filters.iter().any(|fl| name.contains(fl.as_str())) {
        return;
    }
    let mut bencher = Bencher {
        ns_per_iter: 0.0,
        sample_size,
    };
    let start = Instant::now();
    f(&mut bencher);
    println!(
        "bench: {name:<60} {:>14.0} ns/iter (total {:.2?})",
        bencher.ns_per_iter,
        start.elapsed()
    );
}

/// Collects benchmark functions into a group runner, like real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_the_closure() {
        let mut c = Criterion::default();
        let mut calls = 0usize;
        c.bench_function("noop", |b| {
            b.iter(|| calls += 1);
        });
        // warm-up + sample_size timed iterations
        assert_eq!(calls, 11);
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut seen = 0u64;
        group.bench_with_input(BenchmarkId::new("f", 7), &7u64, |b, &x| {
            b.iter(|| seen += x);
        });
        group.finish();
        assert_eq!(seen, 7 * 4);
    }
}
