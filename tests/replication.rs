//! Hot-standby failover and point-in-time-recovery differentials.
//!
//! The replication contract mirrors the crash-recovery one
//! (`tests/recovery.rs`), with the standby taking the place of the
//! restarted process: for every app (GS/SL/OB/TP) and shard count {1, 4},
//! the primary is killed at *every* punctuation-batch boundary in turn;
//! the standby — which has been continuously replaying shipped segments —
//! promotes and finishes the stream, and the result must be
//! **byte-identical** to an uninterrupted offline run of the same input.
//!
//! On top of failover: `recover_to(e)` must reproduce the primary's state
//! root for *every* intermediate epoch from the standby's mirrored (and
//! never truncated) directory, unacked segments must survive the primary's
//! checkpoint truncation, and an out-of-band write on the standby must be
//! detected as divergence that names the forked epoch.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use tstream_apps::workload::WorkloadSpec;
use tstream_apps::{gs, ob, sl, tp};
use tstream_core::prelude::*;
use tstream_core::restore_to_epoch;
use tstream_recovery::{list_segments, WalPayload};
use tstream_replica::{ChannelTransport, Shipper, StandbyEngine};
use tstream_state::state_root;

const INTERVAL: usize = 100;
const EVENTS: usize = 500;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tstream-replication-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn spec(shards: u32, seed: u64) -> WorkloadSpec {
    WorkloadSpec::default()
        .events(EVENTS)
        .keys(1_000)
        .seed(seed)
        .shards(shards)
}

fn config(shards: u32) -> EngineConfig {
    EngineConfig::with_executors(2)
        .punctuation(INTERVAL)
        .checkpoint_every(2)
        .shards(shards as usize)
}

/// Kill the primary at every batch boundary; the promoted standby must
/// finish the stream byte-identically to an uninterrupted offline run.
fn failover_at_every_boundary<A, F>(
    app: Arc<A>,
    build_store: F,
    payloads: Vec<A::Payload>,
    shards: u32,
    tag: &str,
) where
    A: Application,
    A::Payload: WalPayload,
    F: Fn() -> Arc<StateStore>,
{
    let baseline_engine = Engine::new(config(shards));
    let baseline_store = build_store();
    let baseline =
        baseline_engine.run_offline(&app, &baseline_store, payloads.clone(), &Scheme::TStream);
    let baseline_snapshot = StoreSnapshot::capture(&baseline_store);
    assert_eq!(baseline.events, EVENTS as u64);

    let batches = EVENTS.div_ceil(INTERVAL);
    for boundary in 1..batches {
        let primary_dir = temp_dir(&format!("{tag}-primary-{shards}-{boundary}"));
        let standby_dir = temp_dir(&format!("{tag}-standby-{shards}-{boundary}"));
        let transport = ChannelTransport::new();

        let standby_engine_handle = Engine::new(config(shards));
        let standby_store = build_store();
        let mut standby = StandbyEngine::follow(
            &standby_engine_handle,
            &app,
            &standby_store,
            &Scheme::TStream,
            &standby_dir,
            transport.clone(),
        )
        .expect("standby follows");

        {
            // Phase 1: the primary ships everything it seals, then dies at
            // the boundary (everything process-local drops; only its
            // directory and the shipped items survive).
            let primary_engine = Engine::new(config(shards));
            let primary_store = build_store();
            let mut session = primary_engine
                .session_builder(&app, &primary_store, &Scheme::TStream)
                .durable(&primary_dir)
                .open()
                .expect("durable primary");
            let log = session.log().expect("durable session has a log").clone();
            let _shipper = Shipper::attach(&log, transport.clone(), primary_engine.observability())
                .expect("shipper attaches");
            for payload in payloads.iter().take(boundary * INTERVAL).cloned() {
                session.push(payload).expect("primary push");
            }
            session.flush().expect("primary flush");
        }

        // Phase 2: the standby drains the pipeline, takes over and finishes
        // the stream.
        standby.pump().expect("standby pump");
        assert_eq!(standby.next_epoch(), boundary as u64);
        let mut promoted = standby.promote().expect("standby promotes");
        for payload in payloads.iter().skip(boundary * INTERVAL).cloned() {
            promoted.push(payload).expect("promoted push");
        }
        let report = promoted.report().expect("promoted report");

        let ctx = format!("{tag} shards={shards} primary killed after batch {boundary}");
        assert_eq!(report.events, baseline.events, "events: {ctx}");
        assert_eq!(report.committed, baseline.committed, "committed: {ctx}");
        assert_eq!(report.rejected, baseline.rejected, "rejected: {ctx}");
        assert_eq!(
            StoreSnapshot::capture(&standby_store),
            baseline_snapshot,
            "snapshot: {ctx}"
        );
        let _ = fs::remove_dir_all(&primary_dir);
        let _ = fs::remove_dir_all(&standby_dir);
    }
}

#[test]
fn gs_failover_is_byte_identical_at_every_boundary() {
    for shards in [1u32, 4] {
        let spec = spec(shards, 0xB1);
        failover_at_every_boundary(
            Arc::new(gs::GrepSum::default()),
            || gs::build_store(&spec),
            gs::generate(&spec),
            shards,
            "gs",
        );
    }
}

#[test]
fn sl_failover_is_byte_identical_at_every_boundary() {
    for shards in [1u32, 4] {
        let spec = spec(shards, 0xB2);
        failover_at_every_boundary(
            Arc::new(sl::StreamingLedger),
            || sl::build_store(&spec),
            sl::generate(&spec),
            shards,
            "sl",
        );
    }
}

#[test]
fn ob_failover_is_byte_identical_at_every_boundary() {
    for shards in [1u32, 4] {
        let spec = spec(shards, 0xB3);
        failover_at_every_boundary(
            Arc::new(ob::OnlineBidding),
            || ob::build_store(&spec),
            ob::generate(&spec),
            shards,
            "ob",
        );
    }
}

#[test]
fn tp_failover_is_byte_identical_at_every_boundary() {
    for shards in [1u32, 4] {
        let spec = spec(shards, 0xB4);
        failover_at_every_boundary(
            Arc::new(tp::TollProcessing),
            || tp::build_store(&spec),
            tp::generate(&spec),
            shards,
            "tp",
        );
    }
}

#[test]
fn recover_to_reproduces_every_intermediate_epoch_root() {
    // The standby's directory is a mirror that truncation never touches, so
    // every epoch of history stays materializable: `restore_to_epoch(e)`
    // must land exactly on the root the primary had at the end of epoch e.
    let spec = spec(1, 0xB5);
    let app = Arc::new(sl::StreamingLedger);
    let primary_dir = temp_dir("pit-primary");
    let standby_dir = temp_dir("pit-standby");
    let transport = ChannelTransport::new();

    let primary_engine = Engine::new(config(1));
    let primary_store = sl::build_store(&spec);
    let mut session = primary_engine
        .session_builder(&app, &primary_store, &Scheme::TStream)
        .durable(&primary_dir)
        .open()
        .unwrap();
    let log = session.log().unwrap().clone();
    let _shipper =
        Shipper::attach(&log, transport.clone(), primary_engine.observability()).unwrap();

    let standby_engine_handle = Engine::new(config(1));
    let standby_store = sl::build_store(&spec);
    let mut standby = StandbyEngine::follow(
        &standby_engine_handle,
        &app,
        &standby_store,
        &Scheme::TStream,
        &standby_dir,
        transport,
    )
    .unwrap();

    // Record the primary's root at every epoch boundary while the standby
    // follows along.
    let mut roots = Vec::new();
    for (i, event) in sl::generate(&spec).into_iter().enumerate() {
        session.push(event).unwrap();
        if (i + 1) % INTERVAL == 0 {
            session.flush().unwrap();
            standby.pump().unwrap();
            roots.push(state_root(&primary_store));
            assert_eq!(state_root(&standby_store), *roots.last().unwrap());
        }
    }
    let _ = session.report().unwrap();
    assert_eq!(roots.len(), EVENTS / INTERVAL);

    // Every intermediate epoch is reproducible from the mirror — including
    // the ones an ordinary recovery would have skipped past via the newest
    // checkpoint.
    for (epoch, expected) in roots.iter().enumerate() {
        let engine = Engine::new(config(1));
        let store = sl::build_store(&spec);
        let report = restore_to_epoch(
            &engine,
            &app,
            &store,
            &Scheme::TStream,
            &standby_dir,
            epoch as u64,
        )
        .expect("point-in-time restore");
        assert_eq!(
            state_root(&store),
            *expected,
            "recover_to({epoch}) must reproduce the primary's epoch-{epoch} root"
        );
        assert_eq!(report.events, ((epoch + 1) * INTERVAL) as u64);
    }

    let _ = fs::remove_dir_all(&primary_dir);
    let _ = fs::remove_dir_all(&standby_dir);
}

#[test]
fn unacked_segments_survive_truncation_and_lag_is_exported() {
    // A standby that stops pumping leaves every shipped epoch unacked: the
    // retention pin must hold those segments through the primary's
    // checkpoint truncation, and the lag gauge must say how far behind the
    // acks are.  Once the standby catches up, truncation resumes.
    let spec = spec(1, 0xB6);
    let app = Arc::new(gs::GrepSum::default());
    let primary_dir = temp_dir("retention-primary");
    let standby_dir = temp_dir("retention-standby");
    let transport = ChannelTransport::new();

    let primary_engine = Engine::new(config(1));
    let primary_store = gs::build_store(&spec);
    let mut session = primary_engine
        .session_builder(&app, &primary_store, &Scheme::TStream)
        .durable(&primary_dir)
        .open()
        .unwrap();
    let log = session.log().unwrap().clone();
    let shipper = Shipper::attach(&log, transport.clone(), primary_engine.observability()).unwrap();

    let standby_engine_handle = Engine::new(config(1));
    let standby_store = gs::build_store(&spec);
    let mut standby = StandbyEngine::follow(
        &standby_engine_handle,
        &app,
        &standby_store,
        &Scheme::TStream,
        &standby_dir,
        transport,
    )
    .unwrap();

    let events = gs::generate(&spec);
    // Three epochs shipped, none acked (the standby never pumps): the
    // checkpoint at epoch 1 must not truncate anything.
    for event in events.iter().take(3 * INTERVAL).cloned() {
        session.push(event).unwrap();
    }
    session.flush().unwrap();
    shipper.pump_acks().unwrap();
    assert_eq!(shipper.shipped_through(), Some(2));
    assert_eq!(shipper.acked_through(), None);
    assert_eq!(shipper.lag_epochs(), 3);
    assert!(
        primary_engine
            .metrics_text()
            .contains("tstream_replica_lag_epochs 3"),
        "{}",
        primary_engine.metrics_text()
    );
    let epochs: Vec<u64> = list_segments(&primary_dir.join("wal"))
        .unwrap()
        .iter()
        .filter(|s| s.sealed)
        .map(|s| s.epoch)
        .collect();
    assert_eq!(
        epochs,
        vec![0, 1, 2],
        "the pin must hold every unacked segment through the epoch-1 checkpoint"
    );

    // The standby catches up; acks release the pin and the next checkpoint
    // (epoch 3) truncates the acked history.
    standby.pump().unwrap();
    shipper.pump_acks().unwrap();
    assert_eq!(shipper.acked_through(), Some(2));
    assert_eq!(shipper.lag_epochs(), 0);
    for event in events.iter().skip(3 * INTERVAL).take(INTERVAL).cloned() {
        session.push(event).unwrap();
    }
    session.flush().unwrap();
    let epochs: Vec<u64> = list_segments(&primary_dir.join("wal"))
        .unwrap()
        .iter()
        .filter(|s| s.sealed)
        .map(|s| s.epoch)
        .collect();
    assert_eq!(epochs, vec![3], "acked history truncates normally again");

    let _ = fs::remove_dir_all(&primary_dir);
    let _ = fs::remove_dir_all(&standby_dir);
}

#[test]
fn an_out_of_band_standby_write_is_reported_as_divergence_by_epoch() {
    // Same detection contract as the unit-level pipeline test, but through
    // a real application: a write that bypasses replication forks the
    // standby, and the very next shipped epoch names the fork point on both
    // sides and refuses takeover.  SL deliberately — its transfers
    // accumulate, so one replayed-out-of-band event genuinely forks the
    // state (GS writes are idempotent and would mask the vandalism).
    let spec = spec(1, 0xB7);
    let app = Arc::new(sl::StreamingLedger);
    let primary_dir = temp_dir("diverge-primary");
    let standby_dir = temp_dir("diverge-standby");
    let transport = ChannelTransport::new();

    let primary_engine = Engine::new(config(1));
    let primary_store = sl::build_store(&spec);
    let mut session = primary_engine
        .session_builder(&app, &primary_store, &Scheme::TStream)
        .durable(&primary_dir)
        .open()
        .unwrap();
    let log = session.log().unwrap().clone();
    let shipper = Shipper::attach(&log, transport.clone(), primary_engine.observability()).unwrap();

    let standby_engine_handle = Engine::new(config(1));
    let standby_store = sl::build_store(&spec);
    let mut standby = StandbyEngine::follow(
        &standby_engine_handle,
        &app,
        &standby_store,
        &Scheme::TStream,
        &standby_dir,
        transport,
    )
    .unwrap();

    let events = sl::generate(&spec);
    for event in events.iter().take(INTERVAL).cloned() {
        session.push(event).unwrap();
    }
    session.flush().unwrap();
    standby.pump().unwrap();
    assert_eq!(standby.poisoned(), None);

    // The out-of-band write: one event applied to the standby's store
    // without going through replication.
    {
        let mut vandal = standby_engine_handle
            .session_builder(&app, &standby_store, &Scheme::TStream)
            .open()
            .unwrap();
        vandal.push(events[0].clone()).unwrap();
        let _ = vandal.report().unwrap();
    }

    for event in events.iter().skip(INTERVAL).take(INTERVAL).cloned() {
        session.push(event).unwrap();
    }
    session.flush().unwrap();
    let error = standby.pump().unwrap_err();
    assert!(error.to_string().contains("epoch 1"), "{error}");
    assert_eq!(standby.poisoned(), Some(1));
    let error = shipper.pump_acks().unwrap_err();
    assert!(error.to_string().contains("epoch 1"), "{error}");
    assert_eq!(shipper.divergence(), Some(1));
    let error = standby.promote().unwrap_err();
    assert!(error.to_string().contains("epoch 1"), "{error}");

    drop(session);
    let _ = fs::remove_dir_all(&primary_dir);
    let _ = fs::remove_dir_all(&standby_dir);
}
