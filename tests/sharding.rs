//! Cross-scheme differential tests for the sharded state store.
//!
//! Sharding is a *physical* layout choice: hash-partitioning the records,
//! routing chains shard-affine and even routing events by key-partition must
//! never change what a run computes — only where it computes it.  These tests
//! pin that down end to end: for identical seeded workloads, TStream running
//! on 1 / 2 / 4 / 8 shards (and whatever extra count `TSTREAM_TEST_SHARDS`
//! names) must produce a final state byte-identical to a **serial No-Lock
//! run** — one executor, single batch, per-transaction rollback — which is
//! the definition of the correct timestamp-order schedule.  Store snapshots
//! are key-sorted, so layouts with different physical record orders compare
//! directly.

use std::sync::Arc;

use tstream_apps::workload::WorkloadSpec;
use tstream_apps::{gs, ob, sl, tp, AppKind, SchemeKind};
use tstream_core::{Engine, EngineConfig, EventRouting, Scheme};
use tstream_state::Value;

/// Shard counts exercised by every differential test.  The CI matrix sets
/// `TSTREAM_TEST_SHARDS` to force an extra (or repeated) count, so the
/// sharded path is exercised even if the default list ever changes.
fn shard_counts() -> Vec<u32> {
    let mut counts = vec![1, 2, 4, 8];
    if let Ok(extra) = std::env::var("TSTREAM_TEST_SHARDS") {
        if let Ok(n) = extra.trim().parse::<u32>() {
            if n >= 1 && !counts.contains(&n) {
                counts.push(n);
            }
        }
    }
    counts
}

/// Run `app` under `scheme` with the given spec/engine and return the final
/// (key-sorted) store snapshot.
fn snapshot_after(
    app: AppKind,
    scheme: &Scheme,
    spec: &WorkloadSpec,
    engine: EngineConfig,
) -> Vec<(String, u64, Value)> {
    let engine = Engine::new(engine);
    match app {
        AppKind::Gs => {
            let store = gs::build_store(spec);
            let _ = engine.run(
                &Arc::new(gs::GrepSum::default()),
                &store,
                gs::generate(spec),
                scheme,
            );
            store.snapshot()
        }
        AppKind::Sl => {
            let store = sl::build_store(spec);
            let _ = engine.run(
                &Arc::new(sl::StreamingLedger),
                &store,
                sl::generate(spec),
                scheme,
            );
            store.snapshot()
        }
        AppKind::Ob => {
            let store = ob::build_store(spec);
            let _ = engine.run(
                &Arc::new(ob::OnlineBidding),
                &store,
                ob::generate(spec),
                scheme,
            );
            store.snapshot()
        }
        AppKind::Tp => {
            let store = tp::build_store(spec);
            let _ = engine.run(
                &Arc::new(tp::TollProcessing),
                &store,
                tp::generate(spec),
                scheme,
            );
            store.snapshot()
        }
    }
}

/// The serial reference: one executor, one shard, a single batch, No-Lock —
/// i.e. plain sequential execution in timestamp order with per-transaction
/// rollback.
fn serial_nolock_reference(app: AppKind, spec: &WorkloadSpec) -> Vec<(String, u64, Value)> {
    let serial_spec = spec.shards(1);
    let engine = EngineConfig::with_executors(1)
        .punctuation(serial_spec.events.max(1))
        .shards(1);
    snapshot_after(app, &SchemeKind::NoLock.build(1), &serial_spec, engine)
}

fn assert_sharded_tstream_matches_serial(app: AppKind, seed: u64) {
    let spec = WorkloadSpec::default().events(1_000).seed(seed);
    let reference = serial_nolock_reference(app, &spec);
    for shards in shard_counts() {
        let sharded_spec = spec.shards(shards);
        let engine = EngineConfig::with_executors(4)
            .punctuation(125)
            .shards(shards as usize);
        let got = snapshot_after(app, &Scheme::TStream, &sharded_spec, engine);
        assert_eq!(
            got,
            reference,
            "{}: TStream on {shards} shards diverged from the serial No-Lock run",
            app.label()
        );
    }
}

#[test]
fn gs_tstream_matches_serial_nolock_on_every_shard_count() {
    assert_sharded_tstream_matches_serial(AppKind::Gs, 0xA1);
}

#[test]
fn sl_tstream_matches_serial_nolock_on_every_shard_count() {
    assert_sharded_tstream_matches_serial(AppKind::Sl, 0xA2);
}

#[test]
fn ob_tstream_matches_serial_nolock_on_every_shard_count() {
    assert_sharded_tstream_matches_serial(AppKind::Ob, 0xA3);
}

#[test]
fn tp_tstream_matches_serial_nolock_on_every_shard_count() {
    assert_sharded_tstream_matches_serial(AppKind::Tp, 0xA4);
}

#[test]
fn every_consistent_scheme_matches_the_serial_reference_on_a_sharded_store() {
    // Cross-scheme: LOCK / MVLK / PAT / TStream all run against the same
    // 4-shard store and must agree with the serial No-Lock reference.
    let spec = WorkloadSpec::default().events(800).seed(0xB1);
    let reference = serial_nolock_reference(AppKind::Sl, &spec);
    let sharded_spec = spec.shards(4);
    for scheme in SchemeKind::CONSISTENT {
        let engine = EngineConfig::with_executors(4).punctuation(100).shards(4);
        let got = snapshot_after(
            AppKind::Sl,
            &scheme.build(sharded_spec.partitions),
            &sharded_spec,
            engine,
        );
        assert_eq!(
            got,
            reference,
            "{} on a 4-shard store diverged from the serial No-Lock run",
            scheme.label()
        );
    }
}

#[test]
fn shard_affine_event_routing_does_not_change_results() {
    // Routing events to the owners of their key shards changes *where* work
    // happens, never *what* is computed.
    let spec = WorkloadSpec::default().events(900).seed(0xC1);
    let reference = serial_nolock_reference(AppKind::Gs, &spec);
    for shards in shard_counts() {
        let sharded_spec = spec.shards(shards);
        let engine = EngineConfig::with_executors(4)
            .punctuation(150)
            .shards(shards as usize)
            .event_routing(EventRouting::ShardAffine);
        let got = snapshot_after(AppKind::Gs, &Scheme::TStream, &sharded_spec, engine);
        assert_eq!(
            got, reference,
            "shard-affine routing on {shards} shards diverged from the serial run"
        );
    }
}

#[test]
fn per_shard_chain_counts_cover_every_chain() {
    // The engine's per-shard placement report must account for real routing:
    // one entry per shard, every shard of a multi-shard GS run non-empty, and
    // the counts must agree with an independent recomputation from the
    // store's own router.
    let shards = 4u32;
    let spec = WorkloadSpec::default()
        .events(1_000)
        .seed(0xD1)
        .shards(shards);
    let store = gs::build_store(&spec);
    assert_eq!(store.num_shards(), shards);
    let engine = Engine::new(
        EngineConfig::with_executors(2)
            .punctuation(250)
            .shards(shards as usize),
    );
    let report = engine.run(
        &Arc::new(gs::GrepSum::default()),
        &store,
        gs::generate(&spec),
        &Scheme::TStream,
    );
    assert_eq!(report.per_shard_chains.len(), shards as usize);
    assert!(
        report.per_shard_chains.iter().all(|&c| c > 0),
        "every shard must receive chains: {:?}",
        report.per_shard_chains
    );

    // Independent recomputation: route every touched key through the store's
    // router and count distinct (table, key) states per (batch, shard).
    let router = store.router();
    let mut expected = vec![0u64; shards as usize];
    let events = gs::generate(&spec);
    for batch in events.chunks(250) {
        let mut states: Vec<u64> = batch.iter().flat_map(|e| e.keys.clone()).collect();
        states.sort_unstable();
        states.dedup();
        for key in states {
            expected[router.shard_of(key).index()] += 1;
        }
    }
    assert_eq!(report.per_shard_chains, expected);
}

#[test]
fn eager_schemes_report_zero_chain_placement() {
    let spec = WorkloadSpec::default().events(300).seed(0xE1).shards(2);
    let store = gs::build_store(&spec);
    let engine = Engine::new(EngineConfig::with_executors(2).punctuation(100).shards(2));
    let report = engine.run(
        &Arc::new(gs::GrepSum::default()),
        &store,
        gs::generate(&spec),
        &SchemeKind::Lock.build(2),
    );
    assert_eq!(report.per_shard_chains, vec![0, 0]);
}
