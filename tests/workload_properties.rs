//! Property-based tests over the core data structures and invariants, using
//! proptest: the concurrent skip list, the version chains, the Zipf sampler,
//! the queued record lock and the schedule produced by TStream on randomly
//! generated micro-workloads.

use std::collections::HashSet;
use std::sync::Arc;

use proptest::prelude::*;
use tstream_apps::conventional;
use tstream_apps::workload::{Rng, Zipf};
use tstream_core::{Engine, EngineConfig, Scheme};
use tstream_skiplist::ConcurrentSkipList;
use tstream_state::checkpoint::StoreSnapshot;
use tstream_state::codec;
use tstream_state::{StateStore, TableBuilder, TableId, Value, VersionChain};
use tstream_stream::operator::{AccessMode, ReadWriteSet, StateRef};
use tstream_txn::{Application, EventBlotter, PostAction, TxnBuilder};

/// proptest strategy producing an arbitrary state [`Value`].
fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Long),
        // Totally ordered doubles only (NaN breaks PartialEq round-trips by
        // definition, and application state never stores NaN).
        (-1.0e12f64..1.0e12).prop_map(Value::Double),
        "[a-zA-Z0-9 ]{0,40}".prop_map(|s: String| Value::Str(s.into())),
        proptest::collection::hash_set(any::<u64>(), 0..20).prop_map(Value::Set),
        (any::<i64>(), any::<i64>()).prop_map(|(a, b)| Value::Pair(a, b)),
    ]
}

proptest! {
    // Explicitly bounded so `cargo test -q` stays within CI time; the
    // engine-level properties below use an even smaller budget because every
    // case spins up executor threads.
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The skip list iterates exactly the distinct inserted keys, in order,
    /// no matter what order they were inserted in.
    #[test]
    fn skiplist_iterates_sorted_distinct_keys(keys in proptest::collection::vec(0u64..5_000, 1..400)) {
        let list = ConcurrentSkipList::new();
        let mut expected: Vec<u64> = Vec::new();
        for &k in &keys {
            let inserted = list.insert(k, k * 2);
            let fresh = !expected.contains(&k);
            prop_assert_eq!(inserted, fresh);
            if fresh {
                expected.push(k);
            }
        }
        expected.sort_unstable();
        let got: Vec<u64> = list.iter().map(|(k, _)| *k).collect();
        prop_assert_eq!(got, expected.clone());
        prop_assert_eq!(list.len(), expected.len());
        for k in &expected {
            prop_assert_eq!(list.get(k), Some(&(k * 2)));
        }
    }

    /// Version chains always return the newest version strictly older than
    /// the reader, regardless of install order.
    #[test]
    fn version_chain_visibility(installs in proptest::collection::vec((1u64..1_000, -1_000i64..1_000), 1..60),
                                read_ts in 0u64..1_200) {
        let mut chain = VersionChain::new();
        let mut reference: Vec<(u64, i64)> = Vec::new();
        for &(ts, v) in &installs {
            chain.install(ts, Value::Long(v));
            reference.push((ts, v));
        }
        // Expected: the value whose ts is the largest among those < read_ts;
        // ties broken by latest install (both the chain and this reference
        // keep later installs after earlier ones for equal timestamps).
        let expected = reference
            .iter()
            .filter(|(ts, _)| *ts < read_ts)
            .max_by_key(|(ts, _)| *ts)
            .map(|(ts, _)| {
                // last installed value for that timestamp
                reference.iter().rev().find(|(t, _)| t == ts).unwrap().1
            });
        let got = chain.visible_before(read_ts).map(|v| v.as_long().unwrap());
        prop_assert_eq!(got, expected);
    }

    /// The Zipf sampler only produces keys in range and is deterministic for
    /// a given seed.
    #[test]
    fn zipf_sampler_is_in_range_and_deterministic(n in 1usize..2_000, theta in 0.0f64..1.5, seed in any::<u64>()) {
        let zipf = Zipf::new(n, theta);
        let mut a = Rng::new(seed);
        let mut b = Rng::new(seed);
        for _ in 0..200 {
            let x = zipf.sample(&mut a);
            let y = zipf.sample(&mut b);
            prop_assert_eq!(x, y);
            prop_assert!((x as usize) < n);
        }
    }

    /// Every state value survives a codec round trip, byte for byte.
    #[test]
    fn codec_round_trips_arbitrary_values(values in proptest::collection::vec(value_strategy(), 0..40)) {
        let mut buf = Vec::new();
        for v in &values {
            codec::encode_value(&mut buf, v);
        }
        let mut reader = codec::Reader::new(&buf);
        for v in &values {
            let decoded = codec::decode_value(&mut reader).unwrap();
            prop_assert_eq!(&decoded, v);
        }
        prop_assert_eq!(reader.remaining(), 0);
    }

    /// A store snapshot decodes back to itself and restores onto a
    /// same-schema store exactly.
    #[test]
    fn snapshot_round_trips_and_restores(entries in proptest::collection::vec((0u64..64, value_strategy()), 1..48)) {
        // Deduplicate keys (tables reject duplicates).
        let mut seen = HashSet::new();
        let entries: Vec<(u64, Value)> = entries
            .into_iter()
            .filter(|(k, _)| seen.insert(*k))
            .collect();
        let build = |values: &[(u64, Value)]| {
            let table = TableBuilder::new("t")
                .extend(values.iter().cloned())
                .build()
                .unwrap();
            StateStore::new(vec![table]).unwrap()
        };
        let source = build(&entries);
        let snapshot = StoreSnapshot::capture(&source);
        let decoded = StoreSnapshot::decode(&snapshot.encode()).unwrap();
        prop_assert_eq!(&decoded, &snapshot);

        // Restore onto a store with the same keys but zeroed values.
        let blank: Vec<(u64, Value)> = entries.iter().map(|(k, _)| (*k, Value::Null)).collect();
        let target = build(&blank);
        decoded.restore(&target).unwrap();
        prop_assert_eq!(target.snapshot(), source.snapshot());
    }

    /// Key-based partitioning of the conventional pipeline is total and
    /// stable: every segment maps to exactly one executor, always the same.
    #[test]
    fn conventional_partitioning_is_stable(segments in proptest::collection::vec(any::<u64>(), 1..200),
                                           executors in 1usize..16) {
        for &segment in &segments {
            let owner = conventional::owner_of(segment, executors);
            prop_assert!(owner < executors);
            prop_assert_eq!(owner, conventional::owner_of(segment, executors));
        }
    }

    /// Read/write set classification: writes dominate reads for duplicate
    /// entries, and `touched` is the sorted union.
    #[test]
    fn read_write_set_classification(entries in proptest::collection::vec((0u32..3, 0u64..50, any::<bool>()), 0..40)) {
        let mut set = ReadWriteSet::new();
        for &(table, key, write) in &entries {
            set.push(
                StateRef::new(table, key),
                if write { AccessMode::Write } else { AccessMode::Read },
            );
        }
        let touched = set.touched();
        let mut expected: Vec<StateRef> = entries
            .iter()
            .map(|&(t, k, _)| StateRef::new(t, k))
            .collect();
        expected.sort_unstable();
        expected.dedup();
        prop_assert_eq!(touched, expected);
        for state in set.write_set() {
            prop_assert!(entries.iter().any(|&(t, k, w)| w && StateRef::new(t, k) == state));
        }
    }
}

/// A tiny order-sensitive application for the randomized schedule test: each
/// event applies `value = value * a + b` to one of a few hot keys.
#[derive(Clone)]
struct AffineEvent {
    key: u64,
    a: i64,
    b: i64,
}

struct AffineApp;

impl Application for AffineApp {
    type Payload = AffineEvent;

    fn name(&self) -> &'static str {
        "affine"
    }

    fn read_write_set(&self, e: &AffineEvent) -> ReadWriteSet {
        ReadWriteSet::new().write(StateRef::new(0, e.key))
    }

    fn state_access(&self, e: &AffineEvent, txn: &mut TxnBuilder) {
        let (a, b) = (e.a, e.b);
        txn.read_modify(0, e.key, None, move |ctx| {
            Ok(Value::Long(
                ctx.current.as_long()?.wrapping_mul(a).wrapping_add(b),
            ))
        });
    }

    fn post_process(&self, _e: &AffineEvent, _b: &EventBlotter) -> PostAction {
        PostAction::Emit
    }
}

fn affine_store(keys: u64) -> Arc<StateStore> {
    let t = TableBuilder::new("t")
        .extend((0..keys).map(|k| (k, Value::Long(1))))
        .build()
        .unwrap();
    StateStore::new(vec![t]).unwrap()
}

/// A multi-write application for the abort-replay property test: each event
/// adds a delta to several keys, and the whole transaction aborts if any key
/// would go negative.  Whether an event commits therefore depends on the
/// state produced by all earlier events — the serial fold below is the ground
/// truth TStream must reproduce even though its chains are processed in
/// parallel and aborted transactions must be rolled back across chains.
#[derive(Clone)]
struct MultiAddEvent {
    adds: Vec<(u64, i64)>,
}

struct MultiAddApp;

impl Application for MultiAddApp {
    type Payload = MultiAddEvent;

    fn name(&self) -> &'static str {
        "multi-add"
    }

    fn read_write_set(&self, e: &MultiAddEvent) -> ReadWriteSet {
        let mut set = ReadWriteSet::new();
        for &(key, _) in &e.adds {
            set.push(StateRef::new(0, key), AccessMode::Write);
        }
        set
    }

    fn state_access(&self, e: &MultiAddEvent, txn: &mut TxnBuilder) {
        for &(key, delta) in &e.adds {
            txn.read_modify(0, key, None, move |ctx| {
                let next = ctx.current.as_long()? + delta;
                if next < 0 {
                    Err(tstream_state::StateError::ConsistencyViolation(
                        "balance would go negative".into(),
                    ))
                } else {
                    Ok(Value::Long(next))
                }
            });
        }
    }

    fn post_process(&self, _e: &MultiAddEvent, _b: &EventBlotter) -> PostAction {
        PostAction::Emit
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// TStream's restructured, parallel execution of randomly generated
    /// order-sensitive transactions matches the serial fold, for arbitrary
    /// event sequences, key counts and punctuation intervals.
    #[test]
    fn tstream_schedule_matches_serial_fold(
        events in proptest::collection::vec((0u64..4, 1i64..5, -10i64..10), 1..300),
        interval in 1usize..64,
        executors in 1usize..6,
    ) {
        let keys = 4u64;
        let payloads: Vec<AffineEvent> = events
            .iter()
            .map(|&(key, a, b)| AffineEvent { key, a, b })
            .collect();

        // Serial reference.
        let mut expected = vec![1i64; keys as usize];
        for e in &payloads {
            let v = &mut expected[e.key as usize];
            *v = v.wrapping_mul(e.a).wrapping_add(e.b);
        }

        let store = affine_store(keys);
        let engine = Engine::new(EngineConfig::with_executors(executors).punctuation(interval));
        let report = engine.run(&Arc::new(AffineApp), &store, payloads, &Scheme::TStream);
        prop_assert_eq!(report.rejected, 0);
        for k in 0..keys {
            let got = store.record(TableId(0), k).unwrap().read_committed().as_long().unwrap();
            prop_assert_eq!(got, expected[k as usize], "key {}", k);
        }
    }

    /// Multi-write transactions with state-dependent aborts: TStream's final
    /// state and commit/abort counts match the serial fold for arbitrary
    /// event sequences, even though aborted transactions must be rolled back
    /// across operation chains (Section IV-F).
    #[test]
    fn tstream_multi_write_aborts_match_serial_fold(
        events in proptest::collection::vec(
            proptest::collection::vec((0u64..4, -6i64..8), 1..4),
            1..120,
        ),
        interval in 1usize..48,
        executors in 1usize..6,
    ) {
        let keys = 4u64;
        let payloads: Vec<MultiAddEvent> = events
            .iter()
            .map(|adds| MultiAddEvent { adds: adds.clone() })
            .collect();

        // Serial reference: apply each event atomically, skipping events that
        // would drive any touched key negative at its position in the order.
        let mut expected = vec![3i64; keys as usize];
        let mut expected_rejects = 0u64;
        for e in &payloads {
            let mut tentative = expected.clone();
            let mut ok = true;
            for &(key, delta) in &e.adds {
                let slot = &mut tentative[key as usize];
                *slot += delta;
                if *slot < 0 {
                    ok = false;
                    break;
                }
            }
            if ok {
                expected = tentative;
            } else {
                expected_rejects += 1;
            }
        }

        let table = TableBuilder::new("t")
            .extend((0..keys).map(|k| (k, Value::Long(3))))
            .build()
            .unwrap();
        let store = StateStore::new(vec![table]).unwrap();
        let engine = Engine::new(EngineConfig::with_executors(executors).punctuation(interval));
        let report = engine.run(&Arc::new(MultiAddApp), &store, payloads, &Scheme::TStream);
        prop_assert_eq!(report.rejected, expected_rejects);
        for k in 0..keys {
            let got = store.record(TableId(0), k).unwrap().read_committed().as_long().unwrap();
            prop_assert_eq!(got, expected[k as usize], "key {}", k);
        }
    }
}
