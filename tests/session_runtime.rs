//! Differential tests for the pipelined streaming runtime.
//!
//! The `Session` path (online batch formation + persistent executor
//! pool) and the seed's offline path (pre-materialized batches + scoped
//! per-run threads) execute the same per-batch step functions, so for
//! identical inputs they must produce **byte-identical** results: the same
//! committed/rejected counts and the same key-sorted store snapshot, for
//! every app × scheme × shard count.  These tests pin that down, plus the
//! runtime property the refactor exists for: executor threads are spawned
//! once per engine — never per run, session or batch.

use std::sync::Arc;

use tstream_apps::workload::WorkloadSpec;
use tstream_apps::{gs, ob, sl, tp, AppKind, SchemeKind};
use tstream_core::prelude::*;
use tstream_core::Scheme;
use tstream_state::Value;

type Snapshot = Vec<(String, u64, Value)>;

/// Shard counts exercised by the differential matrix; `TSTREAM_TEST_SHARDS`
/// (set by the `session-smoke` CI job) forces an extra count.
fn shard_counts() -> Vec<u32> {
    let mut counts = vec![1, 4];
    if let Ok(extra) = std::env::var("TSTREAM_TEST_SHARDS") {
        if let Ok(n) = extra.trim().parse::<u32>() {
            if n >= 1 && !counts.contains(&n) {
                counts.push(n);
            }
        }
    }
    counts
}

/// Drive one (app, scheme) combination through the chosen path and return
/// `(committed, rejected, key-sorted snapshot)`.
fn run_path(
    app: AppKind,
    scheme: &Scheme,
    spec: &WorkloadSpec,
    engine_config: EngineConfig,
    session: bool,
) -> (u64, u64, Snapshot) {
    fn go<A: Application>(
        application: A,
        store: Arc<StateStore>,
        payloads: Vec<A::Payload>,
        scheme: &Scheme,
        engine_config: EngineConfig,
        session: bool,
    ) -> (u64, u64, Snapshot) {
        let engine = Engine::new(engine_config);
        let app = Arc::new(application);
        let report = if session {
            // The explicit streaming API: push every payload, then report.
            let mut session = engine.session_builder(&app, &store, scheme).open().unwrap();
            for payload in payloads {
                session.push(payload).unwrap();
            }
            session.report().unwrap()
        } else {
            engine.run_offline(&app, &store, payloads, scheme)
        };
        (report.committed, report.rejected, store.snapshot())
    }
    match app {
        AppKind::Gs => go(
            gs::GrepSum::default(),
            gs::build_store(spec),
            gs::generate(spec),
            scheme,
            engine_config,
            session,
        ),
        AppKind::Sl => go(
            sl::StreamingLedger,
            sl::build_store(spec),
            sl::generate(spec),
            scheme,
            engine_config,
            session,
        ),
        AppKind::Ob => go(
            ob::OnlineBidding,
            ob::build_store(spec),
            ob::generate(spec),
            scheme,
            engine_config,
            session,
        ),
        AppKind::Tp => go(
            tp::TollProcessing,
            tp::build_store(spec),
            tp::generate(spec),
            scheme,
            engine_config,
            session,
        ),
    }
}

/// TStream is compared with the full 4-executor pipeline; No-Lock — the
/// consistency-free upper bound whose concurrent runs are deliberately racy
/// — is compared serially (1 executor), the only configuration in which its
/// results are deterministic (the same convention as `tests/sharding.rs`).
fn assert_session_matches_offline(app: AppKind, kind: SchemeKind, seed: u64) {
    let executors = match kind {
        SchemeKind::NoLock => 1,
        _ => 4,
    };
    for shards in shard_counts() {
        let spec = WorkloadSpec::default()
            .events(600)
            .seed(seed)
            .shards(shards);
        let engine = EngineConfig::with_executors(executors)
            .punctuation(125)
            .shards(shards as usize);
        let scheme = kind.build(spec.partitions);
        let offline = run_path(app, &scheme, &spec, engine, false);
        let streamed = run_path(app, &scheme, &spec, engine, true);
        assert_eq!(
            streamed.0,
            offline.0,
            "{} / {} on {shards} shards: committed diverged",
            app.label(),
            kind.label()
        );
        assert_eq!(
            streamed.1,
            offline.1,
            "{} / {} on {shards} shards: rejected diverged",
            app.label(),
            kind.label()
        );
        assert_eq!(
            streamed.2,
            offline.2,
            "{} / {} on {shards} shards: store snapshots diverged",
            app.label(),
            kind.label()
        );
    }
}

#[test]
fn gs_session_matches_offline_under_tstream() {
    assert_session_matches_offline(AppKind::Gs, SchemeKind::TStream, 0xF1);
}

#[test]
fn sl_session_matches_offline_under_tstream() {
    assert_session_matches_offline(AppKind::Sl, SchemeKind::TStream, 0xF2);
}

#[test]
fn ob_session_matches_offline_under_tstream() {
    assert_session_matches_offline(AppKind::Ob, SchemeKind::TStream, 0xF3);
}

#[test]
fn tp_session_matches_offline_under_tstream() {
    assert_session_matches_offline(AppKind::Tp, SchemeKind::TStream, 0xF4);
}

#[test]
fn gs_session_matches_offline_under_nolock() {
    assert_session_matches_offline(AppKind::Gs, SchemeKind::NoLock, 0xF5);
}

#[test]
fn sl_session_matches_offline_under_nolock() {
    assert_session_matches_offline(AppKind::Sl, SchemeKind::NoLock, 0xF6);
}

#[test]
fn ob_session_matches_offline_under_nolock() {
    assert_session_matches_offline(AppKind::Ob, SchemeKind::NoLock, 0xF7);
}

#[test]
fn tp_session_matches_offline_under_nolock() {
    assert_session_matches_offline(AppKind::Tp, SchemeKind::NoLock, 0xF8);
}

/// A tiny inline application for the runtime-behaviour tests: every event
/// increments one of `keys` counters, so the store's sum equals the number
/// of committed events at any flush point.
struct Counter;

impl Application for Counter {
    type Payload = u64;
    fn name(&self) -> &'static str {
        "counter"
    }
    fn read_write_set(&self, key: &u64) -> ReadWriteSet {
        ReadWriteSet::new().write(StateRef::new(0, *key))
    }
    fn state_access(&self, key: &u64, txn: &mut TxnBuilder) {
        txn.read_modify(0, *key, None, |ctx| {
            Ok(Value::Long(ctx.current.as_long()? + 1))
        });
    }
    fn post_process(&self, _key: &u64, _b: &EventBlotter) -> PostAction {
        PostAction::Emit
    }
}

fn counter_store(keys: u64) -> Arc<StateStore> {
    let table = TableBuilder::new("counters")
        .extend((0..keys).map(|k| (k, Value::Long(0))))
        .build()
        .unwrap();
    StateStore::new(vec![table]).unwrap()
}

fn counter_sum(store: &StateStore) -> i64 {
    store
        .table_by_name("counters")
        .unwrap()
        .iter()
        .map(|(_, r)| r.read_committed().as_long().unwrap())
        .sum()
}

/// The property the persistent pool exists for: however many runs and
/// sessions an engine serves, its executor threads are spawned exactly once.
#[test]
fn executor_threads_are_spawned_once_per_engine_not_per_run_or_batch() {
    let executors = 3usize;
    let engine = Engine::new(EngineConfig::with_executors(executors).punctuation(50));
    let app = Arc::new(Counter);
    assert_eq!(
        engine.runtime_threads_spawned(),
        0,
        "the pool is spawned lazily, on first use"
    );

    // Three full runs (each many batches) plus an explicit session.
    for round in 0..3u64 {
        let store = counter_store(16);
        let report = engine.run(
            &app,
            &store,
            (0..400).map(|i| i % 16).collect(),
            &Scheme::TStream,
        );
        assert_eq!(report.committed, 400, "round {round}");
        assert_eq!(
            engine.runtime_threads_spawned(),
            executors as u64,
            "round {round}: threads must not be respawned per run"
        );
    }
    let store = counter_store(16);
    let mut session = engine
        .session_builder(&app, &store, &Scheme::TStream)
        .open()
        .unwrap();
    for i in 0..200u64 {
        session.push(i % 16).unwrap();
    }
    let report = session.report().unwrap();
    assert_eq!(report.committed, 200);
    assert_eq!(engine.runtime_threads_spawned(), executors as u64);
}

/// `flush` is a true synchronisation point: everything pushed so far is
/// visible in the store, and the session keeps accepting events afterwards.
#[test]
fn flush_makes_all_pushed_events_visible_and_session_continues() {
    let engine = Engine::new(EngineConfig::with_executors(2).punctuation(32));
    let app = Arc::new(Counter);
    let store = counter_store(8);
    let mut session = engine
        .session_builder(&app, &store, &Scheme::TStream)
        .open()
        .unwrap();

    // 80 events = 2.5 batches: flush must close the partial batch too.
    for i in 0..80u64 {
        session.push(i % 8).unwrap();
    }
    session.flush().unwrap();
    assert_eq!(counter_sum(&store), 80, "flush drains every pushed event");
    assert_eq!(session.pushed(), 80);
    assert!(session.batches_dispatched() >= 3);

    for i in 0..40u64 {
        session.push(i % 8).unwrap();
    }
    let report = session.report().unwrap();
    assert_eq!(report.committed, 120);
    assert_eq!(report.events, 120);
    assert_eq!(counter_sum(&store), 120);
}

/// Sessions of one engine register with the pool's scheduler and
/// unregister on drop; a dropped session must leave the pool reusable.
#[test]
fn sequential_sessions_reuse_the_pool_cleanly() {
    let engine = Engine::new(EngineConfig::with_executors(2).punctuation(16));
    let app = Arc::new(Counter);
    for _ in 0..4 {
        let store = counter_store(4);
        let mut session = engine
            .session_builder(&app, &store, &Scheme::TStream)
            .open()
            .unwrap();
        for i in 0..50u64 {
            session.push(i % 4).unwrap();
        }
        // One session is reported, the next only flushed, the next dropped
        // mid-stream: all must leave the pool in a clean state.
        session.flush().unwrap();
        drop(session);
        assert_eq!(counter_sum(&store), 50);
    }
    assert_eq!(engine.runtime_threads_spawned(), 2);
}

/// `Engine::run` is a thin wrapper over the session path, so pushing the
/// same payloads manually must reproduce its report exactly.
#[test]
fn manual_session_reproduces_engine_run() {
    let spec = WorkloadSpec::default().events(500).seed(0xAB);
    let payloads = sl::generate(&spec);
    let app = Arc::new(sl::StreamingLedger);

    let store_run = sl::build_store(&spec);
    let engine = Engine::new(EngineConfig::with_executors(4).punctuation(100));
    let run_report = engine.run(&app, &store_run, payloads.clone(), &Scheme::TStream);

    let store_session = sl::build_store(&spec);
    let mut session = engine
        .session_builder(&app, &store_session, &Scheme::TStream)
        .open()
        .unwrap();
    for p in payloads {
        session.push(p).unwrap();
    }
    let session_report = session.report().unwrap();

    assert_eq!(session_report.committed, run_report.committed);
    assert_eq!(session_report.rejected, run_report.rejected);
    assert_eq!(session_report.events, run_report.events);
    assert_eq!(store_session.snapshot(), store_run.snapshot());
}

/// A counter variant that panics on a poison-pill payload, for the
/// panic-propagation tests.
struct PanickyCounter;

impl Application for PanickyCounter {
    type Payload = u64;
    fn name(&self) -> &'static str {
        "panicky-counter"
    }
    fn pre_process(&self, payload: &u64) -> bool {
        assert!(*payload != u64::MAX, "poison pill event");
        true
    }
    fn read_write_set(&self, key: &u64) -> ReadWriteSet {
        ReadWriteSet::new().write(StateRef::new(0, *key))
    }
    fn state_access(&self, key: &u64, txn: &mut TxnBuilder) {
        txn.read_modify(0, *key, None, |ctx| {
            Ok(Value::Long(ctx.current.as_long()? + 1))
        });
    }
    fn post_process(&self, _key: &u64, _b: &EventBlotter) -> PostAction {
        PostAction::Emit
    }
}

/// A panicking application must surface as a panic on the caller's thread
/// (as the scoped offline path always did), not as a hang — and the
/// engine's pool must survive and serve the next run.
#[test]
fn application_panic_propagates_and_pool_survives() {
    let engine = Engine::new(EngineConfig::with_executors(2).punctuation(8));
    let app = Arc::new(PanickyCounter);

    let store = counter_store(4);
    let mut payloads: Vec<u64> = (0..40).map(|i| i % 4).collect();
    payloads[21] = u64::MAX; // poison pill mid-stream
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        engine.run(&app, &store, payloads, &Scheme::TStream)
    }));
    assert!(outcome.is_err(), "the application panic must propagate");

    // The pool survived: the same engine serves a clean follow-up run.
    let store = counter_store(4);
    let report = engine.run(
        &app,
        &store,
        (0..40).map(|i| i % 4).collect(),
        &Scheme::TStream,
    );
    assert_eq!(report.committed, 40);
    assert_eq!(counter_sum(&store), 40);
    assert_eq!(engine.runtime_threads_spawned(), 2);
}

/// Dropping a session without flushing still executes the trailing partial
/// batch — pushed events are never silently discarded.
#[test]
fn dropping_a_session_completes_the_partial_batch() {
    let engine = Engine::new(EngineConfig::with_executors(2).punctuation(32));
    let app = Arc::new(Counter);
    let store = counter_store(4);
    let mut session = engine
        .session_builder(&app, &store, &Scheme::TStream)
        .open()
        .unwrap();
    for i in 0..10u64 {
        session.push(i % 4).unwrap(); // well below one punctuation interval
    }
    drop(session);
    assert_eq!(
        counter_sum(&store),
        10,
        "drop must flush the partial batch, not discard it"
    );
}

/// Offline runs and sessions share one engine freely: offline runs never
/// touch the pool, and each path owns the store it runs against.
#[test]
fn offline_runs_and_sessions_share_one_engine() {
    let engine = Engine::new(EngineConfig::with_executors(2).punctuation(25));
    let app = Arc::new(Counter);

    let store = counter_store(8);
    let offline = engine.run_offline(
        &app,
        &store,
        (0..100).map(|i| i % 8).collect(),
        &Scheme::TStream,
    );
    assert_eq!(offline.committed, 100);

    let store = counter_store(8);
    let mut session = engine
        .session_builder(&app, &store, &Scheme::TStream)
        .open()
        .unwrap();
    for i in 0..100u64 {
        session.push(i % 8).unwrap();
    }
    let streamed = session.report().unwrap();
    assert_eq!(streamed.committed, 100);

    // Offline runs never touch the pool; only the session spawned threads.
    assert_eq!(engine.runtime_threads_spawned(), 2);
}

/// Engine clones share one pool (and one scheduler) even when the clone is
/// made before the pool is first spawned.
#[test]
fn engine_clones_share_one_pool_even_before_first_run() {
    let engine = Engine::new(EngineConfig::with_executors(2).punctuation(25));
    let clone = engine.clone(); // pool not spawned yet
    let app = Arc::new(Counter);

    let store = counter_store(4);
    let report = clone.run(
        &app,
        &store,
        (0..50).map(|i| i % 4).collect(),
        &Scheme::TStream,
    );
    assert_eq!(report.committed, 50);
    assert_eq!(
        engine.runtime_threads_spawned(),
        2,
        "the original must see the pool its clone spawned"
    );

    let store = counter_store(4);
    let _ = engine.run(
        &app,
        &store,
        (0..50).map(|i| i % 4).collect(),
        &Scheme::TStream,
    );
    assert_eq!(engine.runtime_threads_spawned(), 2);
    assert_eq!(clone.runtime_threads_spawned(), 2);
}

/// A panic on the ingestion thread abandons the session (its barrier is
/// poisoned and the in-flight jobs drain before the session unregisters)
/// without wedging the engine.
#[test]
fn panicking_ingestion_thread_leaves_the_engine_usable() {
    let engine = Engine::new(EngineConfig::with_executors(2).punctuation(8));
    let app = Arc::new(Counter);
    let store = counter_store(4);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut session = engine
            .session_builder(&app, &store, &Scheme::TStream)
            .open()
            .unwrap();
        for i in 0..40u64 {
            session.push(i % 4).unwrap(); // several batches in flight
        }
        panic!("ingestion failure");
    }));
    assert!(result.is_err());

    // The session unregistered only after the orphaned jobs drained, so
    // the engine serves the next run (offline and pipelined) normally.
    let store = counter_store(4);
    let offline = engine.run_offline(
        &app,
        &store,
        (0..20).map(|i| i % 4).collect(),
        &Scheme::TStream,
    );
    assert_eq!(offline.committed, 20);
    let store = counter_store(4);
    let streamed = engine.run(
        &app,
        &store,
        (0..20).map(|i| i % 4).collect(),
        &Scheme::TStream,
    );
    assert_eq!(streamed.committed, 20);
}

/// Empty and single-event sessions are well-formed.
#[test]
fn degenerate_sessions_are_harmless() {
    let engine = Engine::new(EngineConfig::with_executors(3).punctuation(100));
    let app = Arc::new(Counter);

    let store = counter_store(4);
    let session = engine
        .session_builder(&app, &store, &Scheme::TStream)
        .open()
        .unwrap();
    let report = session.report().unwrap();
    assert_eq!(report.events, 0);
    assert_eq!(report.committed, 0);
    assert_eq!(report.latency.samples(), 0);

    let store = counter_store(4);
    let mut session = engine
        .session_builder(&app, &store, &Scheme::TStream)
        .open()
        .unwrap();
    session.push(1).unwrap();
    let report = session.report().unwrap();
    assert_eq!(report.committed, 1);
    assert_eq!(counter_sum(&store), 1);
}
