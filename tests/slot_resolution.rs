//! Slot-resolution differential tests.
//!
//! Routing resolves every `StateRef` to its record slot once, on the
//! ingestion thread, and the slot is carried through `Operation` into chain
//! processing, temp-version maintenance, and serial replay.  A wrong slot
//! would silently read or write the wrong record, so the whole suite is
//! differential: slot-resolved TStream (1/2/4 shards, all four apps, plus an
//! abort-heavy OB mix) must be byte-for-byte snapshot- and count-identical
//! to the serial `run_offline` No-Lock baseline, which resolves nothing in
//! advance and simply walks the store in timestamp order.
//!
//! The kill-test at the bottom proves that recovery replay re-resolves
//! slots correctly after a restart: the rebuilt store assigns slots afresh,
//! and the replayed prefix plus the live remainder must still converge with
//! the uninterrupted baseline.

use std::fs;
use std::path::PathBuf;

use tstream_apps::workload::WorkloadSpec;
use tstream_apps::{
    run_benchmark_durable, run_benchmark_with_snapshot, AppKind, ExecutionPath, RunOptions,
    SchemeKind,
};
use tstream_core::{EngineConfig, RunReport};
use tstream_state::StoreSnapshot;

const INTERVAL: usize = 100;
const EVENTS: usize = 600;

fn spec(shards: u32, seed: u64) -> WorkloadSpec {
    WorkloadSpec::default()
        .events(EVENTS)
        .keys(1_000)
        .seed(seed)
        .shards(shards)
}

fn options(spec: WorkloadSpec, executors: usize) -> RunOptions {
    RunOptions::new(
        spec,
        EngineConfig::with_executors(executors).punctuation(INTERVAL),
    )
}

/// The reference: serial No-Lock over the offline path.  One executor,
/// deliberately — No-Lock has no synchronisation, so only the serial
/// schedule is deterministic enough to compare byte-for-byte.
fn no_lock_reference(app: AppKind, workload: WorkloadSpec) -> (RunReport, StoreSnapshot) {
    run_benchmark_with_snapshot(
        app,
        SchemeKind::NoLock,
        &options(workload, 1),
        ExecutionPath::Offline,
    )
}

fn assert_matches_reference(app: AppKind, workload: WorkloadSpec, shards: u32) {
    let (reference, reference_snapshot) = no_lock_reference(app, workload);
    assert_eq!(reference.events, workload.events as u64);

    let (report, snapshot) = run_benchmark_with_snapshot(
        app,
        SchemeKind::TStream,
        &options(workload, shards as usize),
        ExecutionPath::Pipelined,
    );
    let ctx = format!("{} with {shards} shards", app.label());
    assert_eq!(report.events, reference.events, "events: {ctx}");
    assert_eq!(report.committed, reference.committed, "committed: {ctx}");
    assert_eq!(report.rejected, reference.rejected, "rejected: {ctx}");
    assert_eq!(snapshot, reference_snapshot, "snapshot: {ctx}");
}

#[test]
fn gs_matches_the_no_lock_reference_on_every_shard_count() {
    for shards in [1u32, 2, 4] {
        assert_matches_reference(AppKind::Gs, spec(shards, 0xA1), shards);
    }
}

#[test]
fn sl_matches_the_no_lock_reference_on_every_shard_count() {
    for shards in [1u32, 2, 4] {
        assert_matches_reference(AppKind::Sl, spec(shards, 0xA2), shards);
    }
}

#[test]
fn ob_matches_the_no_lock_reference_on_every_shard_count() {
    for shards in [1u32, 2, 4] {
        assert_matches_reference(AppKind::Ob, spec(shards, 0xA3), shards);
    }
}

#[test]
fn tp_matches_the_no_lock_reference_on_every_shard_count() {
    for shards in [1u32, 2, 4] {
        assert_matches_reference(AppKind::Tp, spec(shards, 0xA4), shards);
    }
}

/// Abort-heavy OB: high skew concentrates the bidding on a few hot items,
/// so most bids find the asking price already raised and are rejected.
/// Aborted transactions exercise the undo path over resolved slots — the
/// temp versions they leave behind must be discarded from exactly the
/// records they shadowed.
#[test]
fn abort_heavy_ob_mix_matches_the_no_lock_reference() {
    for shards in [1u32, 2, 4] {
        let workload = spec(shards, 0xA5).keys(64).skew(1.2);
        let (reference, _) = no_lock_reference(AppKind::Ob, workload);
        assert!(
            reference.rejected * 4 >= reference.events,
            "the mix must actually be abort-heavy: {} rejections out of {}",
            reference.rejected,
            reference.events
        );
        assert_matches_reference(AppKind::Ob, workload, shards);
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tstream-slot-resolution-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Kill-test: slots are process-local (they index the live store), so a
/// restart invalidates every slot resolved before the crash.  Recovery
/// rebuilds the store, replays the WAL tail through routing — which must
/// re-resolve every slot against the fresh store — and then takes live
/// events.  Crashing at every batch boundary in turn, the recovered run
/// must stay byte-identical to the uninterrupted No-Lock reference.
#[test]
fn recovery_replay_re_resolves_slots_after_restart() {
    let workload = spec(2, 0xA6);
    let (reference, reference_snapshot) = no_lock_reference(AppKind::Gs, workload);

    let mut options = options(workload, 2);
    options.engine = options.engine.checkpoint_every(2);
    let batches = EVENTS.div_ceil(INTERVAL);
    for boundary in 1..batches {
        let dir = temp_dir(&format!("boundary-{boundary}"));
        let (partial, _) = run_benchmark_durable(
            AppKind::Gs,
            SchemeKind::TStream,
            &options,
            &dir,
            Some(boundary * INTERVAL),
        )
        .expect("durable run");
        assert_eq!(partial.events, (boundary * INTERVAL) as u64);

        let (report, snapshot) =
            run_benchmark_durable(AppKind::Gs, SchemeKind::TStream, &options, &dir, None)
                .expect("recovered run");
        let ctx = format!("crash after batch {boundary}");
        assert_eq!(report.events, reference.events, "events: {ctx}");
        assert_eq!(report.committed, reference.committed, "committed: {ctx}");
        assert_eq!(report.rejected, reference.rejected, "rejected: {ctx}");
        assert_eq!(snapshot, reference_snapshot, "snapshot: {ctx}");
        let _ = fs::remove_dir_all(&dir);
    }
}
