//! Crash-recovery differential tests: the tentpole guarantee of the
//! recovery subsystem is **exactly-once results across a crash**.
//!
//! For every app (GS/SL/OB/TP) and shard count {1, 4}, a durable run is
//! killed at *every* punctuation-batch boundary in turn; recovering the
//! durability directory with [`Engine::recover`] and finishing the stream
//! must yield a key-sorted store snapshot and cumulative commit/abort
//! counts **byte-identical** to an uninterrupted `run_offline` over the
//! same input.  The checkpoint cadence is deliberately sparser than one
//! (every 2 batches) so most crash points force genuine WAL replay, not
//! just snapshot restoration.
//!
//! The boundary-crash simulation pushes a batch-aligned prefix through a
//! durable session and drops the process-local state; what remains on disk
//! — sealed segments, epoch-stamped checkpoints, possibly an interrupted
//! truncation — is exactly what a `kill -9` at that boundary leaves.  True
//! process-kill coverage (abort mid-run, separate process) lives in
//! `examples/crash_recovery.rs`, which CI runs.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use tstream_apps::workload::WorkloadSpec;
use tstream_apps::{
    run_benchmark_durable, run_benchmark_with_snapshot, AppKind, ExecutionPath, RunOptions,
    SchemeKind,
};
use tstream_core::prelude::*;
use tstream_recovery::{
    list_segments, read_segment, FsyncPolicy, GroupCommitConfig, RecoveryCoordinator, SegmentedWal,
    WalPayload,
};
use tstream_state::StateError;

const INTERVAL: usize = 100;
const EVENTS: usize = 500;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tstream-recovery-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn options(shards: u32, seed: u64) -> RunOptions {
    options_with_executors(shards, seed, 2)
}

fn options_with_executors(shards: u32, seed: u64, executors: usize) -> RunOptions {
    let spec = WorkloadSpec::default()
        .events(EVENTS)
        .keys(1_000)
        .seed(seed)
        .shards(shards);
    let engine = EngineConfig::with_executors(executors)
        .punctuation(INTERVAL)
        .checkpoint_every(2);
    RunOptions::new(spec, engine)
}

/// Kill a durable run at every batch boundary; recovery must reproduce the
/// uninterrupted run byte for byte.
fn kill_at_every_boundary(app: AppKind, scheme: SchemeKind, shards: u32, seed: u64) {
    kill_at_every_boundary_with(app, scheme, shards, seed, 2);
}

fn kill_at_every_boundary_with(
    app: AppKind,
    scheme: SchemeKind,
    shards: u32,
    seed: u64,
    executors: usize,
) {
    let options = options_with_executors(shards, seed, executors);
    let (baseline, baseline_snapshot) =
        run_benchmark_with_snapshot(app, scheme, &options, ExecutionPath::Offline);
    assert_eq!(baseline.events, EVENTS as u64);

    let batches = EVENTS.div_ceil(INTERVAL);
    for boundary in 1..batches {
        let dir = temp_dir(&format!(
            "boundary-{}-{}-{shards}-{boundary}",
            app.label(),
            scheme.label()
        ));
        // Phase 1: run up to the boundary, then "crash" (drop everything
        // process-local; the durability directory is all that survives).
        let (partial, _) =
            run_benchmark_durable(app, scheme, &options, &dir, Some(boundary * INTERVAL))
                .expect("durable run");
        assert_eq!(partial.events, (boundary * INTERVAL) as u64);

        // Phase 2: recover and finish the stream.
        let (report, snapshot) =
            run_benchmark_durable(app, scheme, &options, &dir, None).expect("recovered run");
        let ctx = format!(
            "{}/{} shards={shards} crash after batch {boundary}",
            app.label(),
            scheme.label()
        );
        assert_eq!(report.events, baseline.events, "events: {ctx}");
        assert_eq!(report.committed, baseline.committed, "committed: {ctx}");
        assert_eq!(report.rejected, baseline.rejected, "rejected: {ctx}");
        assert_eq!(snapshot, baseline_snapshot, "snapshot: {ctx}");
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn gs_recovers_exactly_once_at_every_boundary() {
    for shards in [1u32, 4] {
        kill_at_every_boundary(AppKind::Gs, SchemeKind::TStream, shards, 0xD1);
    }
}

#[test]
fn sl_recovers_exactly_once_at_every_boundary() {
    for shards in [1u32, 4] {
        kill_at_every_boundary(AppKind::Sl, SchemeKind::TStream, shards, 0xD2);
    }
}

#[test]
fn ob_recovers_exactly_once_at_every_boundary() {
    for shards in [1u32, 4] {
        kill_at_every_boundary(AppKind::Ob, SchemeKind::TStream, shards, 0xD3);
    }
}

#[test]
fn tp_recovers_exactly_once_at_every_boundary() {
    for shards in [1u32, 4] {
        kill_at_every_boundary(AppKind::Tp, SchemeKind::TStream, shards, 0xD4);
    }
}

#[test]
fn recovery_works_under_an_eager_scheme_too() {
    // The WAL is scheme-agnostic: the serial No-Lock baseline must recover
    // just like dual-mode scheduling.  One executor, deliberately: No-Lock
    // has no synchronisation, so with several executors its racy schedule —
    // not the recovery machinery — would decide the final state and the
    // byte-identical differential would be flaky.
    kill_at_every_boundary_with(AppKind::Sl, SchemeKind::NoLock, 1, 0xD5, 1);
}

#[test]
fn checkpoints_truncate_covered_wal_segments() {
    let dir = temp_dir("truncation");
    let options = options(1, 0xE1);
    // checkpoint_every = 2: after the run (5 batches, last checkpoint at
    // epoch 3), only segment 4 may survive.
    let (report, _) =
        run_benchmark_durable(AppKind::Gs, SchemeKind::TStream, &options, &dir, None).unwrap();
    assert_eq!(report.events, EVENTS as u64);
    assert_eq!(report.checkpoints, 2, "epochs 1 and 3 hit the cadence");
    assert!(report.wal_bytes > 0, "the WAL must actually be written");
    let segments = list_segments(&dir.join("wal")).unwrap();
    let epochs: Vec<u64> = segments.iter().map(|s| s.epoch).collect();
    assert_eq!(epochs, vec![4], "segments <= checkpoint epoch 3 are gone");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn mid_batch_crash_replays_the_unsealed_tail() {
    // Crash *inside* a batch: 2 sealed batches + 50 events in the unsealed
    // tail segment.  The WAL is written directly (a session drop would seal
    // the partial batch, which a real kill never does); recovery must feed
    // the tail back into the forming batch and still converge with the
    // uninterrupted run.
    let dir = temp_dir("mid-batch");
    let options = options(1, 0xE2);
    let events = tstream_apps::sl::generate(&options.spec);
    let (baseline, baseline_snapshot) = run_benchmark_with_snapshot(
        AppKind::Sl,
        SchemeKind::TStream,
        &options,
        ExecutionPath::Offline,
    );
    {
        let state = RecoveryCoordinator::new(&dir).open().unwrap();
        for (i, event) in events.iter().take(2 * INTERVAL + 50).enumerate() {
            state.log.append(event).unwrap();
            if (i + 1) % INTERVAL == 0 {
                state.log.seal().unwrap();
            }
        }
        // Dropped without sealing the tail: 50 events pending on disk.
        assert_eq!(state.log.pending_records(), 50);
    }

    let store = tstream_apps::sl::build_store(&options.spec);
    let app = Arc::new(tstream_apps::sl::StreamingLedger);
    let engine = Engine::new(options.engine.shards(1));
    let mut session = engine
        .session_builder(&app, &store, &Scheme::TStream)
        .durable(&dir)
        .recover()
        .open()
        .expect("recover mid-batch state");
    assert_eq!(session.ingested(), (2 * INTERVAL + 50) as u64);
    for event in events.iter().skip(2 * INTERVAL + 50).cloned() {
        session.push(event).unwrap();
    }
    let report = session.report().unwrap();
    assert_eq!(report.events, baseline.events);
    assert_eq!(report.committed, baseline.committed);
    assert_eq!(report.rejected, baseline.rejected);
    assert_eq!(StoreSnapshot::capture(&store), baseline_snapshot);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn double_crash_after_full_truncation_recovers_exactly_once() {
    // Regression: with checkpoint_every = 1 every checkpoint truncates the
    // whole WAL, so a recovery used to find an empty directory and restart
    // epoch numbering at 0 — mislabelling live batches as checkpoint-covered
    // and silently truncating them on the *second* recovery.  Crash twice
    // and the run must still converge with the uninterrupted baseline.
    let mut options = options(1, 0xE8);
    options.engine = options.engine.checkpoint_every(1);
    let (baseline, baseline_snapshot) = run_benchmark_with_snapshot(
        AppKind::Sl,
        SchemeKind::TStream,
        &options,
        ExecutionPath::Offline,
    );
    let dir = temp_dir("double-crash");
    let _ = run_benchmark_durable(
        AppKind::Sl,
        SchemeKind::TStream,
        &options,
        &dir,
        Some(INTERVAL),
    )
    .unwrap();
    // First recovery runs two more batches, then "crashes" again.
    let _ = run_benchmark_durable(
        AppKind::Sl,
        SchemeKind::TStream,
        &options,
        &dir,
        Some(3 * INTERVAL),
    )
    .unwrap();
    // Second recovery finishes the stream.
    let (report, snapshot) =
        run_benchmark_durable(AppKind::Sl, SchemeKind::TStream, &options, &dir, None).unwrap();
    assert_eq!(report.events, baseline.events);
    assert_eq!(report.committed, baseline.committed);
    assert_eq!(report.rejected, baseline.rejected);
    assert_eq!(snapshot, baseline_snapshot);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn mid_batch_crash_after_full_truncation_recovers() {
    // Regression companion to the epoch-floor fix: a crash mid-batch when
    // the previous checkpoint truncated every sealed segment used to fail
    // recovery with a spurious "open WAL segment carries epoch N, expected
    // 0" corruption error on a perfectly healthy directory.
    let mut options = options(1, 0xE9);
    options.engine = options.engine.checkpoint_every(1);
    let events = tstream_apps::sl::generate(&options.spec);
    let (baseline, baseline_snapshot) = run_benchmark_with_snapshot(
        AppKind::Sl,
        SchemeKind::TStream,
        &options,
        ExecutionPath::Offline,
    );
    let dir = temp_dir("mid-batch-truncated");
    // Two full batches, each checkpointed and truncated away.
    let _ = run_benchmark_durable(
        AppKind::Sl,
        SchemeKind::TStream,
        &options,
        &dir,
        Some(2 * INTERVAL),
    )
    .unwrap();
    // Crash mid-batch: 30 more events reach only the WAL tail (epoch 2).
    {
        let state = RecoveryCoordinator::new(&dir).open().unwrap();
        for event in events.iter().skip(2 * INTERVAL).take(30) {
            state.log.append(event).unwrap();
        }
        assert_eq!(state.log.pending_records(), 30);
    }
    let store = tstream_apps::sl::build_store(&options.spec);
    let app = Arc::new(tstream_apps::sl::StreamingLedger);
    let engine = Engine::new(options.engine.shards(1));
    let mut session = engine
        .session_builder(&app, &store, &Scheme::TStream)
        .durable(&dir)
        .recover()
        .open()
        .expect("healthy directory must recover");
    assert_eq!(session.ingested(), (2 * INTERVAL + 30) as u64);
    for event in events.iter().skip(2 * INTERVAL + 30).cloned() {
        session.push(event).unwrap();
    }
    let report = session.report().unwrap();
    assert_eq!(report.committed, baseline.committed);
    assert_eq!(report.rejected, baseline.rejected);
    assert_eq!(StoreSnapshot::capture(&store), baseline_snapshot);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn reopening_with_a_different_punctuation_interval_is_rejected() {
    // The WAL's epoch alignment assumes one sealed segment per punctuation
    // batch; re-batching a replay with a different interval would silently
    // desynchronize epochs, so the interval is pinned to the directory.
    let dir = temp_dir("interval-pin");
    let options_a = options(1, 0xEA);
    let _ = run_benchmark_durable(
        AppKind::Gs,
        SchemeKind::TStream,
        &options_a,
        &dir,
        Some(200),
    )
    .unwrap();
    let mut options_b = options(1, 0xEA);
    options_b.engine = options_b.engine.punctuation(INTERVAL / 2);
    match run_benchmark_durable(AppKind::Gs, SchemeKind::TStream, &options_b, &dir, None) {
        Err(StateError::InvalidDefinition(msg)) => {
            assert!(msg.contains("punctuation interval"), "{msg}");
        }
        other => panic!("expected InvalidDefinition, got {:?}", other.map(|_| ())),
    }
    // The original interval still recovers fine.
    let (report, _) =
        run_benchmark_durable(AppKind::Gs, SchemeKind::TStream, &options_a, &dir, None).unwrap();
    assert_eq!(report.events, EVENTS as u64);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn recovery_is_idempotent_a_crash_during_recovery_converges() {
    let dir = temp_dir("idempotent");
    let options = options(1, 0xE3);
    // Crash after batch 3 (checkpoint at epoch 1, segments 2 and 3 pending).
    let _ = run_benchmark_durable(
        AppKind::Tp,
        SchemeKind::TStream,
        &options,
        &dir,
        Some(3 * INTERVAL),
    )
    .unwrap();
    // First recovery attempt "crashes" right after open+replay: open a
    // session, replay happens inside, then drop it without pushing the rest.
    {
        let store = tstream_apps::tp::build_store(&options.spec);
        let app = Arc::new(tstream_apps::tp::TollProcessing);
        let engine = Engine::new(options.engine.shards(1));
        let session = engine
            .session_builder(&app, &store, &Scheme::TStream)
            .durable(&dir)
            .recover()
            .open()
            .unwrap();
        assert_eq!(session.ingested(), (3 * INTERVAL) as u64);
        drop(session);
    }
    // Second recovery finishes the stream and must still match the baseline.
    let (baseline, baseline_snapshot) = run_benchmark_with_snapshot(
        AppKind::Tp,
        SchemeKind::TStream,
        &options,
        ExecutionPath::Offline,
    );
    let (report, snapshot) =
        run_benchmark_durable(AppKind::Tp, SchemeKind::TStream, &options, &dir, None).unwrap();
    assert_eq!(report.events, baseline.events);
    assert_eq!(report.committed, baseline.committed);
    assert_eq!(report.rejected, baseline.rejected);
    assert_eq!(snapshot, baseline_snapshot);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn durable_report_counts_are_cumulative_across_recovery() {
    let dir = temp_dir("cumulative");
    let options = options(1, 0xE4);
    let (partial, _) =
        run_benchmark_durable(AppKind::Ob, SchemeKind::TStream, &options, &dir, Some(200)).unwrap();
    assert_eq!(partial.events, 200);
    assert_eq!(partial.committed + partial.rejected, 200);
    let (full, _) =
        run_benchmark_durable(AppKind::Ob, SchemeKind::TStream, &options, &dir, None).unwrap();
    assert_eq!(full.events, EVENTS as u64);
    assert_eq!(full.committed + full.rejected, EVENTS as u64);
    assert!(full.checkpoints >= 1);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn fsync_policies_all_recover() {
    for policy in [FsyncPolicy::Never, FsyncPolicy::OnSeal, FsyncPolicy::Always] {
        let dir = temp_dir(&format!("fsync-{}", policy.label()));
        let mut options = options(1, 0xE5);
        options.engine = options.engine.fsync(policy);
        let _ = run_benchmark_durable(AppKind::Gs, SchemeKind::TStream, &options, &dir, Some(200))
            .unwrap();
        let (report, _) =
            run_benchmark_durable(AppKind::Gs, SchemeKind::TStream, &options, &dir, None).unwrap();
        assert_eq!(report.events, EVENTS as u64);
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn wal_segments_from_the_future_are_rejected_with_a_clear_error() {
    let dir = temp_dir("future");
    let wal_dir = dir.join("wal");
    fs::create_dir_all(&wal_dir).unwrap();
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"TWAL9");
    bytes.extend_from_slice(&0u64.to_le_bytes());
    fs::write(wal_dir.join("segment-000000000000.twal"), &bytes).unwrap();

    let store = tstream_apps::gs::build_store(&options(1, 0xE6).spec);
    let app = Arc::new(tstream_apps::gs::GrepSum::default());
    let engine = Engine::new(EngineConfig::with_executors(1));
    match engine
        .session_builder(&app, &store, &Scheme::TStream)
        .durable(&dir)
        .recover()
        .open()
    {
        Err(StateError::UnsupportedVersion {
            artifact, found, ..
        }) => {
            assert_eq!(artifact, "WAL segment");
            assert_eq!(found, 9);
        }
        other => panic!("expected UnsupportedVersion, got {:?}", other.map(|_| ())),
    }
    let _ = fs::remove_dir_all(&dir);
}

/// The WAL payload codecs are exercised end-to-end above; this pins the
/// contract that every generated event round-trips bit-exactly (speed is a
/// float — compared by bits).
#[test]
fn every_generated_payload_round_trips_through_the_wal_codec() {
    fn assert_round_trips<P: WalPayload>(events: &[P], re_encode: impl Fn(&P, &mut Vec<u8>)) {
        for event in events {
            let mut encoded = Vec::new();
            re_encode(event, &mut encoded);
            let mut reader = tstream_state::codec::Reader::new(&encoded);
            let decoded = P::decode_wal(&mut reader).expect("decodable");
            assert_eq!(reader.remaining(), 0);
            let mut re_encoded = Vec::new();
            re_encode(&decoded, &mut re_encoded);
            assert_eq!(encoded, re_encoded);
        }
    }
    let spec = WorkloadSpec::default().events(300).seed(0xE7);
    assert_round_trips(&tstream_apps::gs::generate(&spec), |e, out| {
        e.encode_wal(out)
    });
    assert_round_trips(&tstream_apps::sl::generate(&spec), |e, out| {
        e.encode_wal(out)
    });
    assert_round_trips(&tstream_apps::ob::generate(&spec), |e, out| {
        e.encode_wal(out)
    });
    assert_round_trips(&tstream_apps::tp::generate(&spec), |e, out| {
        e.encode_wal(out)
    });
}

// ---------------------------------------------------------------------------
// Kill points *inside* the group-commit window.
//
// The group-commit ack contract: under `FsyncPolicy::Always` an event is
// acked-durable only once its covering window (or the seal) has synced, and
// a sealed batch is acked only once the seal's rename is covered by the
// directory fsync.  A kill inside the window may lose *buffered, unacked*
// frames but never a synced window and never a sealed batch; `OnSeal` keeps
// its batch-level contract unchanged.  The kills below use `mem::forget` so
// the writer's best-effort drop flush never runs — exactly the state a
// `kill -9` leaves on disk.
// ---------------------------------------------------------------------------

fn group_wal(dir: &std::path::Path, policy: FsyncPolicy, window_events: u64) -> SegmentedWal {
    let mut wal = SegmentedWal::open(dir, policy, 0).unwrap();
    wal.set_group_commit(GroupCommitConfig {
        window_events,
        window_bytes: 1 << 20,
    });
    wal
}

fn encoded<P: WalPayload>(events: &[P]) -> Vec<Vec<u8>> {
    events
        .iter()
        .map(|e| {
            let mut out = Vec::new();
            e.encode_wal(&mut out);
            out
        })
        .collect()
}

#[test]
fn kill_with_an_unsynced_buffered_tail_keeps_every_synced_window() {
    // 10 events through a 4-event window under `Always`: windows sync after
    // events 4 and 8, events 9-10 sit in the in-memory buffer.  Those two
    // were never acked (their window never synced), so the kill may lose
    // them — but nothing from the synced windows.
    let dir = temp_dir("kill-unsynced-tail");
    fs::create_dir_all(&dir).unwrap();
    let events = tstream_apps::gs::generate(&WorkloadSpec::default().events(10).seed(0xF1));
    let mut wal = group_wal(&dir, FsyncPolicy::Always, 4);
    for event in &events {
        let full = wal.append_deferred(|buf| event.encode_wal(buf)).unwrap();
        if full {
            wal.flush_window().unwrap();
        }
    }
    assert_eq!(wal.pending_records(), 10, "all ten counted pre-kill");
    std::mem::forget(wal); // kill -9: no drop flush

    let mut healed = group_wal(&dir, FsyncPolicy::Always, 4);
    assert_eq!(
        healed.pending_records(),
        8,
        "both synced windows survive; the unacked buffered tail is gone"
    );
    // The healed tail accepts the retransmitted remainder and seals whole.
    for event in &events[8..] {
        let full = healed.append_deferred(|buf| event.encode_wal(buf)).unwrap();
        if full {
            healed.flush_window().unwrap();
        }
    }
    let epoch = healed.seal().unwrap();
    let decoded =
        read_segment::<tstream_apps::gs::GsEvent>(&dir.join(format!("segment-{epoch:012}.twal")))
            .unwrap();
    assert!(decoded.sealed);
    assert_eq!(
        encoded(&decoded.events),
        encoded(&events),
        "bit-exact replay"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn kill_after_the_window_synced_but_before_seal_replays_in_full() {
    // Two full 4-event windows, both synced under `Always`, buffer empty —
    // then the kill lands before any seal.  Every synced frame must replay.
    let dir = temp_dir("kill-synced-unsealed");
    fs::create_dir_all(&dir).unwrap();
    let events = tstream_apps::gs::generate(&WorkloadSpec::default().events(10).seed(0xF2));
    let mut wal = group_wal(&dir, FsyncPolicy::Always, 4);
    for event in &events[..8] {
        let full = wal.append_deferred(|buf| event.encode_wal(buf)).unwrap();
        if full {
            wal.flush_window().unwrap();
        }
    }
    std::mem::forget(wal);

    let mut healed = group_wal(&dir, FsyncPolicy::Always, 4);
    assert_eq!(
        healed.pending_records(),
        8,
        "synced-but-unsealed tail intact"
    );
    for event in &events[8..] {
        let full = healed.append_deferred(|buf| event.encode_wal(buf)).unwrap();
        if full {
            healed.flush_window().unwrap();
        }
    }
    let epoch = healed.seal().unwrap();
    let decoded =
        read_segment::<tstream_apps::gs::GsEvent>(&dir.join(format!("segment-{epoch:012}.twal")))
            .unwrap();
    assert_eq!(encoded(&decoded.events), encoded(&events));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn kill_that_undoes_the_seal_rename_is_healed_without_losing_the_batch() {
    // The rename is the last durability step of a seal; without the
    // directory fsync a crash can resurrect the segment under its unsealed
    // name.  Recovery must re-recognise the embedded seal marker and heal
    // the rename — the acked batch is never lost.
    let dir = temp_dir("kill-mid-rename");
    fs::create_dir_all(&dir).unwrap();
    let events = tstream_apps::gs::generate(&WorkloadSpec::default().events(6).seed(0xF3));
    let mut wal = group_wal(&dir, FsyncPolicy::Always, 4);
    for event in &events {
        let full = wal.append_deferred(|buf| event.encode_wal(buf)).unwrap();
        if full {
            wal.flush_window().unwrap();
        }
    }
    let epoch = wal.seal().unwrap();
    drop(wal);
    // Undo the rename: the file carries a valid seal marker but the
    // directory entry reverted to the open name.
    let sealed_path = dir.join(format!("segment-{epoch:012}.twal"));
    let open_path = dir.join(format!("segment-{epoch:012}.twal.open"));
    fs::rename(&sealed_path, &open_path).unwrap();

    let healed = group_wal(&dir, FsyncPolicy::Always, 4);
    assert_eq!(healed.pending_records(), 0, "no open tail after healing");
    assert_eq!(healed.next_epoch(), epoch + 1);
    drop(healed);
    let segments = list_segments(&dir).unwrap();
    assert_eq!(segments.len(), 1);
    assert!(segments[0].sealed, "the seal rename was replayed");
    let decoded = read_segment::<tstream_apps::gs::GsEvent>(&sealed_path).unwrap();
    assert_eq!(
        encoded(&decoded.events),
        encoded(&events),
        "acked batch intact"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn on_seal_kill_inside_the_window_keeps_sealed_batches_unchanged() {
    // `OnSeal` acks at batch granularity: a sealed epoch must survive any
    // later kill; unsealed frames carry no ack and may lose the buffered
    // (unflushed) remainder.
    let dir = temp_dir("kill-onseal-window");
    fs::create_dir_all(&dir).unwrap();
    let events = tstream_apps::gs::generate(&WorkloadSpec::default().events(11).seed(0xF4));
    let mut wal = group_wal(&dir, FsyncPolicy::OnSeal, 4);
    for event in &events[..6] {
        let full = wal.append_deferred(|buf| event.encode_wal(buf)).unwrap();
        if full {
            wal.flush_window().unwrap();
        }
    }
    let sealed_epoch = wal.seal().unwrap();
    // Next batch: one full window flushed (write, no sync under OnSeal),
    // one event still buffered when the kill lands.
    for event in &events[6..] {
        let full = wal.append_deferred(|buf| event.encode_wal(buf)).unwrap();
        if full {
            wal.flush_window().unwrap();
        }
    }
    assert_eq!(wal.pending_records(), 5);
    std::mem::forget(wal);

    let healed = group_wal(&dir, FsyncPolicy::OnSeal, 4);
    let decoded = read_segment::<tstream_apps::gs::GsEvent>(
        &dir.join(format!("segment-{sealed_epoch:012}.twal")),
    )
    .unwrap();
    assert!(decoded.sealed);
    assert_eq!(
        encoded(&decoded.events),
        encoded(&events[..6]),
        "the acked (sealed) batch is byte-identical"
    );
    assert_eq!(
        healed.pending_records(),
        4,
        "the flushed window replays; only the single buffered frame is lost"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn replayed_batches_are_excluded_from_latency_stats_but_not_counts() {
    // Crash after batch 3 of 5 with checkpoints every 2 batches: the
    // checkpoint at epoch 1 covers 200 events, so recovery genuinely
    // replays batch 3 (100 events) through the engine before the 200 live
    // events arrive.  A replayed event's "arrival" is the re-ingestion
    // instant — sampling it would poison the latency distribution with
    // replay-speed values — so replayed batches must be counted (emitted)
    // but never sampled.
    let dir = temp_dir("replay-latency");
    let options = options(1, 0xF5);
    let (partial, _) = run_benchmark_durable(
        AppKind::Gs,
        SchemeKind::TStream,
        &options,
        &dir,
        Some(3 * INTERVAL),
    )
    .unwrap();
    assert_eq!(partial.events, (3 * INTERVAL) as u64);
    assert_eq!(partial.rejected, 0, "GS commits everything");
    assert_eq!(
        partial.latency.samples() as u64,
        partial.committed,
        "a fresh run samples every committed event"
    );

    let (report, _) =
        run_benchmark_durable(AppKind::Gs, SchemeKind::TStream, &options, &dir, None).unwrap();
    assert_eq!(
        report.events, EVENTS as u64,
        "replayed events still counted"
    );
    assert_eq!(
        report.committed, EVENTS as u64,
        "every event commits exactly once across the crash"
    );
    let live = (EVENTS - 3 * INTERVAL) as u64; // events pushed after recovery
    let replayed = INTERVAL as u64; // batch 3, past the checkpoint floor
    assert_eq!(
        report.latency.samples() as u64,
        live,
        "replayed batches must leave no latency samples"
    );
    assert_eq!(
        report.latency.emitted(),
        live + replayed,
        "replayed events are emitted (counted) even though unsampled"
    );
    let _ = fs::remove_dir_all(&dir);
}
