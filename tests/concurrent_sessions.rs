//! Differential and liveness tests for **concurrent session multiplexing**:
//! N sessions open on one engine at the same time, interleaving punctuation
//! batches over the shared executor pool.
//!
//! The tentpole guarantees pinned down here:
//!
//! * **determinism under concurrency** — N sessions pushing GS/SL/OB/TP
//!   interleaved from N threads produce byte-identical snapshots and counts
//!   to the same N runs executed sequentially via `run_offline`, on {1, 4}
//!   shards;
//! * **concurrent progress** — two sessions opened on one engine advance
//!   together: pushes and flushes interleave without either session
//!   blocking the other or being dropped;
//! * **spawn-once** — opening and closing M sessions (sequentially and
//!   concurrently) spawns no executor threads beyond the engine's first
//!   use.

use std::sync::Arc;

use tstream_apps::workload::WorkloadSpec;
use tstream_apps::{
    gs, ob, run_benchmark_concurrent, run_benchmark_with_snapshot, sl, tp, AppKind, ExecutionPath,
    RunOptions, SchemeKind,
};
use tstream_core::prelude::*;
use tstream_core::Scheme;
use tstream_state::Value;

type Snapshot = Vec<(String, u64, Value)>;

/// Run one app through its own **concurrent** session on the shared engine,
/// from the calling thread, and return `(committed, rejected, snapshot)`.
fn drive_session(
    engine: &Engine,
    app: AppKind,
    spec: &WorkloadSpec,
    pat_partitions: u32,
) -> (u64, u64, Snapshot) {
    fn go<A: Application>(
        engine: &Engine,
        application: A,
        store: Arc<StateStore>,
        payloads: Vec<A::Payload>,
        scheme: &Scheme,
        label: &str,
    ) -> (u64, u64, Snapshot) {
        let app = Arc::new(application);
        let mut session = engine
            .session_builder(&app, &store, scheme)
            .label(label)
            .open()
            .unwrap();
        for payload in payloads {
            session.push(payload).unwrap();
        }
        let report = session.report().unwrap();
        assert_eq!(report.label.as_deref(), Some(label));
        (report.committed, report.rejected, store.snapshot())
    }
    // Each session builds its own scheme instance — concurrent sessions
    // must not share eager-scheme counters.
    let scheme = SchemeKind::TStream.build(pat_partitions);
    match app {
        AppKind::Gs => go(
            engine,
            gs::GrepSum::default(),
            gs::build_store(spec),
            gs::generate(spec),
            &scheme,
            "GS",
        ),
        AppKind::Sl => go(
            engine,
            sl::StreamingLedger,
            sl::build_store(spec),
            sl::generate(spec),
            &scheme,
            "SL",
        ),
        AppKind::Ob => go(
            engine,
            ob::OnlineBidding,
            ob::build_store(spec),
            ob::generate(spec),
            &scheme,
            "OB",
        ),
        AppKind::Tp => go(
            engine,
            tp::TollProcessing,
            tp::build_store(spec),
            tp::generate(spec),
            &scheme,
            "TP",
        ),
    }
}

/// The same app through the sequential offline baseline (fresh engine).
fn offline_baseline(
    app: AppKind,
    spec: &WorkloadSpec,
    engine_config: EngineConfig,
) -> (u64, u64, Snapshot) {
    let options = RunOptions::new(*spec, engine_config);
    let (report, _) =
        run_benchmark_with_snapshot(app, SchemeKind::TStream, &options, ExecutionPath::Offline);
    // Re-run to capture the raw store snapshot in the same format the
    // session path reports.
    fn snap<A: Application>(
        application: A,
        store: Arc<StateStore>,
        payloads: Vec<A::Payload>,
        engine_config: EngineConfig,
    ) -> Snapshot {
        let engine = Engine::new(engine_config);
        let app = Arc::new(application);
        let _ = engine.run_offline(&app, &store, payloads, &Scheme::TStream);
        store.snapshot()
    }
    let snapshot = match app {
        AppKind::Gs => snap(
            gs::GrepSum::default(),
            gs::build_store(spec),
            gs::generate(spec),
            engine_config,
        ),
        AppKind::Sl => snap(
            sl::StreamingLedger,
            sl::build_store(spec),
            sl::generate(spec),
            engine_config,
        ),
        AppKind::Ob => snap(
            ob::OnlineBidding,
            ob::build_store(spec),
            ob::generate(spec),
            engine_config,
        ),
        AppKind::Tp => snap(
            tp::TollProcessing,
            tp::build_store(spec),
            tp::generate(spec),
            engine_config,
        ),
    };
    (report.committed, report.rejected, snapshot)
}

/// The headline differential: four sessions (GS, SL, OB, TP) pushed from
/// four threads **concurrently on one engine** must produce byte-identical
/// results to four sequential offline runs, on 1 and 4 shards.
#[test]
fn four_concurrent_sessions_match_sequential_offline_runs() {
    for shards in [1u32, 4] {
        let spec = WorkloadSpec::default()
            .events(600)
            .seed(0xC0 + shards as u64)
            .shards(shards);
        let engine_config = EngineConfig::with_executors(4)
            .punctuation(125)
            .shards(shards as usize);
        let engine = Engine::new(engine_config);

        let concurrent: Vec<(AppKind, (u64, u64, Snapshot))> = std::thread::scope(|scope| {
            let handles: Vec<_> = AppKind::ALL
                .iter()
                .map(|&app| {
                    let engine = &engine;
                    let spec = &spec;
                    scope.spawn(move || (app, drive_session(engine, app, spec, spec.partitions)))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(
            engine.runtime_threads_spawned(),
            4,
            "four concurrent sessions share one pool"
        );

        for (app, (committed, rejected, snapshot)) in concurrent {
            let (base_committed, base_rejected, base_snapshot) =
                offline_baseline(app, &spec, engine_config);
            let ctx = format!("{} on {shards} shards", app.label());
            assert_eq!(committed, base_committed, "committed diverged: {ctx}");
            assert_eq!(rejected, base_rejected, "rejected diverged: {ctx}");
            assert_eq!(snapshot, base_snapshot, "store snapshots diverged: {ctx}");
        }
    }
}

/// A tiny inline application for the liveness tests: every event increments
/// one counter.
struct Counter;

impl Application for Counter {
    type Payload = u64;
    fn name(&self) -> &'static str {
        "counter"
    }
    fn read_write_set(&self, key: &u64) -> ReadWriteSet {
        ReadWriteSet::new().write(StateRef::new(0, *key))
    }
    fn state_access(&self, key: &u64, txn: &mut TxnBuilder) {
        txn.read_modify(0, *key, None, |ctx| {
            Ok(Value::Long(ctx.current.as_long()? + 1))
        });
    }
    fn post_process(&self, _key: &u64, _b: &EventBlotter) -> PostAction {
        PostAction::Emit
    }
}

fn counter_store(keys: u64) -> Arc<StateStore> {
    let table = TableBuilder::new("counters")
        .extend((0..keys).map(|k| (k, Value::Long(0))))
        .build()
        .unwrap();
    StateStore::new(vec![table]).unwrap()
}

fn counter_sum(store: &StateStore) -> i64 {
    store
        .table_by_name("counters")
        .unwrap()
        .iter()
        .map(|(_, r)| r.read_committed().as_long().unwrap())
        .sum()
}

/// Two sessions on one engine make progress **concurrently**: pushes and
/// flushes interleave from one thread, and each flush proves the session
/// advanced while the other stayed open with work in flight.  Under the old
/// exclusive run lease the second `open` would deadlock this thread.
#[test]
fn two_sessions_interleave_pushes_and_both_advance() {
    let engine = Engine::new(EngineConfig::with_executors(2).punctuation(16));
    let app = Arc::new(Counter);
    let store_a = counter_store(8);
    let store_b = counter_store(8);

    let mut a = engine
        .session_builder(&app, &store_a, &Scheme::TStream)
        .label("a")
        .open()
        .unwrap();
    let mut b = engine
        .session_builder(&app, &store_b, &Scheme::TStream)
        .label("b")
        .open()
        .unwrap();

    // Interleave pushes batch by batch: a full batch for A, then one for B.
    for round in 0..4u64 {
        for i in 0..16u64 {
            a.push((round * 16 + i) % 8).unwrap();
        }
        for i in 0..16u64 {
            b.push((round * 16 + i) % 8).unwrap();
        }
        // A flushes (and observes its own progress) while B stays open with
        // a full batch dispatched and more forming — and vice versa.
        a.flush().unwrap();
        assert_eq!(
            counter_sum(&store_a),
            ((round + 1) * 16) as i64,
            "session A must advance while B is open (round {round})"
        );
        b.flush().unwrap();
        assert_eq!(
            counter_sum(&store_b),
            ((round + 1) * 16) as i64,
            "session B must advance while A is open (round {round})"
        );
    }

    let ra = a.report().unwrap();
    let rb = b.report().unwrap();
    assert_eq!(ra.committed, 64);
    assert_eq!(rb.committed, 64);
    assert_eq!(ra.label.as_deref(), Some("a"));
    assert_eq!(rb.label.as_deref(), Some("b"));
    assert_eq!(engine.runtime_threads_spawned(), 2);
}

/// Sessions from independent threads hammering one engine concurrently:
/// every session completes with its own exact counts (no cross-session
/// leakage), and the pool never grows.
#[test]
fn many_threads_many_sessions_no_cross_talk() {
    let engine = Engine::new(EngineConfig::with_executors(2).punctuation(10));
    let app = Arc::new(Counter);
    let per_session = 137u64; // deliberately not batch-aligned

    let results: Vec<(usize, u64, i64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6usize)
            .map(|t| {
                let engine = &engine;
                let app = &app;
                scope.spawn(move || {
                    let store = counter_store(8);
                    let mut session = engine
                        .session_builder(app, &store, &Scheme::TStream)
                        .label(format!("t{t}"))
                        .pipeline_depth(1 + t % 3)
                        .open()
                        .unwrap();
                    for i in 0..per_session {
                        session.push(i % 8).unwrap();
                    }
                    let report = session.report().unwrap();
                    (t, report.committed, counter_sum(&store))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (t, committed, sum) in results {
        assert_eq!(committed, per_session, "session t{t} lost events");
        assert_eq!(sum, per_session as i64, "session t{t} store diverged");
    }
    assert_eq!(engine.runtime_threads_spawned(), 2);
}

/// Opening and closing M sessions — concurrently and sequentially — spawns
/// no executor threads beyond the engine's first use.
#[test]
fn opening_and_closing_sessions_never_spawns_threads() {
    let executors = 3u64;
    let engine = Engine::new(EngineConfig::with_executors(executors as usize).punctuation(25));
    let app = Arc::new(Counter);
    assert_eq!(engine.runtime_threads_spawned(), 0, "pool spawns lazily");

    // Sequential open/close, including an unused session.
    for _ in 0..3 {
        let store = counter_store(4);
        let mut session = engine
            .session_builder(&app, &store, &Scheme::TStream)
            .open()
            .unwrap();
        for i in 0..60u64 {
            session.push(i % 4).unwrap();
        }
        drop(session);
        assert_eq!(engine.runtime_threads_spawned(), executors);
    }
    {
        let store = counter_store(4);
        let session = engine
            .session_builder(&app, &store, &Scheme::TStream)
            .open()
            .unwrap();
        drop(session); // opened, never pushed
    }

    // Concurrent open/close.
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let engine = &engine;
            let app = &app;
            scope.spawn(move || {
                let store = counter_store(4);
                let mut session = engine
                    .session_builder(app, &store, &Scheme::TStream)
                    .open()
                    .unwrap();
                for i in 0..60u64 {
                    session.push(i % 4).unwrap();
                }
                session.report().unwrap()
            });
        }
    });
    assert_eq!(
        engine.runtime_threads_spawned(),
        executors,
        "M sessions, still one pool"
    );
}

/// The deprecated entry points forward to the builder with identical
/// semantics.
#[test]
#[allow(deprecated)]
fn deprecated_entry_points_forward_to_the_builder() {
    let engine = Engine::new(EngineConfig::with_executors(2).punctuation(16));
    let app = Arc::new(Counter);

    let store = counter_store(4);
    let mut session = engine.session(&app, &store, &Scheme::TStream);
    for i in 0..40u64 {
        session.push(i % 4).unwrap();
    }
    let report = session.report().unwrap();
    assert_eq!(report.committed, 40);
    assert_eq!(report.label, None);

    // durable_session / recover still round-trip a durability directory.
    let dir = std::env::temp_dir().join(format!(
        "tstream-deprecated-forward-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = WorkloadSpec::default().events(150).seed(0xDD);
    let payloads = sl::generate(&spec);
    {
        let store = sl::build_store(&spec);
        let sl_app = Arc::new(sl::StreamingLedger);
        let mut durable = engine
            .durable_session(&dir, &sl_app, &store, &Scheme::TStream)
            .unwrap();
        for p in payloads.iter().take(100).cloned() {
            durable.push(p).unwrap();
        }
        drop(durable);
    }
    let store = sl::build_store(&spec);
    let sl_app = Arc::new(sl::StreamingLedger);
    let mut recovered = engine
        .recover(&dir, &sl_app, &store, &Scheme::TStream)
        .unwrap();
    assert_eq!(recovered.ingested(), 100);
    for p in payloads.iter().skip(100).cloned() {
        recovered.push(p).unwrap();
    }
    let report = recovered.report().unwrap();
    assert_eq!(report.events, 150);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Builder validation: contradictory option combinations are rejected with
/// clear errors instead of opening a half-configured session.
#[test]
fn builder_rejects_contradictory_options() {
    let engine = Engine::new(EngineConfig::with_executors(1).punctuation(16));
    let app = Arc::new(Counter);
    let store = counter_store(4);

    match engine
        .session_builder(&app, &store, &Scheme::TStream)
        .recover()
        .open()
    {
        Err(tstream_state::StateError::InvalidDefinition(msg)) => {
            assert!(msg.contains("durable"), "{msg}");
        }
        other => panic!("recover() without durable(dir) must fail, got {other:?}"),
    }

    let dir = std::env::temp_dir().join(format!("tstream-builder-conflict-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = WorkloadSpec::default().events(10);
    let sl_store = sl::build_store(&spec);
    let sl_app = Arc::new(sl::StreamingLedger);
    match engine
        .session_builder(&sl_app, &sl_store, &Scheme::TStream)
        .durable(&dir)
        .adaptive_punctuation()
        .open()
    {
        Err(tstream_state::StateError::InvalidDefinition(msg)) => {
            assert!(msg.contains("adaptive"), "{msg}");
        }
        other => panic!("adaptive + durable must fail, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A durability directory admits one live durable session per process: a
/// concurrent second open would truncate the live session's WAL tail and
/// interleave appends, so it is rejected — and admitted again once the
/// first session closes.
#[test]
fn a_durable_directory_admits_one_live_session() {
    let engine = Engine::new(EngineConfig::with_executors(1).punctuation(50));
    let dir =
        std::env::temp_dir().join(format!("tstream-durable-exclusive-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = WorkloadSpec::default().events(100).seed(0xD6);
    let payloads = sl::generate(&spec);
    let sl_app = Arc::new(sl::StreamingLedger);

    let store_a = sl::build_store(&spec);
    let mut live = engine
        .session_builder(&sl_app, &store_a, &Scheme::TStream)
        .durable(&dir)
        .open()
        .unwrap();
    for p in payloads.iter().take(60).cloned() {
        live.push(p).unwrap();
    }

    let store_b = sl::build_store(&spec);
    match engine
        .session_builder(&sl_app, &store_b, &Scheme::TStream)
        .durable(&dir)
        .open()
    {
        Err(tstream_state::StateError::InvalidDefinition(msg)) => {
            assert!(msg.contains("live durable session"), "{msg}");
        }
        other => panic!(
            "a second durable open over a live directory must fail, got {:?}",
            other.map(|_| ())
        ),
    }

    drop(live); // releases the directory
    let store_c = sl::build_store(&spec);
    let mut resumed = engine
        .session_builder(&sl_app, &store_c, &Scheme::TStream)
        .durable(&dir)
        .recover()
        .open()
        .expect("the directory frees when its session closes");
    assert_eq!(resumed.ingested(), 60);
    for p in payloads.iter().skip(60).cloned() {
        resumed.push(p).unwrap();
    }
    let report = resumed.report().unwrap();
    assert_eq!(report.events, 100);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Adaptive punctuation: the controller retunes the interval between
/// batches (growing it while throughput improves), and results stay exact.
#[test]
fn adaptive_punctuation_retunes_the_interval_and_stays_exact() {
    let engine = Engine::new(EngineConfig::with_executors(2).punctuation(25));
    let app = Arc::new(Counter);
    let store = counter_store(16);
    let mut session = engine
        .session_builder(&app, &store, &Scheme::TStream)
        .adaptive_punctuation()
        .open()
        .unwrap();
    assert_eq!(session.punctuation_interval(), 25);
    for i in 0..2_000u64 {
        session.push(i % 16).unwrap();
    }
    let grown = session.punctuation_interval();
    assert!(
        grown > 25,
        "the first observations always improve on no-best, so the \
         controller must have grown the interval (got {grown})"
    );
    let report = session.report().unwrap();
    assert_eq!(report.committed, 2_000);
    assert_eq!(counter_sum(&store), 2_000);
}

/// A fixed-size session keeps its configured interval: adaptive tuning is
/// strictly opt-in.
#[test]
fn non_adaptive_sessions_keep_a_fixed_interval() {
    let engine = Engine::new(EngineConfig::with_executors(1).punctuation(32));
    let app = Arc::new(Counter);
    let store = counter_store(8);
    let mut session = engine
        .session_builder(&app, &store, &Scheme::TStream)
        .open()
        .unwrap();
    for i in 0..500u64 {
        session.push(i % 8).unwrap();
    }
    assert_eq!(session.punctuation_interval(), 32);
    let report = session.report().unwrap();
    assert_eq!(report.committed, 500);
}

/// The report stamps shard count and label for attribution, and the
/// concurrent runner wires them through.
#[test]
fn reports_are_attributable_by_label_and_shards() {
    let spec = WorkloadSpec::default().events(300).seed(0xAB).shards(4);
    let options = RunOptions::new(spec, EngineConfig::with_executors(2).punctuation(100));
    let run = run_benchmark_concurrent(&AppKind::ALL[..2], SchemeKind::TStream, &options);
    assert_eq!(run.reports.len(), 2);
    assert_eq!(run.reports[0].label.as_deref(), Some("GS"));
    assert_eq!(run.reports[1].label.as_deref(), Some("SL"));
    for report in &run.reports {
        assert_eq!(report.shards, 4);
        assert_eq!(report.events, 300);
    }
    assert_eq!(run.events(), 600);
    assert!(run.aggregate_keps() > 0.0);
}
