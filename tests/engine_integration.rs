//! Engine-level integration tests: dual-mode scheduling behaviour,
//! punctuation intervals, NUMA-aware placements, breakdown accounting and
//! report plumbing, exercised through the public API only.

use std::sync::Arc;

use tstream_apps::workload::WorkloadSpec;
use tstream_apps::{gs, runner, tp, AppKind, RunOptions, SchemeKind};
use tstream_core::{ChainPlacement, Engine, EngineConfig, Scheme};
use tstream_txn::NumaModel;

#[test]
fn punctuation_interval_controls_batch_count_not_results() {
    let spec = WorkloadSpec::default().events(1_000).seed(5);
    let app = Arc::new(gs::GrepSum::default());
    let payloads = gs::generate(&spec);
    let mut snapshots = Vec::new();
    for interval in [25usize, 100, 500, 1_000, 4_000] {
        let store = gs::build_store(&spec);
        let engine = Engine::new(EngineConfig::with_executors(4).punctuation(interval));
        let report = engine.run(&app, &store, payloads.clone(), &Scheme::TStream);
        assert_eq!(report.committed, 1_000, "interval {interval}");
        assert_eq!(report.punctuation_interval, interval);
        snapshots.push(store.snapshot());
    }
    for pair in snapshots.windows(2) {
        assert_eq!(pair[0], pair[1], "results must not depend on the interval");
    }
}

#[test]
fn more_executors_do_not_change_results() {
    let spec = WorkloadSpec::default().events(900).seed(6);
    let app = Arc::new(tp::TollProcessing);
    let payloads = tp::generate(&spec);
    let mut reference = None;
    for executors in [1usize, 2, 4, 8, 12] {
        let store = tp::build_store(&spec);
        let engine = Engine::new(EngineConfig::with_executors(executors).punctuation(150));
        let report = engine.run(&app, &store, payloads.clone(), &Scheme::TStream);
        assert_eq!(report.executors, executors);
        assert_eq!(report.committed, 900);
        let snap = store.snapshot();
        match &reference {
            None => reference = Some(snap),
            Some(r) => assert_eq!(&snap, r, "{executors} executors diverged"),
        }
    }
}

#[test]
fn numa_model_classifies_remote_accesses_without_changing_results() {
    let spec = WorkloadSpec::default().events(800).seed(7);
    let app = Arc::new(gs::GrepSum::default());
    let payloads = gs::generate(&spec);

    // 12 executors over sockets of 4 cores => 3 synthetic sockets.
    let base = EngineConfig {
        executors: 12,
        punctuation_interval: 200,
        cores_per_socket: 4,
        numa: NumaModel::disabled(),
        ..Default::default()
    };

    let store_local = gs::build_store(&spec);
    let report_local =
        Engine::new(base).run(&app, &store_local, payloads.clone(), &Scheme::TStream);
    assert_eq!(report_local.breakdown.rma, std::time::Duration::ZERO);

    let mut numa_cfg = base;
    numa_cfg.numa = NumaModel::classify_only();
    let store_numa = gs::build_store(&spec);
    let report_numa = Engine::new(numa_cfg).run(&app, &store_numa, payloads, &Scheme::TStream);
    assert!(
        report_numa.breakdown.rma > std::time::Duration::ZERO,
        "with three synthetic sockets some accesses must be remote"
    );
    assert_eq!(store_local.snapshot(), store_numa.snapshot());
}

#[test]
fn breakdown_components_are_populated_sensibly() {
    let mut options = RunOptions::default();
    options.spec = options.spec.events(600).seed(8);
    options.engine = EngineConfig::with_executors(4).punctuation(150);

    // Baselines spend time in Sync (counters) and Lock; TStream spends Sync
    // (barriers) but no Lock at all.
    let lock_report = runner::run_benchmark(AppKind::Sl, SchemeKind::Lock, &options);
    assert!(lock_report.breakdown.lock > std::time::Duration::ZERO);
    assert!(lock_report.breakdown.useful > std::time::Duration::ZERO);

    let tstream_report = runner::run_benchmark(AppKind::Sl, SchemeKind::TStream, &options);
    assert_eq!(tstream_report.breakdown.lock, std::time::Duration::ZERO);
    assert!(tstream_report.breakdown.sync > std::time::Duration::ZERO);
    assert!(tstream_report.breakdown.useful > std::time::Duration::ZERO);
    assert!(tstream_report.state_access_time > std::time::Duration::ZERO);
    assert!(tstream_report.compute_time > std::time::Duration::ZERO);
    assert!(tstream_report.chain_stats.ops > 0);
    assert!(tstream_report.compute_mode_share() > 0.0);
}

#[test]
fn all_chain_placements_process_every_operation() {
    let spec = WorkloadSpec::default().events(700).seed(9);
    let app = Arc::new(gs::GrepSum::default());
    let payloads = gs::generate(&spec);
    // 700 GS events × transaction length 10 = 7000 operations.
    for placement in ChainPlacement::ALL {
        for stealing in [false, true] {
            let store = gs::build_store(&spec);
            let engine = Engine::new(
                EngineConfig::with_executors(6)
                    .punctuation(100)
                    .placement(placement)
                    .work_stealing(stealing),
            );
            let report = engine.run(&app, &store, payloads.clone(), &Scheme::TStream);
            assert_eq!(
                report.chain_stats.ops + report.chain_stats.skipped,
                7_000,
                "placement {placement:?} stealing {stealing}"
            );
        }
    }
}

#[test]
fn latency_percentiles_are_monotone() {
    let mut options = RunOptions::default();
    options.spec = options.spec.events(1_000).seed(10);
    options.engine = EngineConfig::with_executors(4).punctuation(250);
    let report = runner::run_benchmark(AppKind::Ob, SchemeKind::TStream, &options);
    let p50 = report.latency.percentile(50.0).unwrap();
    let p99 = report.latency.percentile(99.0).unwrap();
    let max = report.latency.max().unwrap();
    assert!(p50 <= p99);
    assert!(p99 <= max);
    assert!(report.latency.mean().unwrap() <= max);
}

#[test]
fn empty_input_produces_an_empty_report() {
    let spec = WorkloadSpec::default().events(0);
    let store = gs::build_store(&spec);
    let app = Arc::new(gs::GrepSum::default());
    let engine = Engine::new(EngineConfig::with_executors(3).punctuation(100));
    let report = engine.run(&app, &store, Vec::new(), &Scheme::TStream);
    assert_eq!(report.events, 0);
    assert_eq!(report.committed, 0);
    assert_eq!(report.latency.samples(), 0);
}

#[test]
fn single_event_single_executor_works() {
    let spec = WorkloadSpec::default().events(1).seed(20);
    let store = gs::build_store(&spec);
    let app = Arc::new(gs::GrepSum::default());
    let engine = Engine::new(EngineConfig::with_executors(1).punctuation(500));
    let report = engine.run(&app, &store, gs::generate(&spec), &Scheme::TStream);
    assert_eq!(report.committed, 1);
}

#[test]
fn executors_exceeding_events_are_harmless() {
    let spec = WorkloadSpec::default().events(5).seed(21);
    let store = gs::build_store(&spec);
    let app = Arc::new(gs::GrepSum::default());
    let engine = Engine::new(EngineConfig::with_executors(16).punctuation(2));
    let report = engine.run(&app, &store, gs::generate(&spec), &Scheme::TStream);
    assert_eq!(report.committed, 5);
}
