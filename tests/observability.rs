//! Observability integration tests.
//!
//! The metrics hub and the flight recorder are wired through every runtime
//! layer; these tests pin the invariants that make their numbers *trustworthy*
//! rather than merely present: hub counters must agree with the
//! [`RunReport`](tstream_core::RunReport) totals computed independently by the
//! sinks, the merged flight timeline must be chronologically ordered, and a
//! poisoned run must emit its post-mortem dump exactly once no matter how many
//! executors unwind.

use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;

use tstream_apps::workload::WorkloadSpec;
use tstream_apps::{ob, sl};
use tstream_core::prelude::*;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tstream-observability-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Every event increments one counter — conflict-free whenever the keys
/// within a punctuation batch are distinct, conflict-heavy when they repeat.
struct Counter;

impl Application for Counter {
    type Payload = u64;
    fn name(&self) -> &'static str {
        "counter"
    }
    fn read_write_set(&self, key: &u64) -> ReadWriteSet {
        ReadWriteSet::new().write(StateRef::new(0, *key))
    }
    fn state_access(&self, key: &u64, txn: &mut TxnBuilder) {
        txn.read_modify(0, *key, None, |ctx| {
            Ok(Value::Long(ctx.current.as_long()? + 1))
        });
    }
    fn post_process(&self, _key: &u64, _blotter: &EventBlotter) -> PostAction {
        PostAction::Emit
    }
}

/// Same application, but processing the poisoned key panics on the executor —
/// the crash the flight recorder's post-mortem dump exists for.
struct PanickyCounter {
    poison_key: u64,
}

impl Application for PanickyCounter {
    type Payload = u64;
    fn name(&self) -> &'static str {
        "panicky-counter"
    }
    fn read_write_set(&self, key: &u64) -> ReadWriteSet {
        ReadWriteSet::new().write(StateRef::new(0, *key))
    }
    fn state_access(&self, key: &u64, txn: &mut TxnBuilder) {
        assert_ne!(*key, self.poison_key, "deliberate test panic");
        txn.read_modify(0, *key, None, |ctx| {
            Ok(Value::Long(ctx.current.as_long()? + 1))
        });
    }
    fn post_process(&self, _key: &u64, _blotter: &EventBlotter) -> PostAction {
        PostAction::Emit
    }
}

fn counter_store(keys: u64) -> Arc<StateStore> {
    let table = TableBuilder::new("counters")
        .extend((0..keys).map(|k| (k, Value::Long(0))))
        .build()
        .unwrap();
    StateStore::new(vec![table]).unwrap()
}

/// OB store with scarce inventory so a realistic share of bids is rejected.
fn scarce_ob_store(keys: u64, qty: i64) -> Arc<StateStore> {
    let items = TableBuilder::new("items")
        .extend((0..keys).map(|k| (k, Value::Pair(ob::INITIAL_PRICE, qty))))
        .build()
        .unwrap();
    StateStore::new(vec![items]).unwrap()
}

#[test]
fn every_ingested_event_is_accounted_committed_or_rejected() {
    // Abort-heavy workload: the hub's ingestion counter must equal the sum of
    // its own commit/reject counters AND the independently aggregated report.
    let spec = WorkloadSpec::default().events(2_000).keys(16).seed(91);
    let events = ob::generate(&spec);
    let app = Arc::new(ob::OnlineBidding);
    let store = scarce_ob_store(spec.keys, 5);
    let engine = Engine::new(EngineConfig::with_executors(4).punctuation(250));
    let report = engine.run(&app, &store, events, &Scheme::TStream);
    assert!(report.rejected > 0, "workload must actually abort");

    let m = engine.metrics_snapshot();
    assert_eq!(m.ingest_events, 2_000);
    assert_eq!(
        m.ingest_events,
        m.exec_committed + m.exec_rejected,
        "events in must equal committed + rejected"
    );
    assert_eq!(m.exec_committed, report.committed);
    assert_eq!(m.exec_rejected, report.rejected);
    assert_eq!(m.ingest_batches, 2_000 / 250);
    assert_eq!(m.exec_batches, m.ingest_batches);
}

#[test]
fn fast_path_counter_matches_the_report() {
    // Distinct keys per batch → every batch is conflict-free → fast path.
    let store = counter_store(256);
    let engine = Engine::new(EngineConfig::with_executors(4).punctuation(64));
    let report = engine.run(
        &Arc::new(Counter),
        &store,
        (0..256u64).collect(),
        &Scheme::TStream,
    );
    assert_eq!(
        report.fast_path_batches, 4,
        "all four batches conflict-free"
    );

    let m = engine.metrics_snapshot();
    assert_eq!(m.exec_fast_path_batches, report.fast_path_batches);
    assert_eq!(m.exec_batches, 4);
    assert_eq!(m.exec_restructured_batches, 0);

    // Conflict-heavy keys on a fresh engine: no fast path, chains instead.
    let store = counter_store(4);
    let engine = Engine::new(EngineConfig::with_executors(4).punctuation(64));
    let report = engine.run(
        &Arc::new(Counter),
        &store,
        (0..256u64).map(|i| i % 4).collect(),
        &Scheme::TStream,
    );
    assert_eq!(report.fast_path_batches, 0);
    let m = engine.metrics_snapshot();
    assert_eq!(m.exec_fast_path_batches, 0);
    assert_eq!(m.exec_restructured_batches, 4);
    assert!(m.exec_chains_built >= 4, "each batch builds chains");
    assert_eq!(
        m.exec_chains_recycled, m.exec_chains_built,
        "every chain arena goes back to its pool"
    );
}

#[test]
fn wal_counters_match_the_durable_report() {
    let dir = temp_dir("wal");
    let spec = WorkloadSpec::default().events(1_200).keys(32).seed(92);
    let events = sl::generate(&spec);
    let store = sl::build_store(&spec);
    let app = Arc::new(sl::StreamingLedger);
    let engine = Engine::new(EngineConfig::with_executors(4).punctuation(200));
    let mut session = engine
        .session_builder(&app, &store, &Scheme::TStream)
        .durable(&dir)
        .open()
        .unwrap();
    for event in events {
        session.push(event).unwrap();
    }
    let report = session.report().unwrap();
    assert!(report.wal_bytes > 0);

    let m = engine.metrics_snapshot();
    assert_eq!(
        m.wal_bytes, report.wal_bytes,
        "hub WAL bytes must equal the report's"
    );
    assert!(
        m.wal_seals >= m.ingest_batches,
        "every batch seals a segment"
    );
    assert!(m.wal_fsyncs > 0);
    assert!(m.wal_windows > 0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn flight_timeline_is_merged_in_chronological_order() {
    let store = counter_store(64);
    let engine = Engine::new(EngineConfig::with_executors(4).punctuation(64));
    let _ = engine.run(
        &Arc::new(Counter),
        &store,
        (0..512u64).map(|i| i % 64).collect(),
        &Scheme::TStream,
    );

    let timeline = engine.flight_recording();
    assert!(!timeline.is_empty());
    for pair in timeline.windows(2) {
        assert!(
            (pair[0].t_ns, pair[0].seq) <= (pair[1].t_ns, pair[1].seq),
            "timeline must be ordered by (t_ns, seq)"
        );
    }
    // Events from more than one lane made it into the merge.
    let mut lanes: Vec<u32> = timeline.iter().map(|e| e.lane).collect();
    lanes.sort_unstable();
    lanes.dedup();
    assert!(
        lanes.len() > 1,
        "expected executor + ingest lanes, got {lanes:?}"
    );
    assert!(
        timeline
            .iter()
            .any(|e| matches!(e.kind, TraceKind::FastPath | TraceKind::Restructured { .. })),
        "scheduling decisions must be traced"
    );
}

#[test]
fn metrics_text_exposes_a_rich_series_catalogue() {
    let store = counter_store(64);
    let engine = Engine::new(EngineConfig::with_executors(2).punctuation(64));
    let _ = engine.run(
        &Arc::new(Counter),
        &store,
        (0..128u64).map(|i| i % 64).collect(),
        &Scheme::TStream,
    );

    let text = engine.metrics_text();
    let series: Vec<&str> = text
        .lines()
        .filter(|l| l.starts_with("# TYPE "))
        .map(|l| l.split_whitespace().nth(2).unwrap())
        .collect();
    assert!(
        series.len() >= 20,
        "expected at least 20 distinct series, got {}: {series:?}",
        series.len()
    );
    // Every series declared must also be emitted with a numeric value.
    for name in &series {
        assert!(
            text.lines()
                .any(|l| l.starts_with(name) && !l.starts_with('#')),
            "{name} declared but never emitted"
        );
    }
    // The JSON dump parses as one flat object with the same ingest total.
    let json = engine.metrics_json();
    assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    assert!(json.contains("\"ingest_events\":128"));
}

#[test]
fn disabled_observability_records_nothing() {
    let store = counter_store(64);
    let engine = Engine::new(
        EngineConfig::with_executors(2)
            .punctuation(64)
            .observability(ObsConfig::disabled()),
    );
    let report = engine.run(
        &Arc::new(Counter),
        &store,
        (0..128u64).map(|i| i % 64).collect(),
        &Scheme::TStream,
    );
    assert_eq!(report.committed, 128, "results unaffected by obs mode");
    let m = engine.metrics_snapshot();
    assert_eq!(m.ingest_events, 0);
    assert_eq!(m.exec_committed, 0);
    assert!(engine.flight_recording().is_empty());
}

#[test]
fn poisoned_run_dumps_the_post_mortem_exactly_once() {
    // A panicking application poisons the batch barrier: the panicking
    // executor and every sibling that unwinds on the poisoned barrier all
    // funnel into the same dump latch, which must fire exactly once.
    let store = counter_store(64);
    let engine = Engine::new(EngineConfig::with_executors(4).punctuation(64));
    let app = Arc::new(PanickyCounter { poison_key: 13 });
    assert_eq!(engine.post_mortem_count(), 0);

    let caught = catch_unwind(AssertUnwindSafe(|| {
        let mut session = engine
            .session_builder(&app, &store, &Scheme::TStream)
            .open()
            .unwrap();
        for key in 0..256u64 {
            session.push(key % 64).unwrap();
        }
        session.report().unwrap()
    }));
    assert!(caught.is_err(), "the application panic must re-raise");

    assert_eq!(
        engine.post_mortem_count(),
        1,
        "the dump latch must fire exactly once per engine"
    );
    let dump = engine.last_post_mortem().expect("a dump was recorded");
    assert!(
        dump.contains("executor panicked"),
        "dump must name the reason: {dump}"
    );
    // The recorder captured the crash markers before the dump formatted it.
    assert!(
        dump.contains("PANICKED") && dump.contains("POISONED"),
        "dump must carry the crash trace markers: {dump}"
    );

    // The engine survives: a healthy session on the same pool still works,
    // and its panic-free run does not re-arm the dump latch.
    let healthy = Engine::new(EngineConfig::with_executors(4).punctuation(64));
    drop(healthy);
    let store2 = counter_store(64);
    let report = engine.run(
        &Arc::new(Counter),
        &store2,
        (0..128u64).map(|i| i % 64).collect(),
        &Scheme::TStream,
    );
    assert_eq!(report.committed, 128);
    assert_eq!(engine.post_mortem_count(), 1, "still exactly one dump");
}
