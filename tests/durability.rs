//! Durability integration tests (Section IV-D).
//!
//! The engine replicates the committed state to disk at every punctuation
//! boundary when a [`Checkpointer`] is attached.  These tests exercise the
//! full path — engine run with checkpointing, crash, recovery onto a fresh
//! store — through the public API only.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use tstream_apps::workload::WorkloadSpec;
use tstream_apps::{gs, sl, tp};
use tstream_core::{Engine, EngineConfig, Scheme};
use tstream_state::{Checkpointer, StoreSnapshot};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tstream-durability-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn engine_writes_one_checkpoint_per_punctuation_batch() {
    let dir = temp_dir("per-batch");
    let spec = WorkloadSpec::default().events(1_000).seed(31);
    let store = gs::build_store(&spec);
    let app = Arc::new(gs::GrepSum::default());
    let checkpointer = Arc::new(Checkpointer::new(&dir, 16).unwrap());

    let engine = Engine::new(EngineConfig::with_executors(4).punctuation(250))
        .with_checkpointer(checkpointer.clone());
    let report = engine.run(&app, &store, gs::generate(&spec), &Scheme::TStream);

    // 1000 events / interval 250 = 4 punctuation batches = 4 checkpoints.
    assert_eq!(report.checkpoints, 4);
    assert_eq!(checkpointer.list().unwrap().len(), 4);

    // The newest checkpoint equals the final committed state.
    let latest = checkpointer.latest_snapshot().unwrap().unwrap();
    assert_eq!(latest, StoreSnapshot::capture(&store));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn recovery_after_crash_matches_the_original_final_state() {
    let dir = temp_dir("recovery");
    let spec = WorkloadSpec::default().events(800).seed(32);
    let events = tp::generate(&spec);
    let app = Arc::new(tp::TollProcessing);

    // First "process": run to completion with checkpointing enabled.
    let original = tp::build_store(&spec);
    {
        let checkpointer = Arc::new(Checkpointer::new(&dir, 4).unwrap());
        let engine = Engine::new(EngineConfig::with_executors(4).punctuation(200))
            .with_checkpointer(checkpointer);
        let report = engine.run(&app, &original, events.clone(), &Scheme::TStream);
        assert_eq!(report.committed, 800);
    }

    // Second "process": recover the latest checkpoint into a fresh store.
    let recovered = tp::build_store(&spec);
    let checkpointer = Checkpointer::new(&dir, 4).unwrap();
    assert!(checkpointer.recover_into(&recovered).unwrap());
    assert_eq!(recovered.snapshot(), original.snapshot());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn checkpoints_are_written_under_eager_schemes_too() {
    let dir = temp_dir("eager");
    let spec = WorkloadSpec::default().events(600).seed(33);
    let store = sl::build_store(&spec);
    let app = Arc::new(sl::StreamingLedger);
    let checkpointer = Arc::new(Checkpointer::new(&dir, 8).unwrap());

    let engine = Engine::new(EngineConfig::with_executors(3).punctuation(200))
        .with_checkpointer(checkpointer.clone());
    let report = engine.run(
        &app,
        &store,
        sl::generate(&spec),
        &tstream_apps::SchemeKind::Mvlk.build(4),
    );
    assert_eq!(report.checkpoints, 3);
    let latest = checkpointer.latest_snapshot().unwrap().unwrap();
    assert_eq!(latest, StoreSnapshot::capture(&store));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn retention_limit_is_honoured_across_a_run() {
    let dir = temp_dir("retention");
    let spec = WorkloadSpec::default().events(1_500).seed(34);
    let store = gs::build_store(&spec);
    let app = Arc::new(gs::GrepSum::default());
    let checkpointer = Arc::new(Checkpointer::new(&dir, 2).unwrap());

    let engine = Engine::new(EngineConfig::with_executors(2).punctuation(100))
        .with_checkpointer(checkpointer.clone());
    let report = engine.run(&app, &store, gs::generate(&spec), &Scheme::TStream);
    assert_eq!(report.checkpoints, 15);
    assert_eq!(
        checkpointer.list().unwrap().len(),
        2,
        "only the configured number of checkpoints may remain on disk"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn runs_without_a_checkpointer_write_nothing() {
    let spec = WorkloadSpec::default().events(300).seed(35);
    let store = gs::build_store(&spec);
    let app = Arc::new(gs::GrepSum::default());
    let engine = Engine::new(EngineConfig::with_executors(2).punctuation(100));
    assert!(engine.checkpointer().is_none());
    let report = engine.run(&app, &store, gs::generate(&spec), &Scheme::TStream);
    assert_eq!(report.checkpoints, 0);
}

#[test]
fn checkpointing_does_not_change_results() {
    let dir = temp_dir("equivalence");
    let spec = WorkloadSpec::default().events(700).seed(36);
    let events = gs::generate(&spec);
    let app = Arc::new(gs::GrepSum::default());

    let plain_store = gs::build_store(&spec);
    let _ = Engine::new(EngineConfig::with_executors(4).punctuation(150)).run(
        &app,
        &plain_store,
        events.clone(),
        &Scheme::TStream,
    );

    let durable_store = gs::build_store(&spec);
    let checkpointer = Arc::new(Checkpointer::new(&dir, 4).unwrap());
    let _ = Engine::new(EngineConfig::with_executors(4).punctuation(150))
        .with_checkpointer(checkpointer)
        .run(&app, &durable_store, events, &Scheme::TStream);

    assert_eq!(plain_store.snapshot(), durable_store.snapshot());
    let _ = fs::remove_dir_all(&dir);
}
