//! Schedule-equivalence tests (Definition 2 of the paper).
//!
//! Every consistency-preserving scheme must produce a state transaction
//! schedule that is conflict-equivalent to the timestamp order of the
//! triggering events.  We verify this end to end: the same deterministic
//! workload is executed (a) serially on one executor under LOCK — the
//! reference — and (b) under every scheme with many executors; the final
//! contents of every table must be identical.

use std::sync::Arc;

use tstream_apps::runner::{run_benchmark, AppKind, RunOptions, SchemeKind};
use tstream_apps::workload::WorkloadSpec;
use tstream_apps::{gs, ob, sl, tp};
use tstream_core::{ChainPlacement, DependencyResolution, Engine, EngineConfig, Scheme};
use tstream_state::{StateStore, Value};

/// Run one app serially (reference) and return the final snapshot.
fn reference_snapshot(app: AppKind, spec: &WorkloadSpec) -> Vec<(String, u64, Value)> {
    let options = RunOptions {
        spec: *spec,
        engine: EngineConfig::with_executors(1).punctuation(spec.events.max(1)),
        pat_partitions: spec.partitions,
        ..RunOptions::default()
    };
    snapshot_after(app, SchemeKind::Lock, &options)
}

/// Run one (app, scheme) combination and return the final store snapshot.
fn snapshot_after(
    app: AppKind,
    scheme: SchemeKind,
    options: &RunOptions,
) -> Vec<(String, u64, Value)> {
    // run_benchmark builds its own store internally; rebuild the same store
    // here and run through the engine directly so we can inspect it.
    let engine = Engine::new(options.engine);
    let built = scheme.build(options.pat_partitions);
    match app {
        AppKind::Gs => {
            let store = gs::build_store(&options.spec);
            let application = Arc::new(gs::GrepSum::default());
            let _ = engine.run(&application, &store, gs::generate(&options.spec), &built);
            store.snapshot()
        }
        AppKind::Sl => {
            let store = sl::build_store(&options.spec);
            let application = Arc::new(sl::StreamingLedger);
            let _ = engine.run(&application, &store, sl::generate(&options.spec), &built);
            store.snapshot()
        }
        AppKind::Ob => {
            let store = ob::build_store(&options.spec);
            let application = Arc::new(ob::OnlineBidding);
            let _ = engine.run(&application, &store, ob::generate(&options.spec), &built);
            store.snapshot()
        }
        AppKind::Tp => {
            let store = tp::build_store(&options.spec);
            let application = Arc::new(tp::TollProcessing);
            let _ = engine.run(&application, &store, tp::generate(&options.spec), &built);
            store.snapshot()
        }
    }
}

fn assert_equivalent(app: AppKind, scheme: SchemeKind, executors: usize, spec: WorkloadSpec) {
    let reference = reference_snapshot(app, &spec);
    let options = RunOptions {
        spec,
        engine: EngineConfig::with_executors(executors).punctuation(100),
        pat_partitions: spec.partitions,
        ..RunOptions::default()
    };
    let got = snapshot_after(app, scheme, &options);
    assert_eq!(
        got,
        reference,
        "{} under {} with {executors} executors diverged from serial execution",
        app.label(),
        scheme.label()
    );
}

#[test]
fn gs_all_schemes_match_serial_execution() {
    let spec = WorkloadSpec::default().events(1_200).seed(11);
    for scheme in SchemeKind::CONSISTENT {
        assert_equivalent(AppKind::Gs, scheme, 6, spec);
    }
}

#[test]
fn sl_all_schemes_match_serial_execution() {
    let spec = WorkloadSpec::default().events(1_200).seed(12);
    for scheme in SchemeKind::CONSISTENT {
        assert_equivalent(AppKind::Sl, scheme, 6, spec);
    }
}

#[test]
fn ob_all_schemes_match_serial_execution() {
    let spec = WorkloadSpec::default().events(1_200).seed(13);
    for scheme in SchemeKind::CONSISTENT {
        assert_equivalent(AppKind::Ob, scheme, 6, spec);
    }
}

#[test]
fn tp_all_schemes_match_serial_execution() {
    let spec = WorkloadSpec::default().events(1_200).seed(14);
    for scheme in SchemeKind::CONSISTENT {
        assert_equivalent(AppKind::Tp, scheme, 6, spec);
    }
}

#[test]
fn tstream_placements_and_resolutions_are_all_correct() {
    // The NUMA-aware placements and both dependency-resolution strategies
    // must not change results, only performance (Figure 14).
    let spec = WorkloadSpec::default().events(1_000).seed(15);
    let reference = reference_snapshot(AppKind::Sl, &spec);
    for placement in ChainPlacement::ALL {
        for resolution in [
            DependencyResolution::FineGrained,
            DependencyResolution::Rounds,
        ] {
            for work_stealing in [false, true] {
                let store = sl::build_store(&spec);
                let app = Arc::new(sl::StreamingLedger);
                let engine = Engine::new(
                    EngineConfig::with_executors(6)
                        .punctuation(125)
                        .placement(placement)
                        .resolution(resolution)
                        .work_stealing(work_stealing),
                );
                let _ = engine.run(&app, &store, sl::generate(&spec), &Scheme::TStream);
                assert_eq!(
                    store.snapshot(),
                    reference,
                    "placement {placement:?} resolution {resolution:?} stealing {work_stealing}"
                );
            }
        }
    }
}

#[test]
fn skewed_single_key_contention_is_still_correct() {
    // Extreme contention: nearly every transaction touches the same few keys.
    let spec = WorkloadSpec::default().events(800).skew(0.99).seed(16);
    for scheme in SchemeKind::CONSISTENT {
        assert_equivalent(AppKind::Gs, scheme, 8, spec);
    }
}

#[test]
fn throughput_reports_are_internally_consistent() {
    let mut options = RunOptions::default();
    options.spec = options.spec.events(500).seed(17);
    options.engine = EngineConfig::with_executors(4).punctuation(100);
    for app in AppKind::ALL {
        for scheme in SchemeKind::ALL {
            let report = run_benchmark(app, scheme, &options);
            assert_eq!(report.events, 500);
            assert_eq!(report.committed + report.rejected, report.events);
            assert!(report.latency.samples() as u64 <= report.events);
            assert!(report.elapsed.as_nanos() > 0);
        }
    }
}

#[test]
fn store_snapshots_are_deterministic_for_identical_runs() {
    // Two runs of the exact same configuration must agree bit for bit —
    // guards against hidden nondeterminism in the generators.
    let spec = WorkloadSpec::default().events(600).seed(18);
    let a = reference_snapshot(AppKind::Tp, &spec);
    let b = reference_snapshot(AppKind::Tp, &spec);
    assert_eq!(a, b);
}

/// Helper: assert a snapshot holds a specific number of entries (sanity that
/// the snapshot machinery sees every table).
#[test]
fn snapshots_cover_all_tables() {
    let spec = WorkloadSpec::default().events(10).seed(19);
    let store: Arc<StateStore> = sl::build_store(&spec);
    assert_eq!(store.snapshot().len(), 2 * spec.keys as usize);
}
