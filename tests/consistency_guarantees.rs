//! Tests for the ACID-style guarantees of Section IV-D.
//!
//! * **Atomicity** — all operations of a transaction between two punctuations
//!   are executed, or none are (aborted transactions leave no partial
//!   effects);
//! * **Consistency** — application invariants (non-negative balances,
//!   positive road speeds, non-negative quantities) hold after every run;
//! * **Isolation** — concurrent execution is equivalent to some serial order
//!   (covered in depth by `schedule_equivalence.rs`; spot-checked here);
//! * **Durability** — out of scope (states are kept in main memory, as in the
//!   paper).

use std::sync::Arc;

use tstream_apps::workload::WorkloadSpec;
use tstream_apps::{ob, sl, SchemeKind};
use tstream_core::{Engine, EngineConfig, Scheme};
use tstream_state::{StateError, StateStore, TableBuilder, TableId, Value};
use tstream_stream::operator::{AccessMode, ReadWriteSet, StateRef};
use tstream_txn::{Application, EventBlotter, PostAction, TxnBuilder};

/// An application designed to abort on demand: each event transfers between
/// two slots but fails when the source is below the requested amount.
#[derive(Clone)]
struct FragileTransfer;

#[derive(Clone)]
struct FtEvent {
    src: u64,
    dst: u64,
    amount: i64,
}

impl Application for FragileTransfer {
    type Payload = FtEvent;

    fn name(&self) -> &'static str {
        "fragile-transfer"
    }

    fn read_write_set(&self, e: &FtEvent) -> ReadWriteSet {
        let mut set = ReadWriteSet::new();
        set.push(StateRef::new(0, e.src), AccessMode::Write);
        set.push(StateRef::new(0, e.dst), AccessMode::Write);
        set.push(StateRef::new(0, e.src), AccessMode::Read);
        set
    }

    fn state_access(&self, e: &FtEvent, txn: &mut TxnBuilder) {
        // Dependent credit first, then the debit, so every scheme evaluates
        // the sufficiency condition against the pre-transaction source value
        // (see the SL application for the same convention).
        let amount = e.amount;
        txn.write_with(0, e.dst, Some(StateRef::new(0, e.src)), move |ctx| {
            let src = ctx.dependency.unwrap().as_long()?;
            if src >= amount {
                Ok(Value::Long(ctx.current.as_long()? + amount))
            } else {
                Err(StateError::ConsistencyViolation("insufficient".into()))
            }
        });
        txn.read_modify(0, e.src, None, move |ctx| {
            let balance = ctx.current.as_long()?;
            if balance >= amount {
                Ok(Value::Long(balance - amount))
            } else {
                Err(StateError::ConsistencyViolation("insufficient".into()))
            }
        });
    }

    fn post_process(&self, _e: &FtEvent, blotter: &EventBlotter) -> PostAction {
        if blotter.is_aborted() {
            PostAction::Silent
        } else {
            PostAction::Emit
        }
    }
}

fn tiny_store(slots: u64, balance: i64) -> Arc<StateStore> {
    let t = TableBuilder::new("slots")
        .extend((0..slots).map(|k| (k, Value::Long(balance))))
        .build()
        .unwrap();
    StateStore::new(vec![t]).unwrap()
}

fn total(store: &StateStore) -> i64 {
    store
        .table(TableId(0))
        .iter()
        .map(|(_, r)| r.read_committed().as_long().unwrap())
        .sum()
}

/// Atomicity: an aborted transfer must not apply its credit either, so the
/// total is conserved even when most transfers fail, under every scheme.
#[test]
fn atomicity_aborted_transfers_leave_no_partial_effects() {
    // Every transfer drains the same source slot, so only the first one fits
    // and every later transfer must abort; any partial application (a credit
    // without its debit, or vice versa) would change the total.
    let events: Vec<FtEvent> = (0..400)
        .map(|i| FtEvent {
            src: 0,
            dst: 1 + (i % 7),
            amount: 10,
        })
        .collect();
    let app = Arc::new(FragileTransfer);
    for scheme in SchemeKind::CONSISTENT {
        let store = tiny_store(8, 15);
        let engine = Engine::new(EngineConfig::with_executors(4).punctuation(50));
        let report = engine.run(&app, &store, events.clone(), &scheme.build(4));
        assert!(
            report.rejected > 0,
            "{}: the workload must produce aborts",
            scheme.label()
        );
        assert_eq!(
            total(&store),
            8 * 15,
            "{}: aborted transfers must not move money",
            scheme.label()
        );
        // No slot may go negative.
        for (_, record) in store.table(TableId(0)).iter() {
            assert!(record.read_committed().as_long().unwrap() >= 0);
        }
    }
}

/// Consistency: SL balances never go negative, OB quantities never go
/// negative, under concurrent execution with TStream.
#[test]
fn consistency_invariants_hold_after_concurrent_runs() {
    let spec = WorkloadSpec::default().events(2_000).seed(77);

    let sl_store = sl::build_store(&spec);
    let engine = Engine::new(EngineConfig::with_executors(8).punctuation(250));
    let _ = engine.run(
        &Arc::new(sl::StreamingLedger),
        &sl_store,
        sl::generate(&spec),
        &Scheme::TStream,
    );
    for table in ["accounts", "assets"] {
        for (_, record) in sl_store.table_by_name(table).unwrap().iter() {
            assert!(record.read_committed().as_long().unwrap() >= 0);
        }
    }

    let ob_store = ob::build_store(&spec);
    let _ = engine.run(
        &Arc::new(ob::OnlineBidding),
        &ob_store,
        ob::generate(&spec),
        &Scheme::TStream,
    );
    for (_, record) in ob_store.table_by_name("items").unwrap().iter() {
        let (price, qty) = record.read_committed().as_pair().unwrap();
        assert!(price > 0);
        assert!(qty >= 0);
    }
}

/// Isolation spot check: with a single hot key and interleaved increments of
/// +1 and ×2, the final value depends on the exact order; all schemes must
/// agree with the serial order.
#[test]
fn isolation_order_sensitive_updates_agree_with_serial_order() {
    #[derive(Clone)]
    enum Op {
        Add(i64),
        Double,
    }
    #[derive(Clone)]
    struct HotKey(Op);
    struct HotApp;
    impl Application for HotApp {
        type Payload = HotKey;
        fn name(&self) -> &'static str {
            "hot-key"
        }
        fn read_write_set(&self, _e: &HotKey) -> ReadWriteSet {
            ReadWriteSet::new().write(StateRef::new(0, 0))
        }
        fn state_access(&self, e: &HotKey, txn: &mut TxnBuilder) {
            match e.0 {
                Op::Add(v) => {
                    txn.read_modify(0, 0, None, move |ctx| {
                        Ok(Value::Long(ctx.current.as_long()? + v))
                    });
                }
                Op::Double => {
                    txn.read_modify(0, 0, None, |ctx| {
                        Ok(Value::Long(ctx.current.as_long()? * 2))
                    });
                }
            }
        }
        fn post_process(&self, _e: &HotKey, _b: &EventBlotter) -> PostAction {
            PostAction::Emit
        }
    }

    let events: Vec<HotKey> = (0..300)
        .map(|i| {
            if i % 7 == 0 {
                HotKey(Op::Double)
            } else {
                HotKey(Op::Add((i % 5) as i64))
            }
        })
        .collect();
    // Serial expectation.
    let mut expected = 1i64;
    for e in &events {
        expected = match e.0 {
            Op::Add(v) => expected.wrapping_add(v),
            Op::Double => expected.wrapping_mul(2),
        };
    }

    let app = Arc::new(HotApp);
    for scheme in SchemeKind::CONSISTENT {
        let store = tiny_store(1, 1);
        let engine = Engine::new(EngineConfig::with_executors(6).punctuation(60));
        let _ = engine.run(&app, &store, events.clone(), &scheme.build(2));
        assert_eq!(
            store.record(TableId(0), 0).unwrap().read_committed(),
            Value::Long(expected),
            "{} broke the serial order on a hot key",
            scheme.label()
        );
    }
}

/// Rejected events are visible to the user through the output stream
/// (Section IV-C.2): the number of rejections must be reported faithfully.
#[test]
fn rejected_events_are_reported_on_the_output_stream() {
    let events: Vec<FtEvent> = (0..50)
        .map(|i| FtEvent {
            src: 0,
            dst: 1,
            amount: if i == 0 { 5 } else { 1_000 },
        })
        .collect();
    let app = Arc::new(FragileTransfer);
    let store = tiny_store(2, 10);
    let engine = Engine::new(EngineConfig::with_executors(2).punctuation(10));
    let report = engine.run(&app, &store, events, &Scheme::TStream);
    assert_eq!(report.committed, 1, "only the first small transfer fits");
    assert_eq!(report.rejected, 49);
}
