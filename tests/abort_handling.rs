//! Abort / failure-injection tests.
//!
//! Section IV-C.2 ("Handling Transaction Abort") promises that application
//! semantics do not change across schemes: whether a transaction commits or
//! is rejected depends only on the application's consistency checks evaluated
//! at the transaction's position in the timestamp order, never on *how* the
//! scheme executes or aborts it.  These tests inject aborts through the real
//! benchmark applications (scarce bidding inventory, scarce ledger balances,
//! invalid updates) and verify that every consistency-preserving scheme makes
//! identical commit/abort decisions, leaves no partial effects behind, and
//! reports rejected events on the output stream.

use std::sync::Arc;

use tstream_apps::workload::WorkloadSpec;
use tstream_apps::{gs, ob, sl, AppKind, RunOptions, SchemeKind};
use tstream_core::{Engine, EngineConfig, Scheme};
use tstream_state::{StateStore, TableBuilder, TableId, Value};

/// OB store with only `qty` units of every item, so bids quickly exhaust the
/// inventory and later bids must be rejected.
fn scarce_ob_store(keys: u64, qty: i64) -> Arc<StateStore> {
    let items = TableBuilder::new("items")
        .extend((0..keys).map(|k| (k, Value::Pair(ob::INITIAL_PRICE, qty))))
        .build()
        .unwrap();
    StateStore::new(vec![items]).unwrap()
}

/// SL store with only `balance` per account/asset, so transfers quickly
/// drain the sources and later transfers must be rejected.
fn scarce_sl_store(keys: u64, balance: i64) -> Arc<StateStore> {
    let accounts = TableBuilder::new("accounts")
        .extend((0..keys).map(|k| (k, Value::Long(balance))))
        .build()
        .unwrap();
    let assets = TableBuilder::new("assets")
        .extend((0..keys).map(|k| (k, Value::Long(balance))))
        .build()
        .unwrap();
    StateStore::new(vec![accounts, assets]).unwrap()
}

#[test]
fn scarce_inventory_bids_abort_identically_under_every_scheme() {
    // 16 items with 5 units each and thousands of bids: most bids must be
    // rejected, and *which* ones are rejected is fully determined by the
    // timestamp order, so every scheme agrees on the counts and final state.
    let spec = WorkloadSpec::default().events(2_000).keys(16).seed(71);
    let events = ob::generate(&spec);
    let app = Arc::new(ob::OnlineBidding);

    let reference_store = scarce_ob_store(spec.keys, 5);
    let reference_report = Engine::new(EngineConfig::with_executors(1).punctuation(200)).run(
        &app,
        &reference_store,
        events.clone(),
        &Scheme::TStream,
    );
    assert!(
        reference_report.rejected > 0,
        "the scarce workload must actually produce aborts"
    );
    assert!(reference_report.committed > 0);

    for scheme in SchemeKind::CONSISTENT {
        let store = scarce_ob_store(spec.keys, 5);
        let engine = Engine::new(EngineConfig::with_executors(6).punctuation(200));
        let report = engine.run(&app, &store, events.clone(), &scheme.build(4));
        assert_eq!(
            report.committed,
            reference_report.committed,
            "{} commits differ",
            scheme.label()
        );
        assert_eq!(
            report.rejected,
            reference_report.rejected,
            "{} rejects differ",
            scheme.label()
        );
        assert_eq!(
            store.snapshot(),
            reference_store.snapshot(),
            "{} final state differs",
            scheme.label()
        );
    }
}

#[test]
fn scarce_balances_conserve_money_under_aborting_transfers() {
    let spec = WorkloadSpec::default().events(1_500).keys(32).seed(72);
    let events = sl::generate(&spec);
    let app = Arc::new(sl::StreamingLedger);

    // Deposits add money; transfers only move it.  Regardless of how many
    // transfers abort, the closing balance must equal the opening balance
    // plus exactly the committed deposits — any partial transfer effect
    // would break this equation.
    let deposit_total: i64 = events
        .iter()
        .map(|e| match e {
            sl::SlEvent::Deposit { amount, .. } => 2 * amount, // account + asset
            sl::SlEvent::Transfer { .. } => 0,
        })
        .sum();

    for scheme in SchemeKind::CONSISTENT {
        let store = scarce_sl_store(spec.keys, 50);
        let opening = sl::total_balance(&store);
        let engine = Engine::new(EngineConfig::with_executors(5).punctuation(150));
        let report = engine.run(&app, &store, events.clone(), &scheme.build(4));
        assert!(
            report.rejected > 0,
            "{}: scarce balances must reject some transfers",
            scheme.label()
        );
        assert_eq!(
            sl::total_balance(&store),
            opening + deposit_total,
            "{}: money was created or destroyed by aborted transfers",
            scheme.label()
        );
    }
}

#[test]
fn multi_write_abort_rolls_back_every_operation_chain() {
    // An Alter request with one invalid price (<= 0) in the middle must abort
    // as a whole: none of its 20 item prices may change, even though its
    // operations live in 20 different operation chains under TStream
    // (the "high overhead when aborting multi-write transactions" limitation
    // of Section IV-F — expensive, but still correct).
    let spec = WorkloadSpec::default().events(1).keys(64).seed(73);
    let app = Arc::new(ob::OnlineBidding);
    let items: Vec<u64> = (0..20u64).collect();
    let mut prices: Vec<i64> = (0..20).map(|i| 200 + i as i64).collect();
    prices[13] = -5; // the poisoned update

    let poisoned = vec![ob::ObEvent::Alter {
        items: items.clone(),
        prices,
    }];

    for scheme in SchemeKind::CONSISTENT {
        let store = ob::build_store(&spec);
        let before = store.snapshot();
        let engine = Engine::new(EngineConfig::with_executors(4).punctuation(10));
        let report = engine.run(&app, &store, poisoned.clone(), &scheme.build(4));
        assert_eq!(report.committed, 0, "{}", scheme.label());
        assert_eq!(report.rejected, 1, "{}", scheme.label());
        assert_eq!(
            store.snapshot(),
            before,
            "{}: an aborted multi-write transaction left partial effects",
            scheme.label()
        );
    }
}

#[test]
fn multi_write_abort_spanning_two_shards_restores_both_shards() {
    // A poisoned Alter whose 20 writes physically span both shards of a
    // 2-shard store: under TStream its operations live in chains routed to
    // different shard-affine pools (possibly processed by different
    // executors), so the abort triggers the serial batch replay.  The replay
    // must restore the exact pre-batch state on *both* shards, verified
    // shard by shard through the store's own per-shard snapshots.
    let spec = WorkloadSpec::default()
        .events(1)
        .keys(64)
        .seed(78)
        .shards(2);
    let app = Arc::new(ob::OnlineBidding);
    let store = ob::build_store(&spec);
    assert_eq!(store.num_shards(), 2);

    let items: Vec<u64> = (0..20u64).collect();
    let mut prices: Vec<i64> = (0..20).map(|i| 300 + i as i64).collect();
    prices[11] = -9; // the poisoned update

    // The transaction must really be a cross-shard one.
    let mut shards_touched: Vec<u32> = items.iter().map(|&k| store.shard_of(k).0).collect();
    shards_touched.sort_unstable();
    shards_touched.dedup();
    assert_eq!(
        shards_touched,
        vec![0, 1],
        "the poisoned Alter must write to both shards"
    );

    let before_shard0 = store.snapshot_shard(tstream_state::ShardId(0));
    let before_shard1 = store.snapshot_shard(tstream_state::ShardId(1));

    let poisoned = vec![ob::ObEvent::Alter { items, prices }];
    let engine = Engine::new(EngineConfig::with_executors(4).punctuation(10).shards(2));
    let report = engine.run(&app, &store, poisoned, &Scheme::TStream);
    assert_eq!(report.committed, 0);
    assert_eq!(report.rejected, 1);

    assert_eq!(
        store.snapshot_shard(tstream_state::ShardId(0)),
        before_shard0,
        "shard 0 must be restored to its pre-batch state"
    );
    assert_eq!(
        store.snapshot_shard(tstream_state::ShardId(1)),
        before_shard1,
        "shard 1 must be restored to its pre-batch state"
    );
}

#[test]
fn aborted_transaction_does_not_block_later_transactions_on_the_same_keys() {
    // A rejected Alter is followed by a valid Alter touching the same items;
    // the later transaction must commit and its values must be the final
    // state under every scheme (locks released, chains skipped, versions
    // discarded).
    let app = Arc::new(ob::OnlineBidding);
    let spec = WorkloadSpec::default().keys(16).seed(74);
    let items: Vec<u64> = (0..10u64).collect();
    let bad_prices: Vec<i64> = vec![-1; 10];
    let good_prices: Vec<i64> = (0..10).map(|i| 500 + i as i64).collect();
    let events = vec![
        ob::ObEvent::Alter {
            items: items.clone(),
            prices: bad_prices,
        },
        ob::ObEvent::Alter {
            items: items.clone(),
            prices: good_prices.clone(),
        },
    ];

    for scheme in SchemeKind::CONSISTENT {
        let store = ob::build_store(&spec);
        let engine = Engine::new(EngineConfig::with_executors(2).punctuation(2));
        let report = engine.run(&app, &store, events.clone(), &scheme.build(4));
        assert_eq!(report.committed, 1, "{}", scheme.label());
        assert_eq!(report.rejected, 1, "{}", scheme.label());
        for (i, &item) in items.iter().enumerate() {
            let (price, _) = store
                .record(TableId(ob::ITEM_TABLE), item)
                .unwrap()
                .read_committed()
                .as_pair()
                .unwrap();
            assert_eq!(price, good_prices[i], "{} item {item}", scheme.label());
        }
    }
}

#[test]
fn gs_negative_writes_abort_and_leave_prior_values() {
    // A GS write transaction with a negative value in the middle of its ten
    // writes must abort completely.
    let spec = WorkloadSpec::default().keys(100).seed(75);
    let app = Arc::new(gs::GrepSum::default());
    let keys: Vec<u64> = (0..10u64).collect();
    let mut writes: Vec<i64> = (0..10).map(|i| 1_000 + i as i64).collect();
    writes[7] = -1;
    let events = vec![gs::GsEvent {
        keys: keys.clone(),
        writes: Some(writes),
    }];

    for scheme in SchemeKind::CONSISTENT {
        let store = gs::build_store(&spec);
        let before = store.snapshot();
        let engine = Engine::new(EngineConfig::with_executors(3).punctuation(5));
        let report = engine.run(&app, &store, events.clone(), &scheme.build(4));
        assert_eq!(report.rejected, 1, "{}", scheme.label());
        assert_eq!(store.snapshot(), before, "{}", scheme.label());
    }
}

#[test]
fn rejected_ratio_is_stable_across_executor_counts() {
    // The commit/abort decision depends only on the timestamp order, so the
    // number of rejected events must not change with the degree of
    // parallelism.
    let spec = WorkloadSpec::default().events(1_200).keys(8).seed(76);
    let events = ob::generate(&spec);
    let app = Arc::new(ob::OnlineBidding);
    let mut reference = None;
    for executors in [1usize, 2, 4, 8] {
        let store = scarce_ob_store(spec.keys, 25);
        let engine = Engine::new(EngineConfig::with_executors(executors).punctuation(300));
        let report = engine.run(&app, &store, events.clone(), &Scheme::TStream);
        match reference {
            None => reference = Some((report.committed, report.rejected)),
            Some(expected) => assert_eq!(
                (report.committed, report.rejected),
                expected,
                "{executors} executors changed the abort decisions"
            ),
        }
    }
}

#[test]
fn abort_heavy_runs_still_report_latency_for_committed_events() {
    let mut options = RunOptions::default();
    options.spec = options.spec.events(800).keys(8).seed(77);
    options.engine = EngineConfig::with_executors(4).punctuation(200);
    // The stock OB store is plentiful, so use the runner as a smoke test and
    // the scarce store through the engine for the abort-heavy variant.
    let plentiful = tstream_apps::runner::run_benchmark(AppKind::Ob, SchemeKind::TStream, &options);
    assert_eq!(plentiful.committed + plentiful.rejected, 800);

    let spec = options.spec;
    let events = ob::generate(&spec);
    let app = Arc::new(ob::OnlineBidding);
    let store = scarce_ob_store(spec.keys, 3);
    let engine = Engine::new(options.engine);
    let report = engine.run(&app, &store, events, &Scheme::TStream);
    assert!(report.rejected > 0);
    assert_eq!(
        report.latency.samples() as u64,
        report.committed,
        "only committed events contribute latency samples"
    );
}
