//! Lock-order tracking is live in test builds and clean on the real engine.
//!
//! The workspace turns on `parking_lot`'s `lock-order` feature from the root
//! crate's dev-dependencies, so every integration test in this repository
//! runs with the acquisition-graph deadlock detector armed.  This test runs
//! a durable multi-shard, multi-session engine workload — crossing the
//! StateStore per-shard maintenance locks, the `ExecutorPool` scheduler
//! lock, and the `Checkpointer` directory lock — and then asserts the
//! tracker (a) was compiled in and (b) actually observed nested
//! acquisitions.  A lock-order inversion anywhere on that path would have
//! panicked the run with both acquisition sites named.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use parking_lot::lock_order;
use tstream_apps::gs;
use tstream_apps::workload::WorkloadSpec;
use tstream_core::{Engine, EngineConfig, Scheme};
use tstream_state::Checkpointer;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tstream-lock-order-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn durable_engine_run_is_clean_under_the_lock_order_tracker() {
    assert!(
        lock_order::enabled(),
        "test builds must compile parking_lot with the lock-order feature; \
         check the root Cargo.toml dev-dependencies"
    );

    let dir = temp_dir("engine");
    let spec = WorkloadSpec::default().events(1_200).seed(47);
    let store = gs::build_store(&spec);
    let app = Arc::new(gs::GrepSum::default());
    let checkpointer = Arc::new(Checkpointer::new(&dir, 4).unwrap());

    let before = lock_order::edges_recorded();
    let engine = Engine::new(EngineConfig::with_executors(4).punctuation(200))
        .with_checkpointer(checkpointer);
    let report = engine.run(&app, &store, gs::generate(&spec), &Scheme::TStream);
    assert_eq!(report.committed, 1_200);
    assert_eq!(report.checkpoints, 6);

    // Reaching here means no ABBA inversion exists across the shard,
    // scheduler, and checkpoint-directory locks on this path; the edge
    // count proves the tracker watched real nested acquisitions rather
    // than being compiled out or bypassed.
    assert!(
        lock_order::edges_recorded() > before,
        "a durable multi-executor run must nest locks at least once"
    );
    let _ = fs::remove_dir_all(&dir);
}
