//! Observability quickstart: run a small workload through a streaming
//! session and scrape the engine's metrics in Prometheus text format.
//!
//! Every engine carries a lock-free metrics hub and a per-thread flight
//! recorder (both on by default, `ObsConfig::disabled()` turns them off).
//! This example drives two phases — a conflict-free phase that takes the
//! fast path and a conflict-heavy phase that restructures into operation
//! chains — then prints:
//!
//! 1. the full `metrics_text()` scrape (the CI `obs-smoke` job parses it),
//! 2. the tail of the merged flight-recorder timeline.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example observability
//! ```

use std::sync::Arc;

use tstream_core::prelude::*;

/// Every event increments one counter.
struct Counter;

impl Application for Counter {
    type Payload = u64;

    fn name(&self) -> &'static str {
        "counter"
    }

    fn read_write_set(&self, key: &u64) -> ReadWriteSet {
        ReadWriteSet::new().write(StateRef::new(0, *key))
    }

    fn state_access(&self, key: &u64, txn: &mut TxnBuilder) {
        txn.read_modify(0, *key, None, |ctx| {
            Ok(Value::Long(ctx.current.as_long()? + 1))
        });
    }

    fn post_process(&self, _key: &u64, _blotter: &EventBlotter) -> PostAction {
        PostAction::Emit
    }
}

const KEYS: u64 = 256;
const INTERVAL: usize = 64;

fn main() {
    let table = TableBuilder::new("counters")
        .extend((0..KEYS).map(|k| (k, Value::Long(0))))
        .build()
        .unwrap();
    let store = StateStore::new(vec![table]).unwrap();
    let app = Arc::new(Counter);

    let engine = Engine::new(EngineConfig::with_executors(4).punctuation(INTERVAL));
    let mut session = engine
        .session_builder(&app, &store, &Scheme::TStream)
        .open()
        .unwrap();

    // Phase 1: distinct keys per batch — conflict-free, fast path.
    for key in 0..KEYS {
        session.push(key).unwrap();
    }
    // Phase 2: four hot keys — heavy conflicts, restructured into chains.
    for i in 0..KEYS {
        session.push(i % 4).unwrap();
    }
    let report = session.report().unwrap();
    assert_eq!(report.committed, 2 * KEYS);

    // The scrape the obs-smoke CI job parses: every `# TYPE` declared series
    // followed by its sample line.
    println!("{}", engine.metrics_text());

    let timeline = engine.flight_recording();
    eprintln!(
        "--- last flight-recorder events ({} total) ---",
        timeline.len()
    );
    for event in timeline.iter().rev().take(12).rev() {
        eprintln!(
            "t+{:>12} ns  lane {}  batch {:>4}  {:?}",
            event.t_ns, event.lane, event.batch, event.kind
        );
    }
}
