//! Streaming Ledger (SL): transactional money/asset transfers on streams,
//! the workload with the heaviest cross-state data dependencies
//! (Section VI-A).  Demonstrates that every scheme conserves money and that
//! rejected transfers (insufficient balance) surface as rejected events.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p tstream-apps --example streaming_ledger -- [events]
//! ```

use std::sync::Arc;

use tstream_apps::sl::{self, StreamingLedger};
use tstream_apps::workload::WorkloadSpec;
use tstream_apps::SchemeKind;
use tstream_core::{Engine, EngineConfig};

fn main() {
    let events: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let spec = WorkloadSpec::default().events(events);
    let payloads = sl::generate(&spec);

    // Expected money creation: deposits add to both tables; transfers only move.
    let deposited: i64 = payloads
        .iter()
        .map(|e| match e {
            sl::SlEvent::Deposit { amount, .. } => 2 * amount,
            sl::SlEvent::Transfer { .. } => 0,
        })
        .sum();

    let executors = std::thread::available_parallelism()
        .map(|p| p.get().min(8))
        .unwrap_or(4);
    let engine = Engine::new(EngineConfig::with_executors(executors).punctuation(500));
    let app = Arc::new(StreamingLedger);

    println!("Streaming Ledger: {events} requests, {executors} executors");
    println!(
        "{:>10}  {:>14}  {:>10}  {:>16}",
        "scheme", "throughput", "rejected", "ledger total"
    );
    for kind in SchemeKind::CONSISTENT {
        let store = sl::build_store(&spec);
        let initial = sl::total_balance(&store);
        let report = engine.run(
            &app,
            &store,
            payloads.clone(),
            &kind.build(executors as u32),
        );
        let total = sl::total_balance(&store);
        assert_eq!(
            total,
            initial + deposited,
            "{}: the ledger must balance",
            kind.label()
        );
        println!(
            "{:>10}  {:>10.1} K/s  {:>10}  {:>16}",
            kind.label(),
            report.throughput_keps(),
            report.rejected,
            total
        );
    }
    println!("\nEvery consistency-preserving scheme ends with an identical, balanced ledger.");
}
