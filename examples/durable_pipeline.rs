//! Durable pipeline: checkpointing the Streaming Ledger at every punctuation
//! and recovering from the latest checkpoint after a simulated crash
//! (Section IV-D, Durability).
//!
//! The engine replicates the committed state to disk at every punctuation
//! boundary — the natural quiescent point of dual-mode scheduling — so a
//! restarted process can resume from the last completed batch instead of the
//! initial state.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p tstream-apps --example durable_pipeline
//! ```

use std::sync::Arc;

use tstream_apps::workload::WorkloadSpec;
use tstream_apps::{sl, SchemeKind};
use tstream_core::prelude::*;

fn main() {
    let checkpoint_dir =
        std::env::temp_dir().join(format!("tstream-durable-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&checkpoint_dir);

    // ---- Phase 1: process a ledger stream with checkpointing enabled.
    let spec = WorkloadSpec::default().events(20_000).keys(2_000).seed(99);
    let events = sl::generate(&spec);
    let app = Arc::new(sl::StreamingLedger);
    let store = sl::build_store(&spec);

    let checkpointer =
        Arc::new(Checkpointer::new(&checkpoint_dir, 4).expect("create checkpoint directory"));
    let engine = Engine::new(EngineConfig::with_executors(4).punctuation(1_000))
        .with_checkpointer(checkpointer.clone());
    let report = engine.run(&app, &store, events, &Scheme::TStream);

    println!("phase 1: processed the ledger stream with durability enabled");
    println!(
        "  events            : {} ({} committed, {} rejected)",
        report.events, report.committed, report.rejected
    );
    println!(
        "  throughput        : {:.1} K events/s",
        report.throughput_keps()
    );
    println!("  checkpoints       : {}", report.checkpoints);
    println!(
        "  on disk           : {} files under {}",
        checkpointer.list().expect("list checkpoints").len(),
        checkpoint_dir.display()
    );
    println!("  total balance     : {}", sl::total_balance(&store));

    // ---- Phase 2: "crash" — drop everything, then recover a fresh store
    // from the latest checkpoint in a new process-like context.
    drop(engine);
    drop(store);

    let recovered_store = sl::build_store(&spec);
    let recovery = Checkpointer::new(&checkpoint_dir, 4).expect("reopen checkpoint directory");
    let recovered = recovery
        .recover_into(&recovered_store)
        .expect("recover latest checkpoint");

    println!("\nphase 2: recovery after a simulated crash");
    println!("  checkpoint found  : {recovered}");
    println!(
        "  recovered balance : {}",
        sl::total_balance(&recovered_store)
    );

    // ---- Phase 3: keep processing new events on top of the recovered state,
    // under a baseline scheme this time (durability works for every scheme).
    let more = sl::generate(&WorkloadSpec::default().events(5_000).keys(2_000).seed(100));
    let engine = Engine::new(EngineConfig::with_executors(4).punctuation(1_000)).with_checkpointer(
        Arc::new(Checkpointer::new(&checkpoint_dir, 4).expect("reopen for phase 3")),
    );
    let report = engine.run(&app, &recovered_store, more, &SchemeKind::Mvlk.build(4));
    println!("\nphase 3: resumed processing on the recovered state (MVLK)");
    println!(
        "  events            : {} ({} committed)",
        report.events, report.committed
    );
    println!("  new checkpoints   : {}", report.checkpoints);
    println!(
        "  final balance     : {}",
        sl::total_balance(&recovered_store)
    );

    let _ = std::fs::remove_dir_all(&checkpoint_dir);
}
