//! Quickstart: define a tiny concurrent stateful stream application from
//! scratch and run it under TStream and under the LOCK baseline.
//!
//! The application maintains one shared table of per-user counters.  Every
//! input event increments one user's counter and reads another user's counter
//! — a miniature example of the concurrent state access the paper targets:
//! every executor may touch any key, yet the results must be identical to a
//! serial, timestamp-ordered execution.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p tstream-apps --example quickstart
//! ```

use std::sync::Arc;

use tstream_core::prelude::*;

/// Payload of one input event.
#[derive(Clone)]
struct Visit {
    user: u64,
    friend: u64,
}

/// The application: increment `user`'s counter, read `friend`'s counter.
struct VisitCounter;

impl Application for VisitCounter {
    type Payload = Visit;

    fn name(&self) -> &'static str {
        "visit-counter"
    }

    fn read_write_set(&self, v: &Visit) -> ReadWriteSet {
        ReadWriteSet::new()
            .write(StateRef::new(0, v.user))
            .read(StateRef::new(0, v.friend))
    }

    fn state_access(&self, v: &Visit, txn: &mut TxnBuilder) {
        txn.read_modify(0, v.user, None, |ctx| {
            Ok(Value::Long(ctx.current.as_long()? + 1))
        });
        txn.read(0, v.friend);
    }

    fn post_process(&self, _v: &Visit, blotter: &EventBlotter) -> PostAction {
        if blotter.is_aborted() {
            PostAction::Silent
        } else {
            PostAction::Emit
        }
    }
}

fn build_store(users: u64) -> Arc<StateStore> {
    let table = TableBuilder::new("counters")
        .extend((0..users).map(|k| (k, Value::Long(0))))
        .build()
        .expect("counter table");
    StateStore::new(vec![table]).expect("store")
}

fn main() {
    let users = 1_000u64;
    let events: Vec<Visit> = (0..200_000u64)
        .map(|i| Visit {
            user: (i * 31) % users,
            friend: (i * 17 + 3) % users,
        })
        .collect();

    let executors = std::thread::available_parallelism()
        .map(|p| p.get().min(8))
        .unwrap_or(4);
    let config = EngineConfig::with_executors(executors).punctuation(500);
    let engine = Engine::new(config);
    let app = Arc::new(VisitCounter);

    println!(
        "visit-counter: {} events, {executors} executors\n",
        events.len()
    );
    println!(
        "{:>10}  {:>14}  {:>12}  {:>10}",
        "scheme", "throughput", "p99 latency", "rejected"
    );
    for (name, scheme) in [
        (
            "LOCK",
            Scheme::Eager(Arc::new(LockScheme::new()) as Arc<dyn tstream_txn::EagerScheme>),
        ),
        ("TStream", Scheme::TStream),
    ] {
        let store = build_store(users);
        let report = engine.run(&app, &store, events.clone(), &scheme);
        // Sanity: the counters must add up to exactly one increment per event.
        let total: i64 = store
            .table_by_name("counters")
            .unwrap()
            .iter()
            .map(|(_, r)| r.read_committed().as_long().unwrap())
            .sum();
        assert_eq!(total, report.committed as i64);
        println!(
            "{:>10}  {:>10.1} K/s  {:>9.2} ms  {:>10}",
            name,
            report.throughput_keps(),
            report
                .latency
                .percentile(99.0)
                .map(|d| d.as_secs_f64() * 1e3)
                .unwrap_or(0.0),
            report.rejected
        );
    }
    println!("\nBoth schemes commit every event and agree with serial execution;");
    println!("TStream gets there without acquiring a single record lock.");
}
