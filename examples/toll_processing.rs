//! Toll Processing (TP) end to end — the paper's motivating example
//! (Figure 2b), expressed first as a logical Storm-like DAG and then executed
//! as the fused operator with concurrent state access.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p tstream-apps --example toll_processing -- [events]
//! ```

use std::sync::Arc;

use tstream_apps::tp::{self, TollProcessing};
use tstream_apps::workload::WorkloadSpec;
use tstream_apps::SchemeKind;
use tstream_core::{Engine, EngineConfig};
use tstream_state::TableId;
use tstream_stream::topology::{Grouping, Topology};

fn main() {
    let events: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(150_000);

    // ---- The logical DAG the user writes (Figure 2b).
    let mut dag = Topology::new();
    let parser = dag.add_operator("Parser", 2, false);
    let rs = dag.add_operator("Road Speed", 8, true);
    let vc = dag.add_operator("Vehicle Cnt", 8, true);
    let tn = dag.add_operator("Toll Notification", 8, true);
    let sink = dag.add_operator("Sink", 1, false);
    for op in [rs, vc, tn] {
        dag.connect(parser, op, Grouping::Shuffle);
        dag.connect(op, sink, Grouping::Shuffle);
    }
    dag.validate().expect("valid DAG");
    let fused = dag.fuse_stateful();
    println!(
        "fused operator: {:?} with parallelism {}",
        fused.names, fused.parallelism
    );

    // ---- Execute the fused operator over shared congestion state.
    let spec = WorkloadSpec::default().events(events).skew(tp::TP_SKEW);
    let payloads = tp::generate(&spec);
    let executors = std::thread::available_parallelism()
        .map(|p| p.get().min(fused.parallelism))
        .unwrap_or(4);
    let engine = Engine::new(EngineConfig::with_executors(executors).punctuation(500));
    let app = Arc::new(TollProcessing);

    println!("\nToll Processing: {events} traffic events, {executors} executors");
    println!(
        "{:>10}  {:>14}  {:>12}",
        "scheme", "throughput", "p99 latency"
    );
    for kind in [SchemeKind::Lock, SchemeKind::Pat, SchemeKind::TStream] {
        let store = tp::build_store(&spec);
        let report = engine.run(
            &app,
            &store,
            payloads.clone(),
            &kind.build(executors as u32),
        );
        println!(
            "{:>10}  {:>10.1} K/s  {:>9.2} ms",
            kind.label(),
            report.throughput_keps(),
            report
                .latency
                .percentile(99.0)
                .map(|d| d.as_secs_f64() * 1e3)
                .unwrap_or(0.0)
        );

        // Show a bit of the shared congestion state the run produced.
        if kind == SchemeKind::TStream {
            let speed = store.table(TableId(tp::SPEED_TABLE));
            let busiest = store
                .table(TableId(tp::COUNT_TABLE))
                .iter()
                .max_by_key(|(_, r)| r.read_committed().as_set().map(|s| s.len()).unwrap_or(0))
                .map(|(k, r)| (k, r.read_committed().as_set().unwrap().len()))
                .unwrap();
            println!(
                "    busiest segment: {} with {} unique vehicles, avg speed {:.1}",
                busiest.0,
                busiest.1,
                speed
                    .get(busiest.0)
                    .unwrap()
                    .read_committed()
                    .as_double()
                    .unwrap()
            );
        }
    }
}
