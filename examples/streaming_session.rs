//! Streaming session: continuous ingestion through the pipelined runtime.
//!
//! Where the `quickstart` example hands the engine a pre-collected `Vec` of
//! events, this one runs the engine the way a live deployment would: producer
//! threads feed a **bounded source channel** (backpressure instead of an
//! unbounded buffer), the ingestion loop pushes each payload into a
//! `Session` — which stamps it at arrival time, forms punctuation
//! batches online and pipelines them onto the engine's **persistent executor
//! pool** — and a mid-stream `flush` shows the session acting as a real
//! synchronisation point.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example streaming_session
//! ```

use std::sync::Arc;

use tstream_core::prelude::*;
use tstream_stream::source::bounded_source;

/// Payload: one account deposits into another.
#[derive(Clone)]
struct Deposit {
    to: u64,
    amount: i64,
}

/// The application: credit `to` by `amount`.
struct Deposits;

impl Application for Deposits {
    type Payload = Deposit;

    fn name(&self) -> &'static str {
        "deposits"
    }

    fn read_write_set(&self, d: &Deposit) -> ReadWriteSet {
        ReadWriteSet::new().write(StateRef::new(0, d.to))
    }

    fn state_access(&self, d: &Deposit, txn: &mut TxnBuilder) {
        let amount = d.amount;
        txn.read_modify(0, d.to, None, move |ctx| {
            Ok(Value::Long(ctx.current.as_long()? + amount))
        });
    }

    fn post_process(&self, _d: &Deposit, blotter: &EventBlotter) -> PostAction {
        if blotter.is_aborted() {
            PostAction::Silent
        } else {
            PostAction::Emit
        }
    }
}

fn main() {
    let accounts = 512u64;
    let per_producer = 40_000u64;
    let producers = 3u64;

    let table = TableBuilder::new("accounts")
        .extend((0..accounts).map(|k| (k, Value::Long(0))))
        .build()
        .expect("account table");
    let store = StateStore::new(vec![table]).expect("store");

    let executors = std::thread::available_parallelism()
        .map(|p| p.get().min(4))
        .unwrap_or(2);
    let engine = Engine::new(EngineConfig::with_executors(executors).punctuation(500));
    let app = Arc::new(Deposits);

    // Bounded hand-off between the producers and the ingestion loop: when
    // the executors fall behind, producers block here instead of buffering
    // the whole stream in memory.
    let (handle, outlet) = bounded_source::<Deposit>(4_096);
    let mut producer_threads = Vec::new();
    for p in 0..producers {
        let handle = handle.clone();
        producer_threads.push(std::thread::spawn(move || {
            for i in 0..per_producer {
                let event = Deposit {
                    to: (p * 31 + i * 17) % accounts,
                    amount: 1,
                };
                if handle.push(event).is_err() {
                    return; // session is gone; stop producing
                }
            }
        }));
    }
    drop(handle); // the outlet drains once every producer finishes

    let mut session = engine
        .session_builder(&app, &store, &Scheme::TStream)
        .label("deposits-live")
        .open()
        .expect("plain session");
    let mut ingested = 0u64;
    let halfway = producers * per_producer / 2;
    let mut checked_halfway = false;
    for payload in outlet.iter() {
        session.push(payload).expect("plain push");
        ingested += 1;
        if !checked_halfway && ingested >= halfway {
            // A flush is a real synchronisation point: everything pushed so
            // far is committed and visible before ingestion continues.
            session.flush().expect("plain flush");
            let sum: i64 = store
                .table_by_name("accounts")
                .unwrap()
                .iter()
                .map(|(_, r)| r.read_committed().as_long().unwrap())
                .sum();
            assert_eq!(sum, ingested as i64, "flush must publish every deposit");
            println!(
                "mid-stream flush after {ingested} events: {sum} total deposited, {} batches dispatched",
                session.batches_dispatched()
            );
            checked_halfway = true;
        }
    }
    for t in producer_threads {
        t.join().unwrap();
    }
    let report = session.report().expect("plain report");

    let total: i64 = store
        .table_by_name("accounts")
        .unwrap()
        .iter()
        .map(|(_, r)| r.read_committed().as_long().unwrap())
        .sum();
    assert_eq!(total, report.committed as i64);
    assert_eq!(report.events, producers * per_producer);
    assert_eq!(
        engine.runtime_threads_spawned(),
        executors as u64,
        "executor threads are spawned once per engine"
    );

    println!(
        "\nstreaming session: {} events from {producers} producers, {executors} executors",
        report.events
    );
    println!(
        "  throughput {:.1} K events/s, p99 end-to-end latency {:.2} ms",
        report.throughput_keps(),
        report
            .latency
            .percentile(99.0)
            .map(|d| d.as_secs_f64() * 1e3)
            .unwrap_or(0.0)
    );
    println!(
        "  committed {} / rejected {}; all {} deposits visible in the store",
        report.committed, report.rejected, total
    );
    println!("\nThe same executor pool served the whole stream; ingestion, batch");
    println!("formation and execution overlapped, with backpressure end to end.");
}
