//! Hot-standby failover demonstration: a durable primary ships its sealed
//! history through a spool directory while a standby in **this** process
//! replays it; the primary is then **killed mid-run** (it aborts itself,
//! which to the spool is indistinguishable from `kill -9`), the standby
//! promotes and finishes the stream, and the result must be byte-identical
//! to a run that never failed over.
//!
//! This is the process-level counterpart of the in-process boundary sweep
//! in `tests/replication.rs`: here the primary really dies with batches in
//! flight and an unsealed WAL tail on disk; everything it sealed and
//! shipped survives, everything past the last shipped epoch is re-sent by
//! the client — the standard at-the-boundary failover contract.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example hot_standby
//! ```
//!
//! (The `--primary <dir> <spool>` invocation is internal — the driver
//! spawns it.)

use std::process::Command;
use std::sync::Arc;

use tstream_apps::sl;
use tstream_apps::workload::WorkloadSpec;
use tstream_core::prelude::*;
use tstream_replica::{DirTransport, Shipper, StandbyEngine};

const EVENTS: usize = 4_000;
const INTERVAL: usize = 250;
const CRASH_AFTER_BATCHES: u64 = 6;

fn spec() -> WorkloadSpec {
    WorkloadSpec::default()
        .events(EVENTS)
        .keys(2_000)
        .seed(0xC2)
}

fn engine_config() -> EngineConfig {
    EngineConfig::with_executors(2)
        .punctuation(INTERVAL)
        .checkpoint_every(3)
}

/// Child mode: ingest durably, shipping every sealed epoch into the spool,
/// then die abruptly after N batches.
fn primary(dir: &str, spool: &str) -> ! {
    let spec = spec();
    let events = sl::generate(&spec);
    let store = sl::build_store(&spec);
    let app = Arc::new(sl::StreamingLedger);
    let engine = Engine::new(engine_config());
    let mut session = engine
        .session_builder(&app, &store, &Scheme::TStream)
        .durable(dir)
        .label("primary")
        .open()
        .expect("open durable session");
    let log = session.log().expect("durable session has a log").clone();
    let transport = Arc::new(DirTransport::open(spool).expect("open spool"));
    let _shipper =
        Shipper::attach(&log, transport, engine.observability()).expect("attach shipper");
    for event in events {
        session.push(event).expect("durable push");
        if session.batches_dispatched() >= CRASH_AFTER_BATCHES {
            // Simulated power cut: no flush, no orderly shutdown — the
            // process vanishes with batches in flight.  The spool keeps
            // whatever was sealed, executed and shipped before the cut.
            eprintln!(
                "primary  : aborting after {} batches ({} events ingested)",
                session.batches_dispatched(),
                session.ingested()
            );
            std::process::abort();
        }
    }
    unreachable!("the primary must crash before draining the input");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--primary") {
        primary(
            args.get(i + 1).expect("--primary needs a directory"),
            args.get(i + 2).expect("--primary needs a spool directory"),
        );
    }

    let pid = std::process::id();
    let primary_dir = std::env::temp_dir().join(format!("tstream-hot-standby-primary-{pid}"));
    let standby_dir = std::env::temp_dir().join(format!("tstream-hot-standby-standby-{pid}"));
    let spool_dir = std::env::temp_dir().join(format!("tstream-hot-standby-spool-{pid}"));
    for dir in [&primary_dir, &standby_dir, &spool_dir] {
        let _ = std::fs::remove_dir_all(dir);
    }
    let spec = spec();
    let events = sl::generate(&spec);
    let app = Arc::new(sl::StreamingLedger);

    // ---- Baseline: the uninterrupted run this demo must reproduce.
    let baseline_store = sl::build_store(&spec);
    let baseline = Engine::new(engine_config()).run_offline(
        &app,
        &baseline_store,
        events.clone(),
        &Scheme::TStream,
    );
    println!(
        "baseline : {} events, {} committed, {} rejected",
        baseline.events, baseline.committed, baseline.rejected
    );

    // ---- Phase 1: run the primary in a child process and let it die.
    let exe = std::env::current_exe().expect("own executable path");
    let status = Command::new(&exe)
        .arg("--primary")
        .arg(&primary_dir)
        .arg(&spool_dir)
        .status()
        .expect("spawn primary process");
    assert!(
        !status.success(),
        "the primary must die abnormally, got {status:?}"
    );
    println!("primary  : killed mid-run ({status})");

    // ---- Phase 2: the standby drains the spool, replays, and takes over.
    let store = sl::build_store(&spec);
    let engine = Engine::new(engine_config());
    let transport = Arc::new(DirTransport::open(&spool_dir).expect("open spool"));
    let mut standby = StandbyEngine::follow(
        &engine,
        &app,
        &store,
        &Scheme::TStream,
        &standby_dir,
        transport,
    )
    .expect("standby follows the spool");
    let applied = standby.pump().expect("standby pump");
    let resumed_from = standby.next_epoch() as usize * INTERVAL;
    println!(
        "standby  : mirrored + replayed {applied} shipped items ({} epochs), promoting",
        standby.next_epoch()
    );
    let mut session = standby.promote().expect("standby promotes");

    // Everything past the last shipped epoch was never acknowledged, so the
    // client re-sends it — exactly the recovery resume contract.
    for event in events.into_iter().skip(resumed_from) {
        session.push(event).expect("durable push after takeover");
    }
    let report = session.report().expect("final report");

    // ---- Verify exactly-once: counts and state match the baseline.
    assert_eq!(report.events, baseline.events, "event counts must match");
    assert_eq!(
        report.committed, baseline.committed,
        "commit counts must match"
    );
    assert_eq!(
        report.rejected, baseline.rejected,
        "abort counts must match"
    );
    assert_eq!(
        StoreSnapshot::capture(&store),
        StoreSnapshot::capture(&baseline_store),
        "promoted state must be byte-identical"
    );
    println!(
        "promoted : {} events, {} committed, {} rejected, {} checkpoints",
        report.events, report.committed, report.rejected, report.checkpoints
    );
    println!("failover differential holds: promoted standby == uninterrupted run");
    for dir in [&primary_dir, &standby_dir, &spool_dir] {
        let _ = std::fs::remove_dir_all(dir);
    }
}
