//! Online Bidding (OB): conditional updates (bids) mixed with long
//! multi-record maintenance transactions (alter / top), Section VI-A.
//! Shows how rejected bids are reported through the output stream and how
//! the punctuation interval trades latency against throughput under TStream
//! (the knob studied in Figure 12).
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p tstream-apps --example online_bidding -- [events]
//! ```

use std::sync::Arc;

use tstream_apps::ob::{self, OnlineBidding};
use tstream_apps::workload::WorkloadSpec;
use tstream_core::{Engine, EngineConfig, Scheme};

fn main() {
    let events: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let spec = WorkloadSpec::default().events(events);
    let payloads = ob::generate(&spec);
    let executors = std::thread::available_parallelism()
        .map(|p| p.get().min(8))
        .unwrap_or(4);
    let app = Arc::new(OnlineBidding);

    println!("Online Bidding: {events} requests, {executors} executors (TStream)");
    println!(
        "{:>12}  {:>14}  {:>12}  {:>10}",
        "punctuation", "throughput", "p99 latency", "rejected"
    );
    for interval in [100usize, 250, 500, 1000] {
        let store = ob::build_store(&spec);
        let engine = Engine::new(EngineConfig::with_executors(executors).punctuation(interval));
        let report = engine.run(&app, &store, payloads.clone(), &Scheme::TStream);
        println!(
            "{:>12}  {:>10.1} K/s  {:>9.2} ms  {:>10}",
            interval,
            report.throughput_keps(),
            report
                .latency
                .percentile(99.0)
                .map(|d| d.as_secs_f64() * 1e3)
                .unwrap_or(0.0),
            report.rejected
        );
    }
    println!("\nLarger punctuation intervals expose more parallelism per batch;");
    println!("latency grows once throughput stops improving (Figure 12 of the paper).");
}
