//! Figure 2 side by side: the conventional key-partitioned Toll Processing
//! pipeline (exclusive per-executor state, buffering and sorting in the toll
//! operator) versus the concurrent-state-access implementation processed by
//! TStream.
//!
//! Section II-A motivates concurrent state access with exactly this contrast:
//! the conventional design must forward the road-congestion state between
//! operators and either buffers aggressively or computes tolls against stale
//! state; the shared-state design does neither.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p tstream-apps --example conventional_vs_concurrent
//! ```

use std::sync::Arc;

use tstream_apps::conventional::{run_conventional, ConventionalConfig};
use tstream_apps::tp;
use tstream_apps::workload::WorkloadSpec;
use tstream_core::prelude::*;

fn main() {
    let spec = WorkloadSpec::default().events(60_000);
    let events = tp::generate(&spec);
    let executors = 4usize;

    // ---- Figure 2(a): key-based partitioning, no concurrent state access.
    println!("Figure 2(a): conventional key-partitioned implementation");
    for buffer_limit in [8usize, 128, 2_048] {
        let report = run_conventional(
            &events,
            ConventionalConfig {
                executors_per_operator: executors,
                buffer_limit,
                channel_capacity: 1_024,
            },
        );
        println!(
            "  buffer {:>5}: {:>8.1} K events/s, {:>6.1}% tolls on stale state, \
             {:>6} KiB of congestion state forwarded",
            buffer_limit,
            report.throughput_keps(),
            100.0 * report.forced_emission_ratio(),
            report.forwarded_state_bytes / 1024,
        );
    }

    // ---- Figure 2(b): shared mutable state, state transactions, TStream.
    println!("\nFigure 2(b): concurrent state access under TStream");
    let store = tp::build_store(&spec);
    let app = Arc::new(tp::TollProcessing);
    let engine = Engine::new(EngineConfig::with_executors(executors).punctuation(500));
    let report = engine.run(&app, &store, events.clone(), &Scheme::TStream);
    println!(
        "  punctuation 500: {:>8.1} K events/s, every toll computed against the \
         exact congestion state of its timestamp, no state forwarded",
        report.throughput_keps()
    );
    println!(
        "  p99 end-to-end latency: {:.2} ms",
        report
            .latency
            .percentile(99.0)
            .map(|d| d.as_secs_f64() * 1e3)
            .unwrap_or(0.0)
    );

    // ---- And the same shared-state implementation under a lock-based
    // baseline, to show why the paper does not stop at "just share the state".
    let store = tp::build_store(&spec);
    let report = engine.run(
        &app,
        &store,
        events,
        &Scheme::Eager(Arc::new(LockScheme::new())),
    );
    println!(
        "\nSame shared-state implementation under LOCK: {:.1} K events/s — \
         correct, but the centralized lockAhead counter throttles it;\nTStream's \
         dual-mode scheduling and dynamic restructuring close that gap (Figure 8d).",
        report.throughput_keps()
    );
}
