//! Crash-replay demonstration: spawn a durable pipeline in a child process,
//! **kill it mid-run** (the victim aborts itself after N batches, which to
//! the durability directory is indistinguishable from `kill -9`), then
//! recover with `SessionBuilder::recover` and verify the finished run is
//! byte-identical to one that never crashed.
//!
//! This is the process-level counterpart of the in-process boundary sweep in
//! `tests/recovery.rs`: here the victim really dies with batches in flight,
//! an unsealed WAL tail on disk and no orderly shutdown of any kind.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example crash_recovery
//! ```
//!
//! (The `--victim <dir>` invocation is internal — the driver spawns it.)

use std::process::Command;
use std::sync::Arc;

use tstream_apps::sl;
use tstream_apps::workload::WorkloadSpec;
use tstream_core::prelude::*;

const EVENTS: usize = 4_000;
const INTERVAL: usize = 250;
const CRASH_AFTER_BATCHES: u64 = 6;

fn spec() -> WorkloadSpec {
    WorkloadSpec::default()
        .events(EVENTS)
        .keys(2_000)
        .seed(0xC1)
}

fn engine_config() -> EngineConfig {
    EngineConfig::with_executors(2)
        .punctuation(INTERVAL)
        .checkpoint_every(3)
}

/// Child mode: ingest durably and die abruptly after N batches.
fn victim(dir: &str) -> ! {
    let spec = spec();
    let events = sl::generate(&spec);
    let store = sl::build_store(&spec);
    let app = Arc::new(sl::StreamingLedger);
    let engine = Engine::new(engine_config());
    let mut session = engine
        .session_builder(&app, &store, &Scheme::TStream)
        .durable(dir)
        .label("victim")
        .open()
        .expect("open durable session");
    for event in events {
        session.push(event).expect("durable push");
        if session.batches_dispatched() >= CRASH_AFTER_BATCHES {
            // Simulated power cut: no flush, no checkpoint, no Drop — the
            // process vanishes with executor batches still in flight and a
            // partially filled WAL tail segment on disk.
            eprintln!(
                "victim: aborting after {} batches ({} events ingested)",
                session.batches_dispatched(),
                session.ingested()
            );
            std::process::abort();
        }
    }
    unreachable!("the victim must crash before draining the input");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--victim") {
        victim(args.get(i + 1).expect("--victim needs a directory"));
    }

    let dir = std::env::temp_dir().join(format!("tstream-crash-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = spec();
    let events = sl::generate(&spec);
    let app = Arc::new(sl::StreamingLedger);

    // ---- Baseline: the uninterrupted run this demo must reproduce.
    let baseline_store = sl::build_store(&spec);
    let baseline = Engine::new(engine_config()).run_offline(
        &app,
        &baseline_store,
        events.clone(),
        &Scheme::TStream,
    );
    println!(
        "baseline : {} events, {} committed, {} rejected",
        baseline.events, baseline.committed, baseline.rejected
    );

    // ---- Phase 1: spawn the victim and let it die mid-run.
    let exe = std::env::current_exe().expect("own executable path");
    let status = Command::new(&exe)
        .arg("--victim")
        .arg(&dir)
        .status()
        .expect("spawn victim process");
    assert!(
        !status.success(),
        "the victim must die abnormally, got {status:?}"
    );
    println!("victim   : killed mid-run ({status})");

    // ---- Phase 2: recover and finish the stream in this process.
    let store = sl::build_store(&spec);
    let engine = Engine::new(engine_config());
    let mut session = engine
        .session_builder(&app, &store, &Scheme::TStream)
        .durable(&dir)
        .recover()
        .label("survivor")
        .open()
        .expect("recover the durability directory");
    let resumed_from = session.ingested() as usize;
    println!(
        "recovery : restored + replayed {} events, resuming at event {}",
        resumed_from, resumed_from
    );
    for event in events.into_iter().skip(resumed_from) {
        session.push(event).expect("durable push after recovery");
    }
    let report = session.report().expect("final report");

    // ---- Verify exactly-once: counts and state match the baseline.
    assert_eq!(report.events, baseline.events, "event counts must match");
    assert_eq!(
        report.committed, baseline.committed,
        "commit counts must match"
    );
    assert_eq!(
        report.rejected, baseline.rejected,
        "abort counts must match"
    );
    assert_eq!(
        StoreSnapshot::capture(&store),
        StoreSnapshot::capture(&baseline_store),
        "recovered state must be byte-identical"
    );
    println!(
        "recovered: {} events, {} committed, {} rejected, {} checkpoints, {} WAL bytes",
        report.events, report.committed, report.rejected, report.checkpoints, report.wal_bytes
    );
    println!("crash-recovery differential holds: recovered == uninterrupted");
    let _ = std::fs::remove_dir_all(&dir);
}
