//! Adaptive punctuation-interval tuning (Section VI-F "future work").
//!
//! Figure 12 shows that the punctuation interval trades throughput against
//! worst-case latency and that its optimum depends on the workload.  This
//! example lets the hill-climbing [`AdaptiveIntervalController`] pick the
//! interval for the Toll Processing workload under a 5 ms p99 latency bound,
//! printing every probe it makes.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p tstream-apps --example adaptive_interval
//! ```

use std::sync::Arc;
use std::time::Duration;

use tstream_apps::tp;
use tstream_apps::workload::WorkloadSpec;
use tstream_core::adaptive::{AdaptiveConfig, AdaptiveIntervalController, IntervalObservation};
use tstream_core::prelude::*;

/// Run TP once at the given punctuation interval and report
/// (throughput, p99 latency).
fn measure(events: &[tp::TpEvent], cores: usize, interval: usize) -> (f64, Duration) {
    let spec = WorkloadSpec::default();
    let store = tp::build_store(&spec);
    let app = Arc::new(tp::TollProcessing);
    let engine = Engine::new(EngineConfig::with_executors(cores).punctuation(interval));
    let report = engine.run(&app, &store, events.to_vec(), &Scheme::TStream);
    (
        report.throughput_keps(),
        report.latency.percentile(99.0).unwrap_or(Duration::ZERO),
    )
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|p| p.get().min(8))
        .unwrap_or(4);
    let events = tp::generate(&WorkloadSpec::default().events(40_000));
    let latency_bound = Duration::from_millis(5);

    let mut controller = AdaptiveIntervalController::new(
        AdaptiveConfig {
            latency_bound: Some(latency_bound),
            ..Default::default()
        },
        50,
    );

    println!(
        "Tuning the punctuation interval for TP ({cores} cores, p99 bound {:.0} ms)\n",
        latency_bound.as_secs_f64() * 1e3
    );
    println!(
        "{:>6}  {:>12}  {:>10}  {:>9}",
        "probe", "interval", "K events/s", "p99 ms"
    );

    let mut interval = controller.suggested_interval();
    for probe in 1..=12 {
        let (keps, p99) = measure(&events, cores, interval);
        let feasible = p99 <= latency_bound;
        println!(
            "{probe:>6}  {interval:>12}  {keps:>10.1}  {:>9.2}{}",
            p99.as_secs_f64() * 1e3,
            if feasible {
                ""
            } else {
                "  (over latency bound)"
            }
        );
        interval = controller.observe(IntervalObservation {
            interval,
            throughput_keps: keps,
            p99,
        });
        if controller.converged() {
            break;
        }
    }

    let best = controller.best().expect("at least one feasible probe");
    println!(
        "\nconverged: interval {} gives {:.1} K events/s at p99 {:.2} ms \
         (paper default is 500; Figure 12 sweeps this knob by hand)",
        best.interval,
        best.throughput_keps,
        best.p99.as_secs_f64() * 1e3
    );
}
