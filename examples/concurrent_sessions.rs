//! Concurrent sessions: several clients multiplexed over one engine.
//!
//! The `streaming_session` example runs one continuous session; this one
//! runs the multi-client shape the session scheduler exists for: **four
//! sessions — one per benchmark app (GS, SL, OB, TP) — open concurrently on
//! one engine**, each pushed from its own thread against its own store.
//! The runtime interleaves their punctuation batches round-robin over the
//! shared executor pool (spawned once, never per session), applies
//! backpressure per session, and stamps each report with its session label
//! so the output stays attributable.
//!
//! To prove the multiplexing is not just time-slicing whole runs, every
//! session's results are compared against a sequential offline run of the
//! same workload — byte-identical counts, every time.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example concurrent_sessions
//! ```

use std::sync::Arc;

use tstream_apps::workload::WorkloadSpec;
use tstream_apps::{
    run_benchmark_concurrent, run_benchmark_via, AppKind, ExecutionPath, RunOptions, SchemeKind,
};
use tstream_core::prelude::*;

fn main() {
    let executors = std::thread::available_parallelism()
        .map(|p| p.get().min(4))
        .unwrap_or(2);
    let spec = WorkloadSpec::default().events(20_000).seed(0x5E);
    let engine = EngineConfig::with_executors(executors).punctuation(500);
    let options = RunOptions::new(spec, engine);

    println!(
        "opening {} concurrent sessions (one per app) on one engine, {executors} executors\n",
        AppKind::ALL.len()
    );
    let run = run_benchmark_concurrent(&AppKind::ALL, SchemeKind::TStream, &options);

    println!("  label   events  committed  rejected     keps");
    for report in &run.reports {
        println!(
            "  {:<5} {:>8} {:>10} {:>9} {:>8.1}",
            report.label.as_deref().unwrap_or("?"),
            report.events,
            report.committed,
            report.rejected,
            report.throughput_keps()
        );
    }
    println!(
        "\naggregate: {} events across {} sessions, {:.1} K events/s over the shared window",
        run.events(),
        run.reports.len(),
        run.aggregate_keps()
    );

    // Differential: each concurrent session must match its sequential
    // offline baseline exactly.
    for (app, report) in AppKind::ALL.iter().zip(&run.reports) {
        let baseline =
            run_benchmark_via(*app, SchemeKind::TStream, &options, ExecutionPath::Offline);
        assert_eq!(
            report.committed,
            baseline.committed,
            "{} committed diverged under concurrency",
            app.label()
        );
        assert_eq!(
            report.rejected,
            baseline.rejected,
            "{} rejected diverged under concurrency",
            app.label()
        );
    }
    println!("differential holds: every concurrent session == its sequential baseline");

    // And a direct handle-level view: two labelled sessions interleaving on
    // one engine from one thread, both advancing between flushes.
    let table_a = TableBuilder::new("a")
        .extend((0..8u64).map(|k| (k, Value::Long(0))))
        .build()
        .unwrap();
    let table_b = TableBuilder::new("b")
        .extend((0..8u64).map(|k| (k, Value::Long(0))))
        .build()
        .unwrap();
    let store_a = StateStore::new(vec![table_a]).unwrap();
    let store_b = StateStore::new(vec![table_b]).unwrap();

    struct Incr(&'static str);
    impl Application for Incr {
        type Payload = u64;
        fn name(&self) -> &'static str {
            self.0
        }
        fn read_write_set(&self, key: &u64) -> ReadWriteSet {
            ReadWriteSet::new().write(StateRef::new(0, *key))
        }
        fn state_access(&self, key: &u64, txn: &mut TxnBuilder) {
            txn.read_modify(0, *key, None, |ctx| {
                Ok(Value::Long(ctx.current.as_long()? + 1))
            });
        }
        fn post_process(&self, _k: &u64, _b: &EventBlotter) -> PostAction {
            PostAction::Emit
        }
    }

    let engine = Engine::new(EngineConfig::with_executors(2).punctuation(64));
    let app_a = Arc::new(Incr("incr-a"));
    let app_b = Arc::new(Incr("incr-b"));
    let mut a = engine
        .session_builder(&app_a, &store_a, &Scheme::TStream)
        .label("interleaved-a")
        .open()
        .unwrap();
    let mut b = engine
        .session_builder(&app_b, &store_b, &Scheme::TStream)
        .label("interleaved-b")
        .open()
        .unwrap();
    for i in 0..512u64 {
        a.push(i % 8).unwrap();
        b.push(i % 8).unwrap();
    }
    a.flush().unwrap(); // A is fully visible while B is still open
    let ra = a.report().unwrap();
    let rb = b.report().unwrap();
    assert_eq!(ra.committed, 512);
    assert_eq!(rb.committed, 512);
    assert_eq!(
        engine.runtime_threads_spawned(),
        2,
        "two sessions, one pool: no extra threads"
    );
    println!(
        "handle-level interleave: '{}' and '{}' each committed 512 events on one 2-thread pool",
        ra.label.unwrap(),
        rb.label.unwrap()
    );
}
