#!/usr/bin/env sh
# Guard the perf trajectory: re-run the quick benchmark sweep and fail if
# the plain or the durable TStream throughput of any app regressed more
# than the allowed fraction against the committed BENCH_engine.json.
#
# Compared rows (fresh keps must be >= (1 - TOLERANCE) x committed keps):
#   * plain points:  scheme == TStream, one per app;
#   * durability:    the default-group-window row per app (the window-1 row
#     is a reference measurement of the old per-event-sync tax, dominated
#     by raw fsync latency, and is not guarded).
#
# The committed snapshot is regenerated on the same class of host
# (scripts/bench_snapshot.sh), so a straight keps comparison with a 20 %
# tolerance absorbs run-to-run noise while still catching a real
# regression such as losing the group-commit window or re-introducing a
# per-event barrier round.
#
# Usage:
#   scripts/bench_guard.sh                 # tolerance 20 %
#   TOLERANCE=0.3 scripts/bench_guard.sh   # custom tolerance
set -eu

cd "$(dirname "$0")/.."

TOLERANCE="${TOLERANCE:-0.20}"
COMMITTED="BENCH_engine.json"
FRESH="${FRESH:-/tmp/bench_guard_fresh.json}"

if [ ! -f "$COMMITTED" ]; then
    echo "bench_guard: no committed $COMMITTED to compare against" >&2
    exit 1
fi

cargo run --release -p tstream-bench --bin bench_snapshot -- --quick --out "$FRESH"

# "plain <app> <keps>" for every TStream point, and "durable <app> <keps>"
# for every durability row that is not the window-1 reference.  One JSON
# object per line after splitting on '{' keeps this a plain-awk parse (the
# snapshot writer emits flat one-line objects; no jq in the container).
rows() {
    tr '{' '\n' < "$1" | awk '
        /"scheme": "TStream"/ && /"keps":/ && !/durable_keps/ {
            app = ""; keps = ""
            n = split($0, parts, ",")
            for (i = 1; i <= n; i++) {
                if (parts[i] ~ /"app":/)  { gsub(/[^A-Z]/, "", parts[i]); app = parts[i] }
                if (parts[i] ~ /"keps":/) { gsub(/[^0-9.]/, "", parts[i]); keps = parts[i] }
            }
            if (app != "" && keps != "") print "plain", app, keps
        }
        /durable_keps/ {
            app = ""; window = ""; keps = ""
            n = split($0, parts, ",")
            for (i = 1; i <= n; i++) {
                if (parts[i] ~ /"app":/)          { gsub(/[^A-Z]/, "", parts[i]); app = parts[i] }
                if (parts[i] ~ /"group_window":/) { gsub(/[^0-9]/, "", parts[i]); window = parts[i] }
                if (parts[i] ~ /"durable_keps":/) { gsub(/[^0-9.]/, "", parts[i]); keps = parts[i] }
            }
            if (app != "" && keps != "" && window != "1") print "durable", app, keps
        }'
}

rows "$COMMITTED" > /tmp/bench_guard_old.txt
rows "$FRESH" > /tmp/bench_guard_new.txt

awk -v tol="$TOLERANCE" '
    FNR == NR { old[$1 "/" $2] = $3; next }
    { new[$1 "/" $2] = $3 }
    END {
        bad = 0
        checked = 0
        for (key in old) {
            if (!(key in new)) {
                printf "bench_guard: row %s missing from the fresh run\n", key
                bad = 1
                continue
            }
            checked++
            floor = old[key] * (1 - tol)
            verdict = (new[key] + 0 >= floor) ? "ok" : "REGRESSED"
            printf "%-18s committed %8.2f  fresh %8.2f  floor %8.2f  %s\n", key, old[key], new[key], floor, verdict
            if (verdict == "REGRESSED") bad = 1
        }
        if (checked == 0) {
            print "bench_guard: no comparable rows found in the committed snapshot"
            bad = 1
        }
        exit bad
    }' /tmp/bench_guard_old.txt /tmp/bench_guard_new.txt || {
    echo "bench_guard: FAILED (tolerance $TOLERANCE)" >&2
    exit 1
}
echo "bench_guard: OK (tolerance $TOLERANCE)"
