#!/usr/bin/env sh
# Guard the perf trajectory: re-run the quick benchmark sweep and fail if
# the plain or the durable TStream throughput of any app regressed more
# than the allowed fraction against the committed BENCH_engine.json.
#
# Compared rows (fresh value must be >= (1 - TOLERANCE) x committed value):
#   * plain points:  scheme == TStream, one per app (keps);
#   * durability:    the default-group-window row per app (the window-1 row
#     is a reference measurement of the old per-event-sync tax, dominated
#     by raw fsync latency, and is not guarded);
#   * breakdown:     the per-stage section's compute_share per app — an
#     overhead regression (slower restructuring at unchanged keps) fails
#     the build even before it shows up in throughput;
#   * observability: the fresh snapshot's instrumented-vs-disabled overhead
#     rows, checked as an absolute ceiling (mean across apps <= 5%), not
#     against the committed values — the instrumentation must stay close to
#     free no matter what the baseline says.  The rows are already
#     noise-hardened (interleaved best-of-N pairs, clamped at zero);
#   * replication:   the shipping-on-vs-off overhead rows, same absolute-
#     ceiling treatment (mean across apps <= 10%) — attaching a hot-standby
#     shipper must never tax the primary's ingest path by more than that.
#
# The committed snapshot is regenerated on the same class of host
# (scripts/bench_snapshot.sh).  Tolerances are sized to the noise actually
# observed on 1-core shared boxes — plain/share rows swing ~±35 % run to
# run, and the fsync-bound durable rows more than 2x (disk latency, not
# code) — while still catching the regressions the guard exists for:
# losing the group-commit window (~40x), re-introducing a per-event
# barrier round or keyed lookups on the access path (2-5x).
#
# Usage:
#   scripts/bench_guard.sh                     # plain/share 40 %, durable 60 %
#   TOLERANCE=0.2 scripts/bench_guard.sh       # custom plain/share tolerance
#   DURABLE_TOLERANCE=0.4 scripts/bench_guard.sh
set -eu

cd "$(dirname "$0")/.."

TOLERANCE="${TOLERANCE:-0.40}"
DURABLE_TOLERANCE="${DURABLE_TOLERANCE:-0.60}"
OBS_TOLERANCE="${OBS_TOLERANCE:-0.05}"
REPLICATION_TOLERANCE="${REPLICATION_TOLERANCE:-0.10}"
COMMITTED="BENCH_engine.json"
FRESH="${FRESH:-/tmp/bench_guard_fresh.json}"

if [ ! -f "$COMMITTED" ]; then
    echo "bench_guard: no committed $COMMITTED to compare against" >&2
    exit 1
fi

cargo run --release -p tstream-bench --bin bench_snapshot -- --quick --out "$FRESH"

# "plain <app> <keps>" for every TStream point, and "durable <app> <keps>"
# for every durability row that is not the window-1 reference.  One JSON
# object per line after splitting on '{' keeps this a plain-awk parse (the
# snapshot writer emits flat one-line objects; no jq in the container).
rows() {
    tr '{' '\n' < "$1" | awk '
        /"scheme": "TStream"/ && /"keps":/ && !/durable_keps/ {
            app = ""; keps = ""
            n = split($0, parts, ",")
            for (i = 1; i <= n; i++) {
                if (parts[i] ~ /"app":/)  { gsub(/[^A-Z]/, "", parts[i]); app = parts[i] }
                if (parts[i] ~ /"keps":/) { gsub(/[^0-9.]/, "", parts[i]); keps = parts[i] }
            }
            if (app != "" && keps != "") print "plain", app, keps
        }
        /durable_keps/ {
            app = ""; window = ""; keps = ""
            n = split($0, parts, ",")
            for (i = 1; i <= n; i++) {
                if (parts[i] ~ /"app":/)          { gsub(/[^A-Z]/, "", parts[i]); app = parts[i] }
                if (parts[i] ~ /"group_window":/) { gsub(/[^0-9]/, "", parts[i]); window = parts[i] }
                if (parts[i] ~ /"durable_keps":/) { gsub(/[^0-9.]/, "", parts[i]); keps = parts[i] }
            }
            if (app != "" && keps != "" && window != "1") print "durable", app, keps
        }
        /"compute_ms":/ && /"compute_share":/ {
            app = ""; share = ""
            n = split($0, parts, ",")
            for (i = 1; i <= n; i++) {
                if (parts[i] ~ /"app":/)           { gsub(/[^A-Z]/, "", parts[i]); app = parts[i] }
                if (parts[i] ~ /"compute_share":/) { gsub(/[^0-9.]/, "", parts[i]); share = parts[i] }
            }
            if (app != "" && share != "") print "share", app, share
        }'
}

# The per-stage breakdown and observability sections are part of the
# snapshot contract: a snapshot without them would silently drop their
# rows from the guard.
for f in "$COMMITTED" "$FRESH"; do
    for section in '"breakdown":' '"observability":' '"replication":'; do
        if ! grep -q "$section" "$f"; then
            echo "bench_guard: $f has no $section section" >&2
            exit 1
        fi
    done
done

# Instrumentation-overhead ceiling: checked on the fresh run alone.
tr '{' '\n' < "$FRESH" | awk -v tol="$OBS_TOLERANCE" '
    /"instrumented_keps":/ {
        app = ""; ov = ""
        n = split($0, parts, ",")
        for (i = 1; i <= n; i++) {
            if (parts[i] ~ /"app":/)      { gsub(/[^A-Z]/, "", parts[i]); app = parts[i] }
            if (parts[i] ~ /"overhead":/) { gsub(/[^0-9.]/, "", parts[i]); ov = parts[i] }
        }
        if (app != "" && ov != "") {
            printf "obs/%-14s overhead %6.2f%%\n", app, 100 * ov
            sum += ov; rows++
        }
    }
    END {
        if (rows == 0) {
            print "bench_guard: no observability rows in the fresh run"
            exit 1
        }
        mean = sum / rows
        printf "obs mean overhead %.2f%% (ceiling %.0f%%)\n", 100 * mean, 100 * tol
        if (mean > tol) {
            print "bench_guard: instrumentation overhead exceeds the ceiling"
            exit 1
        }
    }' || {
    echo "bench_guard: FAILED (observability overhead ceiling $OBS_TOLERANCE)" >&2
    exit 1
}

# Replication-shipping ceiling: same shape, fresh run alone.
tr '{' '\n' < "$FRESH" | awk -v tol="$REPLICATION_TOLERANCE" '
    /"shipping_keps":/ {
        app = ""; ov = ""
        n = split($0, parts, ",")
        for (i = 1; i <= n; i++) {
            if (parts[i] ~ /"app":/)      { gsub(/[^A-Z]/, "", parts[i]); app = parts[i] }
            if (parts[i] ~ /"overhead":/) { gsub(/[^0-9.]/, "", parts[i]); ov = parts[i] }
        }
        if (app != "" && ov != "") {
            printf "replication/%-6s overhead %6.2f%%\n", app, 100 * ov
            sum += ov; rows++
        }
    }
    END {
        if (rows == 0) {
            print "bench_guard: no replication rows in the fresh run"
            exit 1
        }
        mean = sum / rows
        printf "replication mean overhead %.2f%% (ceiling %.0f%%)\n", 100 * mean, 100 * tol
        if (mean > tol) {
            print "bench_guard: replication shipping overhead exceeds the ceiling"
            exit 1
        }
    }' || {
    echo "bench_guard: FAILED (replication overhead ceiling $REPLICATION_TOLERANCE)" >&2
    exit 1
}

rows "$COMMITTED" > /tmp/bench_guard_old.txt
rows "$FRESH" > /tmp/bench_guard_new.txt

awk -v tol="$TOLERANCE" -v dtol="$DURABLE_TOLERANCE" '
    FNR == NR { old[$1 "/" $2] = $3; next }
    { new[$1 "/" $2] = $3 }
    END {
        bad = 0
        checked = 0
        for (key in old) {
            if (!(key in new)) {
                printf "bench_guard: row %s missing from the fresh run\n", key
                bad = 1
                continue
            }
            checked++
            row_tol = (key ~ /^durable\//) ? dtol : tol
            floor = old[key] * (1 - row_tol)
            verdict = (new[key] + 0 >= floor) ? "ok" : "REGRESSED"
            printf "%-18s committed %8.2f  fresh %8.2f  floor %8.2f  %s\n", key, old[key], new[key], floor, verdict
            if (verdict == "REGRESSED") bad = 1
        }
        if (checked == 0) {
            print "bench_guard: no comparable rows found in the committed snapshot"
            bad = 1
        }
        exit bad
    }' /tmp/bench_guard_old.txt /tmp/bench_guard_new.txt || {
    echo "bench_guard: FAILED (tolerance $TOLERANCE, durable $DURABLE_TOLERANCE)" >&2
    exit 1
}
echo "bench_guard: OK (tolerance $TOLERANCE, durable $DURABLE_TOLERANCE)"
