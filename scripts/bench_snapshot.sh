#!/usr/bin/env sh
# Refresh the repository's perf-trajectory baseline: run the quick
# Figure-8-style throughput sweep across GS/SL/OB/TP under every scheme and
# write the results to BENCH_engine.json at the repo root.
#
# Usage:
#   scripts/bench_snapshot.sh            # quick sweep (CI-sized)
#   scripts/bench_snapshot.sh --full     # full sweep (takes much longer)
set -eu

cd "$(dirname "$0")/.."

MODE="--quick"
if [ "${1:-}" = "--full" ]; then
    MODE=""
fi

# shellcheck disable=SC2086  # MODE is intentionally word-split (empty or one flag)
cargo run --release -p tstream-bench --bin bench_snapshot -- $MODE --out BENCH_engine.json
