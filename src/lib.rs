//! # tstream
//!
//! Facade crate for the TStream reproduction (*Towards Concurrent Stateful
//! Stream Processing on Multicore Processors*, ICDE 2020). It re-exports the
//! workspace crates under one roof and owns the repository-level integration
//! tests and examples.
//!
//! The interesting code lives in the member crates:
//!
//! * [`core`] — the engine: dual-mode scheduling + dynamic restructuring;
//! * [`txn`] — state transactions and the baseline schemes (No-Lock, LOCK,
//!   MVLK, PAT, ...);
//! * [`state`] — tables, versioned records, locks, checkpoints;
//! * [`recovery`] — the crash-recovery subsystem: segmented write-ahead
//!   input log and the coordinator behind the session builder's
//!   `.durable(dir).recover()` mode;
//! * [`replica`] — hot-standby replication: segment shipping from a
//!   primary's durable log to a continuously-replaying standby, takeover
//!   (`promote`) and per-epoch divergence detection;
//! * [`stream`] — events, punctuation barriers, operators, topologies;
//! * [`skiplist`] — the concurrent skip list backing the state indexes;
//! * [`obs`] — the observability layer: lock-free metrics hub, flight
//!   recorder, and the clock facade behind every runtime timestamp;
//! * [`apps`] — the paper's four benchmark applications (GS, SL, OB, TP).

#![warn(missing_docs)]

pub use tstream_apps as apps;
pub use tstream_core as core;
pub use tstream_obs as obs;
pub use tstream_recovery as recovery;
pub use tstream_replica as replica;
pub use tstream_skiplist as skiplist;
pub use tstream_state as state;
pub use tstream_stream as stream;
pub use tstream_txn as txn;

pub use tstream_core::prelude;
