//! Repository-invariant lint gate, run in CI (`cargo run -p repolint`).
//!
//! Enforces, source-statically, the concurrency conventions the rest of the
//! tooling assumes:
//!
//! 1. **No `std::sync::{Mutex, RwLock, Condvar}` in runtime crates.**  All
//!    blocking synchronization goes through the vendored `parking_lot`, so
//!    the lock-order tracker (and its non-poisoning semantics) see every
//!    lock.  `crates/check` is exempt: its shims are *built on* the std
//!    primitives by design.
//! 2. **No `unwrap()`/`expect()` on lock or channel results** in non-test
//!    runtime code.  parking_lot guards are not `Result`s, and channel
//!    errors (a hung-up peer) are ordinary shutdown signals, not panics.
//! 3. **No direct `std::thread::spawn` outside the executor pool's spawn
//!    sites** (`crates/core/src/runtime.rs` and the pool-owned WAL writer in
//!    `crates/core/src/walwriter.rs`).  Threads belong to the executor pool
//!    so sessions can be multiplexed, counted, and joined; stray spawns
//!    escape the pool's lifecycle.
//! 4. **Vendor-dir immutability.**  `vendor/` is hash-pinned in
//!    `tools/repolint/vendor.manifest` (FNV-1a 64); drive-by edits to the
//!    vendored stand-ins fail CI.  Regenerate deliberately with
//!    `cargo run -p repolint -- --write-vendor-manifest`.
//! 5. **No ad-hoc `Instant::now()` in runtime crates.**  Every runtime
//!    timestamp goes through `tstream_obs::clock::now()` (or a
//!    `Stopwatch`), so timing can be audited, gated on the obs config, and
//!    stubbed in one place.  The clock facade itself
//!    (`crates/obs/src/clock.rs`) and the stream crate's throughput clock
//!    (`crates/stream/src/metrics.rs`) are the two sanctioned call sites.
//!
//! Rules 1–3 and 5 skip `#[cfg(test)]` blocks and comment lines;
//! integration tests (`tests/`) are not scanned — tests may spawn raw
//! threads and time things however they like.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// A single lint finding, printed as `path:line: rule: message`.
struct Violation {
    path: PathBuf,
    line: usize,
    rule: &'static str,
    message: String,
}

fn main() -> ExitCode {
    let root = repo_root();
    let write_manifest = std::env::args().any(|a| a == "--write-vendor-manifest");
    if write_manifest {
        match write_vendor_manifest(&root) {
            Ok(count) => {
                println!("repolint: pinned {count} vendor files in {MANIFEST_PATH}");
                return ExitCode::SUCCESS;
            }
            Err(err) => {
                eprintln!("repolint: failed to write vendor manifest: {err}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut violations = Vec::new();
    for dir in ["crates", "src"] {
        let base = root.join(dir);
        if base.exists() {
            walk_rust_files(&base, &mut |path| {
                if !is_exempt_crate(&root, path) {
                    lint_source_file(&root, path, &mut violations);
                }
            });
        }
    }
    check_vendor_manifest(&root, &mut violations);

    if violations.is_empty() {
        println!("repolint: all invariants hold");
        return ExitCode::SUCCESS;
    }
    for v in &violations {
        eprintln!("{}:{}: {}: {}", v.path.display(), v.line, v.rule, v.message);
    }
    eprintln!("repolint: {} violation(s)", violations.len());
    ExitCode::FAILURE
}

fn repo_root() -> PathBuf {
    // tools/repolint/ -> repo root.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("tools/repolint sits two levels under the repo root")
        .to_path_buf()
}

/// `crates/check` builds its shims on the std primitives by design, and
/// deliberately spawns OS threads to host model threads.
fn is_exempt_crate(root: &Path, path: &Path) -> bool {
    path.strip_prefix(root)
        .map(|rel| rel.starts_with("crates/check"))
        .unwrap_or(false)
}

fn walk_rust_files(dir: &Path, visit: &mut dyn FnMut(&Path)) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name != "target" && !name.starts_with('.') {
                walk_rust_files(&path, visit);
            }
        } else if name.ends_with(".rs") {
            visit(&path);
        }
    }
}

/// Tracks `#[cfg(test)]`-gated regions with brace counting: once the
/// attribute is seen, the next block that opens is skipped until its
/// braces balance.  Good enough for rustfmt-formatted code, which this
/// repository enforces in CI.
struct TestRegionTracker {
    pending_attr: bool,
    depth: usize,
}

impl TestRegionTracker {
    fn new() -> Self {
        TestRegionTracker {
            pending_attr: false,
            depth: 0,
        }
    }

    /// Feed one line; returns true when the line belongs to test-gated code.
    fn in_test(&mut self, line: &str) -> bool {
        let trimmed = line.trim_start();
        if self.depth > 0 {
            self.update_depth(line);
            return true;
        }
        if trimmed.starts_with("#[cfg(test)]") {
            self.pending_attr = true;
            return true;
        }
        if self.pending_attr {
            if line.contains('{') {
                self.pending_attr = false;
                self.update_depth(line);
            }
            // Attribute lines between #[cfg(test)] and the block (e.g.
            // #[test]) are part of the gated item.
            return true;
        }
        false
    }

    fn update_depth(&mut self, line: &str) {
        for c in line.chars() {
            match c {
                '{' => self.depth += 1,
                '}' => self.depth = self.depth.saturating_sub(1),
                _ => {}
            }
        }
    }
}

const STD_SYNC_TYPES: [&str; 3] = ["Mutex", "RwLock", "Condvar"];

fn lint_source_file(root: &Path, path: &Path, violations: &mut Vec<Violation>) {
    let Ok(source) = fs::read_to_string(path) else {
        return;
    };
    let rel = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    // The executor pool and its spawn-once WAL writer are the only places
    // allowed to create OS threads; both are counted and joined by the pool.
    let spawn_allowed = rel == Path::new("crates/core/src/runtime.rs")
        || rel == Path::new("crates/core/src/walwriter.rs");
    // Rule 5 scope: the crates on the event-processing path.  `apps` and
    // `bench` are drivers — they time whole runs, which is fine.
    let runtime_crate = [
        "crates/core",
        "crates/stream",
        "crates/txn",
        "crates/state",
        "crates/recovery",
        "crates/skiplist",
        "crates/obs",
    ]
    .iter()
    .any(|c| rel.starts_with(c));
    let clock_allowed = rel == Path::new("crates/obs/src/clock.rs")
        || rel == Path::new("crates/stream/src/metrics.rs");
    let mut tracker = TestRegionTracker::new();

    for (idx, line) in source.lines().enumerate() {
        let lineno = idx + 1;
        if tracker.in_test(line) {
            continue;
        }
        let trimmed = line.trim_start();
        if trimmed.starts_with("//") {
            continue;
        }

        // Rule 1: std sync lock types, in both qualified and braced-import
        // forms (`std::sync::Mutex`, `use std::sync::{Arc, Mutex}`).
        for ty in STD_SYNC_TYPES {
            let qualified = format!("std::sync::{ty}");
            let hit = line.contains(&qualified)
                || (trimmed.starts_with("use std::sync::{") && imports_item(trimmed, ty));
            if hit {
                violations.push(Violation {
                    path: rel.clone(),
                    line: lineno,
                    rule: "std-sync-type",
                    message: format!(
                        "std::sync::{ty} in a runtime crate; use the vendored \
                         parking_lot::{ty} so the lock-order tracker sees it"
                    ),
                });
            }
        }

        // Rule 2: unwrap/expect on lock or channel results.
        for method in ["lock()", "read()", "write()", "recv()", "try_recv()"] {
            for panicky in ["unwrap", "expect"] {
                if line.contains(&format!(".{method}.{panicky}(")) {
                    violations.push(Violation {
                        path: rel.clone(),
                        line: lineno,
                        rule: "panicky-sync-result",
                        message: format!(
                            ".{method}.{panicky}(...) in runtime code; parking_lot \
                             guards are not Results and channel errors are shutdown \
                             signals, not panics"
                        ),
                    });
                }
            }
        }

        // Rule 3: raw thread spawns outside the executor pool.
        if !spawn_allowed
            && (line.contains("std::thread::spawn") || line.contains("thread::spawn("))
        {
            violations.push(Violation {
                path: rel.clone(),
                line: lineno,
                rule: "raw-thread-spawn",
                message: "std::thread::spawn outside the executor pool's spawn \
                          sites (runtime.rs, walwriter.rs); threads belong to \
                          the executor pool"
                    .to_string(),
            });
        }

        // Rule 5: ad-hoc clock reads on the event-processing path.
        if runtime_crate && !clock_allowed && line.contains("Instant::now(") {
            violations.push(Violation {
                path: rel.clone(),
                line: lineno,
                rule: "ad-hoc-clock",
                message: "Instant::now() in a runtime crate; read the clock \
                          through tstream_obs::clock::now() (or Stopwatch) so \
                          runtime timing stays auditable and obs-gated"
                    .to_string(),
            });
        }
    }
}

/// Does a braced `use std::sync::{...}` line import `item`?
fn imports_item(use_line: &str, item: &str) -> bool {
    let Some(open) = use_line.find('{') else {
        return false;
    };
    let inner = use_line[open + 1..].trim_end_matches(['}', ';']);
    inner.split(',').any(|part| part.trim() == item)
}

// ---------------------------------------------------------------------------
// Vendor immutability
// ---------------------------------------------------------------------------

const MANIFEST_PATH: &str = "tools/repolint/vendor.manifest";

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Hash every file under `vendor/`, sorted by relative path.
fn vendor_hashes(root: &Path) -> Vec<(String, u64)> {
    let mut files = Vec::new();
    walk_all_files(&root.join("vendor"), &mut |path| {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let bytes = fs::read(path).unwrap_or_default();
        files.push((rel, fnv1a64(&bytes)));
    });
    files.sort();
    files
}

fn walk_all_files(dir: &Path, visit: &mut dyn FnMut(&Path)) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name != "target" && !name.starts_with('.') {
                walk_all_files(&path, visit);
            }
        } else {
            visit(&path);
        }
    }
}

fn write_vendor_manifest(root: &Path) -> std::io::Result<usize> {
    let hashes = vendor_hashes(root);
    let mut out = String::from(
        "# FNV-1a 64 hashes of every file under vendor/, one `<hash>  <path>` per line.\n\
         # Regenerate deliberately with: cargo run -p repolint -- --write-vendor-manifest\n",
    );
    for (path, hash) in &hashes {
        let _ = writeln!(out, "{hash:016x}  {path}");
    }
    fs::write(root.join(MANIFEST_PATH), out)?;
    Ok(hashes.len())
}

fn check_vendor_manifest(root: &Path, violations: &mut Vec<Violation>) {
    let manifest_file = root.join(MANIFEST_PATH);
    let Ok(manifest) = fs::read_to_string(&manifest_file) else {
        violations.push(Violation {
            path: PathBuf::from(MANIFEST_PATH),
            line: 0,
            rule: "vendor-manifest",
            message: "missing vendor manifest; run \
                      `cargo run -p repolint -- --write-vendor-manifest`"
                .to_string(),
        });
        return;
    };
    let mut pinned = std::collections::BTreeMap::new();
    for (idx, line) in manifest.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((hash, path)) = line.split_once("  ") {
            if let Ok(hash) = u64::from_str_radix(hash, 16) {
                pinned.insert(path.to_string(), hash);
                continue;
            }
        }
        violations.push(Violation {
            path: PathBuf::from(MANIFEST_PATH),
            line: idx + 1,
            rule: "vendor-manifest",
            message: format!("unparsable manifest line: {line}"),
        });
    }
    let current: std::collections::BTreeMap<_, _> = vendor_hashes(root).into_iter().collect();
    for (path, hash) in &current {
        match pinned.get(path) {
            None => violations.push(Violation {
                path: PathBuf::from(path),
                line: 0,
                rule: "vendor-immutable",
                message: "file added under vendor/ without re-pinning the manifest".to_string(),
            }),
            Some(want) if want != hash => violations.push(Violation {
                path: PathBuf::from(path),
                line: 0,
                rule: "vendor-immutable",
                message: "vendored file modified; vendor/ is hash-pinned (regenerate \
                          the manifest only for deliberate vendor changes)"
                    .to_string(),
            }),
            Some(_) => {}
        }
    }
    for path in pinned.keys() {
        if !current.contains_key(path) {
            violations.push(Violation {
                path: PathBuf::from(path),
                line: 0,
                rule: "vendor-immutable",
                message: "pinned vendor file deleted without re-pinning the manifest".to_string(),
            });
        }
    }
}
