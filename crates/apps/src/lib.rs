//! # tstream-apps
//!
//! The benchmark suite of the TStream paper (Section VI-A): four
//! applications assembled following Jim Gray's benchmark criteria, their
//! deterministic workload generators, and a uniform runner used by the
//! figure-regeneration harnesses.
//!
//! * [`gs`] — **Grep and Sum**: read or update ten records of a shared table
//!   per event, then sum the values;
//! * [`sl`] — **Streaming Ledger**: deposits and transfers over shared
//!   account / asset tables, with heavy cross-state data dependencies;
//! * [`ob`] — **Online Bidding**: bid / alter / top requests over a shared
//!   item table with conditional updates;
//! * [`tp`] — **Toll Processing**: the Linear Road toll query over shared
//!   road-congestion state;
//! * [`conventional`] — the Figure 2(a) baseline: Toll Processing with
//!   key-based partitioning and exclusive per-executor state (no concurrent
//!   state access), used to reproduce the Section II-A motivation;
//! * [`workload`] — deterministic PRNG, Zipf sampler and workload parameters;
//! * [`runner`] — (application × scheme) dispatch plus text-table helpers for
//!   the harnesses.

#![warn(missing_docs)]

pub mod conventional;
pub mod gs;
pub mod ob;
pub mod runner;
pub mod sl;
pub mod tp;
pub mod wal;
pub mod workload;

pub use runner::{
    run_benchmark, run_benchmark_concurrent, run_benchmark_durable, run_benchmark_via,
    run_benchmark_with_snapshot, AppKind, ConcurrentRun, ExecutionPath, RunOptions, SchemeKind,
};
pub use workload::{Rng, WorkloadSpec, Zipf};
