//! Streaming Ledger (SL), Section VI-A / Figure 6.
//!
//! Modelled after the Streaming Ledger white paper the paper cites: events
//! wire money and assets between accounts.  Two shared tables (accounts and
//! assets, 10 000 records each) are accessed by two request types:
//!
//! * **Deposit** — top up one account and one asset (transaction length 2);
//! * **Transfer** — move a balance from one (account, asset) pair to another
//!   (transaction length 4).  The credits to the destination depend on the
//!   source balances being sufficient, which is the heavy cross-state data
//!   dependency the paper highlights for SL.
//!
//! The input stream is an even 50/50 mix of deposits and transfers with a
//! Zipf(0.6) account distribution.

use std::sync::Arc;

use tstream_core::prelude::*;
use tstream_state::{StateError, StateStore, TableBuilder};
use tstream_txn::TxnBuilder as Txn;

use crate::workload::{Rng, WorkloadSpec, Zipf};

/// Table index of the account table.
pub const ACCOUNT_TABLE: u32 = 0;
/// Table index of the asset table.
pub const ASSET_TABLE: u32 = 1;

/// Initial balance of every account / asset record; large enough that only a
/// small fraction of transfers is rejected for insufficient funds.
pub const INITIAL_BALANCE: i64 = 1_000_000;

/// One SL request.
#[derive(Debug, Clone)]
pub enum SlEvent {
    /// Top up `account` and `asset` by `amount`.
    Deposit {
        /// Account key.
        account: u64,
        /// Asset key.
        asset: u64,
        /// Amount added to both.
        amount: i64,
    },
    /// Transfer `amount` between account and asset pairs.
    Transfer {
        /// Source account.
        src_account: u64,
        /// Destination account.
        dst_account: u64,
        /// Source asset.
        src_asset: u64,
        /// Destination asset.
        dst_asset: u64,
        /// Amount moved.
        amount: i64,
    },
}

/// The Streaming Ledger application.
#[derive(Debug, Clone, Default)]
pub struct StreamingLedger;

impl Application for StreamingLedger {
    type Payload = SlEvent;

    fn name(&self) -> &'static str {
        "SL"
    }

    fn read_write_set(&self, e: &SlEvent) -> ReadWriteSet {
        let mut set = ReadWriteSet::new();
        match e {
            SlEvent::Deposit { account, asset, .. } => {
                set.push(StateRef::new(ACCOUNT_TABLE, *account), AccessMode::Write);
                set.push(StateRef::new(ASSET_TABLE, *asset), AccessMode::Write);
            }
            SlEvent::Transfer {
                src_account,
                dst_account,
                src_asset,
                dst_asset,
                ..
            } => {
                set.push(
                    StateRef::new(ACCOUNT_TABLE, *src_account),
                    AccessMode::Write,
                );
                set.push(
                    StateRef::new(ACCOUNT_TABLE, *dst_account),
                    AccessMode::Write,
                );
                set.push(StateRef::new(ASSET_TABLE, *src_asset), AccessMode::Write);
                set.push(StateRef::new(ASSET_TABLE, *dst_asset), AccessMode::Write);
                // The credits read the source balances (data dependencies).
                set.push(StateRef::new(ACCOUNT_TABLE, *src_account), AccessMode::Read);
                set.push(StateRef::new(ASSET_TABLE, *src_asset), AccessMode::Read);
            }
        }
        set
    }

    fn state_access(&self, e: &SlEvent, txn: &mut Txn) {
        match *e {
            SlEvent::Deposit {
                account,
                asset,
                amount,
            } => {
                txn.read_modify(ACCOUNT_TABLE, account, None, move |ctx| {
                    Ok(Value::Long(ctx.current.as_long()? + amount))
                });
                txn.read_modify(ASSET_TABLE, asset, None, move |ctx| {
                    Ok(Value::Long(ctx.current.as_long()? + amount))
                });
            }
            SlEvent::Transfer {
                src_account,
                dst_account,
                src_asset,
                dst_asset,
                amount,
            } => {
                // The transfer's condition is "the source balances, as of this
                // transaction's timestamp, are sufficient".  The dependent
                // credit operations are issued *before* the debits so that the
                // eager single-version schemes (which read committed values in
                // operation order) evaluate the condition against the same
                // pre-transaction balances the multi-version schemes and
                // TStream see — all schemes therefore make identical
                // commit/abort decisions.
                //
                // Credit the destination account; depends on the source
                // account balance.
                txn.write_with(
                    ACCOUNT_TABLE,
                    dst_account,
                    Some(StateRef::new(ACCOUNT_TABLE, src_account)),
                    move |ctx| {
                        let src = ctx.dependency.expect("transfer dependency").as_long()?;
                        if src >= amount {
                            Ok(Value::Long(ctx.current.as_long()? + amount))
                        } else {
                            Err(StateError::ConsistencyViolation(
                                "insufficient account balance".into(),
                            ))
                        }
                    },
                );
                // Debit the source account if it has sufficient balance.
                txn.read_modify(ACCOUNT_TABLE, src_account, None, move |ctx| {
                    let balance = ctx.current.as_long()?;
                    if balance >= amount {
                        Ok(Value::Long(balance - amount))
                    } else {
                        Err(StateError::ConsistencyViolation(
                            "insufficient account balance".into(),
                        ))
                    }
                });
                // Same for the asset pair.
                txn.write_with(
                    ASSET_TABLE,
                    dst_asset,
                    Some(StateRef::new(ASSET_TABLE, src_asset)),
                    move |ctx| {
                        let src = ctx.dependency.expect("transfer dependency").as_long()?;
                        if src >= amount {
                            Ok(Value::Long(ctx.current.as_long()? + amount))
                        } else {
                            Err(StateError::ConsistencyViolation(
                                "insufficient asset balance".into(),
                            ))
                        }
                    },
                );
                txn.read_modify(ASSET_TABLE, src_asset, None, move |ctx| {
                    let balance = ctx.current.as_long()?;
                    if balance >= amount {
                        Ok(Value::Long(balance - amount))
                    } else {
                        Err(StateError::ConsistencyViolation(
                            "insufficient asset balance".into(),
                        ))
                    }
                });
            }
        }
    }

    fn post_process(&self, _e: &SlEvent, blotter: &EventBlotter) -> PostAction {
        // The updating result (success / fail) is passed to the sink.
        if blotter.is_aborted() {
            PostAction::Silent
        } else {
            PostAction::Emit
        }
    }
}

/// Build the account and asset tables, split over `spec.shards` physical
/// shards.  Routing is key-only, so the account and asset records of one
/// customer id always land on the same shard.
pub fn build_store(spec: &WorkloadSpec) -> Arc<StateStore> {
    let accounts = TableBuilder::new("accounts")
        .extend((0..spec.keys).map(|k| (k, Value::Long(INITIAL_BALANCE))))
        .build_sharded(spec.shards)
        .expect("SL account table");
    let assets = TableBuilder::new("assets")
        .extend((0..spec.keys).map(|k| (k, Value::Long(INITIAL_BALANCE))))
        .build_sharded(spec.shards)
        .expect("SL asset table");
    StateStore::with_shards(vec![accounts, assets], spec.shards).expect("SL store")
}

/// Generate the SL input stream (50 % deposits, 50 % transfers).
pub fn generate(spec: &WorkloadSpec) -> Vec<SlEvent> {
    let mut rng = Rng::new(spec.seed ^ 0x5151);
    let zipf = Zipf::new(spec.keys as usize, spec.skew);
    let mut events = Vec::with_capacity(spec.events);
    for _ in 0..spec.events {
        let amount = 1 + rng.next_below(100) as i64;
        if rng.chance(0.5) {
            events.push(SlEvent::Deposit {
                account: zipf.sample(&mut rng),
                asset: zipf.sample(&mut rng),
                amount,
            });
        } else {
            let accounts = zipf.sample_distinct(&mut rng, 2);
            let assets = zipf.sample_distinct(&mut rng, 2);
            events.push(SlEvent::Transfer {
                src_account: accounts[0],
                dst_account: accounts[1],
                src_asset: assets[0],
                dst_asset: assets[1],
                amount,
            });
        }
    }
    events
}

/// Total money in the system (accounts + assets); transfers must conserve it,
/// deposits increase it by exactly the deposited amounts.  Used by the
/// consistency tests.
pub fn total_balance(store: &StateStore) -> i64 {
    let mut total = 0i64;
    for table in ["accounts", "assets"] {
        let t = store.table_by_name(table).unwrap();
        for (_, record) in t.iter() {
            total += record.read_committed().as_long().unwrap_or(0);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use tstream_core::{Engine, EngineConfig, Scheme};

    #[test]
    fn generator_mixes_deposits_and_transfers() {
        let spec = WorkloadSpec::default().events(2_000);
        let events = generate(&spec);
        let deposits = events
            .iter()
            .filter(|e| matches!(e, SlEvent::Deposit { .. }))
            .count();
        let ratio = deposits as f64 / events.len() as f64;
        assert!((ratio - 0.5).abs() < 0.05);
        for e in &events {
            if let SlEvent::Transfer {
                src_account,
                dst_account,
                src_asset,
                dst_asset,
                amount,
            } = e
            {
                assert_ne!(src_account, dst_account);
                assert_ne!(src_asset, dst_asset);
                assert!(*amount > 0);
            }
        }
    }

    #[test]
    fn money_is_conserved_under_every_scheme() {
        let spec = WorkloadSpec::default().events(800);
        let events = generate(&spec);
        // Expected total: initial + sum of committed deposit amounts; since
        // balances start high no transfer aborts, so every deposit commits.
        let deposit_total: i64 = events
            .iter()
            .map(|e| match e {
                SlEvent::Deposit { amount, .. } => 2 * amount,
                SlEvent::Transfer { .. } => 0,
            })
            .sum();
        let initial = 2 * spec.keys as i64 * INITIAL_BALANCE;

        let app = Arc::new(StreamingLedger);
        for scheme in [
            Scheme::TStream,
            Scheme::Eager(Arc::new(LockScheme::new())),
            Scheme::Eager(Arc::new(MvlkScheme::new())),
            Scheme::Eager(Arc::new(PatScheme::new(4))),
        ] {
            let store = build_store(&spec);
            let engine = Engine::new(EngineConfig::with_executors(4).punctuation(100));
            let report = engine.run(&app, &store, events.clone(), &scheme);
            assert_eq!(
                report.rejected, 0,
                "{}: no transfer should abort",
                report.scheme
            );
            assert_eq!(
                total_balance(&store),
                initial + deposit_total,
                "{}: money must be conserved",
                report.scheme
            );
        }
    }

    #[test]
    fn insufficient_balance_rejects_the_transfer() {
        // A store with tiny balances forces rejections.
        let spec = WorkloadSpec::default().events(0);
        let accounts = TableBuilder::new("accounts")
            .extend((0..4u64).map(|k| (k, Value::Long(1))))
            .build()
            .unwrap();
        let assets = TableBuilder::new("assets")
            .extend((0..4u64).map(|k| (k, Value::Long(1))))
            .build()
            .unwrap();
        let store = StateStore::new(vec![accounts, assets]).unwrap();
        let _ = spec;

        let events = vec![SlEvent::Transfer {
            src_account: 0,
            dst_account: 1,
            src_asset: 0,
            dst_asset: 1,
            amount: 100,
        }];
        let app = Arc::new(StreamingLedger);
        let engine = Engine::new(EngineConfig::with_executors(1).punctuation(10));
        let report = engine.run(&app, &store, events, &Scheme::TStream);
        assert_eq!(report.rejected, 1);
        // Nothing moved.
        assert_eq!(total_balance(&store), 8);
    }

    #[test]
    fn deposits_update_both_tables() {
        let store = {
            let accounts = TableBuilder::new("accounts")
                .insert(0, Value::Long(0))
                .build()
                .unwrap();
            let assets = TableBuilder::new("assets")
                .insert(0, Value::Long(0))
                .build()
                .unwrap();
            StateStore::new(vec![accounts, assets]).unwrap()
        };
        let app = Arc::new(StreamingLedger);
        let engine = Engine::new(EngineConfig::with_executors(1).punctuation(4));
        let events = vec![
            SlEvent::Deposit {
                account: 0,
                asset: 0,
                amount: 7,
            };
            3
        ];
        let report = engine.run(&app, &store, events, &Scheme::TStream);
        assert_eq!(report.committed, 3);
        assert_eq!(total_balance(&store), 42);
    }
}
