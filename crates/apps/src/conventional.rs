//! The *conventional* Toll Processing implementation (Figure 2(a)):
//! key-based stream partitioning **without** concurrent state access.
//!
//! Section II-A uses this implementation to motivate concurrent state access:
//! every operator keeps its state exclusive, the input stream is key-based
//! partitioned so no two executors ever touch the same state, and the
//! downstream `Sort & Toll Notification` operator has to *buffer and sort*
//! tuples because it can only compute a toll after it has received the
//! up-to-date road congestion status from `Road Speed` and `Vehicle Cnt`.
//! The paper calls out two problems with this design, both of which this
//! module measures:
//!
//! 1. **Tedious and error-prone ordering** — reports that arrive after the
//!    buffering limit has forced an emission are evaluated against stale
//!    congestion state ([`ConventionalReport::forced_emissions`]);
//! 2. **State duplication** — the congestion status maintained by RS and VC
//!    has to be repeatedly forwarded to TN
//!    ([`ConventionalReport::forwarded_state_bytes`]).
//!
//! The pipeline is a real multi-threaded implementation (one thread per
//! executor, connected by channels), not a model: the `fig02_conventional`
//! harness runs it against the concurrent-state-access implementation
//! (`tp` + TStream) on the same input stream.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender};

use crate::tp::{TpEvent, TpKind};

/// Configuration of the conventional (Figure 2(a)) pipeline.
#[derive(Debug, Clone, Copy)]
pub struct ConventionalConfig {
    /// Executors per operator (RS/VC stage and TN stage each get this many).
    pub executors_per_operator: usize,
    /// Maximum number of traffic reports a TN executor buffers per segment
    /// while waiting for fresher congestion updates; beyond this the oldest
    /// report is emitted against whatever state is known ("tuples arrive too
    /// late, out of buffering limits").
    pub buffer_limit: usize,
    /// Channel capacity between pipeline stages.
    pub channel_capacity: usize,
}

impl Default for ConventionalConfig {
    fn default() -> Self {
        ConventionalConfig {
            executors_per_operator: 2,
            buffer_limit: 64,
            channel_capacity: 1024,
        }
    }
}

/// Message flowing from the RS/VC stage to the TN stage: the refreshed
/// congestion status of one road segment (the "duplicated application state"
/// of Section II-A).
#[derive(Debug, Clone)]
struct CongestionUpdate {
    ts: u64,
    segment: u64,
    /// Updated average speed, if this update came from Road Speed.
    speed: Option<f64>,
    /// Updated unique-vehicle count, if this update came from Vehicle Cnt.
    vehicles: Option<usize>,
}

impl CongestionUpdate {
    /// Approximate wire size, used to account forwarded state volume.
    fn wire_bytes(&self) -> u64 {
        // ts + segment + one of (f64 speed | usize count) + tag.
        8 + 8 + 8 + 1
    }
}

/// A traffic report waiting inside a TN executor for fresher congestion state.
#[derive(Debug, Clone, Copy)]
struct PendingReport {
    ts: u64,
    segment: u64,
}

/// What a TN executor sends to the sink for every toll it computed.
#[derive(Debug, Clone, Copy)]
struct TollRecord {
    /// Whether the toll was computed before fresher congestion state had
    /// arrived (forced emission / late tuple).
    forced: bool,
}

/// Result of one conventional-pipeline run.
#[derive(Debug, Clone)]
pub struct ConventionalReport {
    /// Input events processed.
    pub events: u64,
    /// Tolls emitted (one per Toll Notification report).
    pub tolls_emitted: u64,
    /// Tolls that had to be emitted against stale congestion state because
    /// the buffering limit (or end of stream) was reached first.
    pub forced_emissions: u64,
    /// Bytes of congestion state forwarded from RS/VC executors to TN
    /// executors (the duplication overhead of Figure 2(a)).
    pub forwarded_state_bytes: u64,
    /// Congestion-update messages forwarded.
    pub forwarded_updates: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Final per-segment average speed (merged over executors), for
    /// equivalence checks against the concurrent implementation.
    pub final_speeds: BTreeMap<u64, f64>,
    /// Final per-segment unique-vehicle counts (merged over executors).
    pub final_vehicle_counts: BTreeMap<u64, usize>,
}

impl ConventionalReport {
    /// Throughput in thousands of events per second.
    pub fn throughput_keps(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.events as f64 / self.elapsed.as_secs_f64() / 1_000.0
    }

    /// Fraction of tolls that were computed against possibly stale state.
    pub fn forced_emission_ratio(&self) -> f64 {
        if self.tolls_emitted == 0 {
            return 0.0;
        }
        self.forced_emissions as f64 / self.tolls_emitted as f64
    }
}

/// Key-based partitioning: which executor of an operator owns a segment.
pub fn owner_of(segment: u64, executors: usize) -> usize {
    let mut h = segment;
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    (h % executors.max(1) as u64) as usize
}

/// State owned exclusively by one RS/VC executor: the congestion status of
/// its subset of segments.
#[derive(Debug, Default)]
struct UpstreamState {
    speeds: HashMap<u64, f64>,
    vehicles: HashMap<u64, HashSet<u64>>,
}

impl UpstreamState {
    fn apply_road_speed(&mut self, segment: u64, speed: f64) -> f64 {
        let entry = self.speeds.entry(segment).or_insert(60.0);
        *entry = (*entry + speed) / 2.0;
        *entry
    }

    fn apply_vehicle(&mut self, segment: u64, vehicle: u64) -> usize {
        let set = self.vehicles.entry(segment).or_default();
        set.insert(vehicle);
        set.len()
    }
}

/// State owned exclusively by one TN executor: the *copy* of the congestion
/// status it has received so far, plus the buffered reports.
#[derive(Debug, Default)]
struct TnState {
    speeds: HashMap<u64, (u64, f64)>,
    vehicles: HashMap<u64, (u64, usize)>,
    pending: BTreeMap<u64, PendingReport>,
    forced: u64,
    emitted: u64,
}

impl TnState {
    fn update_watermark(&self, segment: u64) -> u64 {
        let s = self.speeds.get(&segment).map(|(ts, _)| *ts).unwrap_or(0);
        let v = self.vehicles.get(&segment).map(|(ts, _)| *ts).unwrap_or(0);
        s.min(v)
    }

    fn toll_for(&self, segment: u64) -> i64 {
        let speed = self.speeds.get(&segment).map(|(_, s)| *s).unwrap_or(60.0);
        let vehicles = self.vehicles.get(&segment).map(|(_, v)| *v).unwrap_or(0) as i64;
        if speed < 40.0 && vehicles > 5 {
            2 * (vehicles - 5) * (vehicles - 5)
        } else {
            0
        }
    }

    fn emit(&mut self, report: PendingReport, forced: bool, sink: &Sender<TollRecord>) {
        std::hint::black_box(self.toll_for(report.segment));
        self.emitted += 1;
        if forced {
            self.forced += 1;
        }
        let _ = sink.send(TollRecord { forced });
    }

    /// Emit every buffered report whose congestion state is now fresh enough,
    /// then force out the oldest reports if the buffer still exceeds `limit`.
    fn drain(&mut self, limit: usize, sink: &Sender<TollRecord>) {
        let ready: Vec<u64> = self
            .pending
            .iter()
            .filter(|(ts, report)| self.update_watermark(report.segment) >= **ts)
            .map(|(ts, _)| *ts)
            .collect();
        for ts in ready {
            if let Some(report) = self.pending.remove(&ts) {
                self.emit(report, false, sink);
            }
        }
        while self.pending.len() > limit {
            let (&ts, _) = self.pending.iter().next().expect("non-empty");
            let report = self.pending.remove(&ts).expect("present");
            self.emit(report, true, sink);
        }
    }

    /// End of stream: everything still buffered goes out as a forced emission.
    fn flush(&mut self, sink: &Sender<TollRecord>) {
        let remaining: Vec<u64> = self.pending.keys().copied().collect();
        for ts in remaining {
            if let Some(report) = self.pending.remove(&ts) {
                self.emit(report, true, sink);
            }
        }
    }
}

/// Messages accepted by a TN executor.
#[derive(Debug, Clone)]
enum TnInput {
    Update(CongestionUpdate),
    Report(PendingReport),
}

/// Run the conventional pipeline over a TP event trace.
pub fn run_conventional(events: &[TpEvent], config: ConventionalConfig) -> ConventionalReport {
    let executors = config.executors_per_operator.max(1);
    let started = Instant::now();

    // Channels: parser -> RS/VC stage, parser/RS/VC -> TN stage, TN -> sink.
    let mut upstream_senders: Vec<Sender<(u64, TpEvent)>> = Vec::with_capacity(executors);
    let mut upstream_receivers: Vec<Receiver<(u64, TpEvent)>> = Vec::with_capacity(executors);
    let mut tn_senders: Vec<Sender<TnInput>> = Vec::with_capacity(executors);
    let mut tn_receivers: Vec<Receiver<TnInput>> = Vec::with_capacity(executors);
    for _ in 0..executors {
        let (tx, rx) = bounded(config.channel_capacity);
        upstream_senders.push(tx);
        upstream_receivers.push(rx);
        let (tx, rx) = bounded(config.channel_capacity);
        tn_senders.push(tx);
        tn_receivers.push(rx);
    }
    let (sink_tx, sink_rx) = bounded::<TollRecord>(config.channel_capacity);

    let mut forwarded_updates = 0u64;
    let mut forwarded_state_bytes = 0u64;
    let mut final_speeds = BTreeMap::new();
    let mut final_vehicle_counts = BTreeMap::new();
    let mut tolls_emitted = 0u64;
    let mut forced_emissions = 0u64;

    std::thread::scope(|scope| {
        // ---- RS/VC stage: one executor per disjoint subset of segments.
        let mut upstream_handles = Vec::with_capacity(executors);
        for rx in upstream_receivers {
            let tn_senders = tn_senders.clone();
            upstream_handles.push(scope.spawn(move || {
                let mut state = UpstreamState::default();
                let mut forwarded = 0u64;
                let mut bytes = 0u64;
                for (ts, event) in rx.iter() {
                    let update = match event.kind {
                        TpKind::RoadSpeed => CongestionUpdate {
                            ts,
                            segment: event.segment,
                            speed: Some(state.apply_road_speed(event.segment, event.speed)),
                            vehicles: None,
                        },
                        TpKind::VehicleCnt => CongestionUpdate {
                            ts,
                            segment: event.segment,
                            speed: None,
                            vehicles: Some(state.apply_vehicle(event.segment, event.vehicle)),
                        },
                        TpKind::TollNotification => continue,
                    };
                    forwarded += 1;
                    bytes += update.wire_bytes();
                    let owner = owner_of(update.segment, tn_senders.len());
                    let _ = tn_senders[owner].send(TnInput::Update(update));
                }
                (state, forwarded, bytes)
            }));
        }

        // ---- TN stage: buffer, sort, and emit tolls.
        let mut tn_handles = Vec::with_capacity(executors);
        for rx in tn_receivers {
            let sink_tx = sink_tx.clone();
            let buffer_limit = config.buffer_limit;
            tn_handles.push(scope.spawn(move || {
                let mut state = TnState::default();
                for input in rx.iter() {
                    match input {
                        TnInput::Update(update) => {
                            if let Some(speed) = update.speed {
                                state.speeds.insert(update.segment, (update.ts, speed));
                            }
                            if let Some(vehicles) = update.vehicles {
                                state.vehicles.insert(update.segment, (update.ts, vehicles));
                            }
                        }
                        TnInput::Report(report) => {
                            state.pending.insert(report.ts, report);
                        }
                    }
                    state.drain(buffer_limit, &sink_tx);
                }
                state.flush(&sink_tx);
                (state.emitted, state.forced)
            }));
        }
        drop(sink_tx);

        // ---- Sink: count tolls.
        let sink_handle = scope.spawn(move || {
            let mut emitted = 0u64;
            let mut forced = 0u64;
            for toll in sink_rx.iter() {
                emitted += 1;
                if toll.forced {
                    forced += 1;
                }
            }
            (emitted, forced)
        });

        // ---- Parser: stamp timestamps and key-partition the stream.
        for (ts, event) in events.iter().enumerate() {
            let ts = ts as u64;
            match event.kind {
                TpKind::RoadSpeed | TpKind::VehicleCnt => {
                    let owner = owner_of(event.segment, executors);
                    let _ = upstream_senders[owner].send((ts, event.clone()));
                }
                TpKind::TollNotification => {
                    let owner = owner_of(event.segment, executors);
                    let _ = tn_senders[owner].send(TnInput::Report(PendingReport {
                        ts,
                        segment: event.segment,
                    }));
                }
            }
        }
        drop(upstream_senders);

        // RS/VC executors drain, then their TN senders close; the TN stage
        // keeps its own clones alive until the upstream stage is done.
        for handle in upstream_handles {
            let (state, forwarded, bytes) = handle.join().expect("upstream executor panicked");
            forwarded_updates += forwarded;
            forwarded_state_bytes += bytes;
            for (segment, speed) in state.speeds {
                final_speeds.insert(segment, speed);
            }
            for (segment, vehicles) in state.vehicles {
                final_vehicle_counts.insert(segment, vehicles.len());
            }
        }
        drop(tn_senders);

        for handle in tn_handles {
            let _ = handle.join().expect("TN executor panicked");
        }
        let (emitted, forced) = sink_handle.join().expect("sink panicked");
        tolls_emitted = emitted;
        forced_emissions = forced;
    });

    ConventionalReport {
        events: events.len() as u64,
        tolls_emitted,
        forced_emissions,
        forwarded_state_bytes,
        forwarded_updates,
        elapsed: started.elapsed(),
        final_speeds,
        final_vehicle_counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tp;
    use crate::workload::WorkloadSpec;
    use std::sync::Arc;
    use tstream_core::{Engine, EngineConfig, Scheme};
    use tstream_state::TableId;

    #[test]
    fn partitioning_is_deterministic_and_total() {
        for executors in [1usize, 2, 3, 8] {
            for segment in 0..tp::SEGMENTS {
                let owner = owner_of(segment, executors);
                assert!(owner < executors);
                assert_eq!(owner, owner_of(segment, executors));
            }
        }
    }

    #[test]
    fn every_toll_report_is_accounted_for() {
        let spec = WorkloadSpec::default().events(3_000).seed(41);
        let events = tp::generate(&spec);
        let reports = events
            .iter()
            .filter(|e| e.kind == TpKind::TollNotification)
            .count() as u64;
        let report = run_conventional(&events, ConventionalConfig::default());
        assert_eq!(report.events, 3_000);
        assert_eq!(report.tolls_emitted, reports);
        assert!(report.forced_emissions <= report.tolls_emitted);
        assert!(report.throughput_keps() > 0.0);
    }

    #[test]
    fn congestion_state_is_forwarded_for_every_update() {
        let spec = WorkloadSpec::default().events(1_500).seed(42);
        let events = tp::generate(&spec);
        let updates = events
            .iter()
            .filter(|e| e.kind != TpKind::TollNotification)
            .count() as u64;
        let report = run_conventional(&events, ConventionalConfig::default());
        assert_eq!(report.forwarded_updates, updates);
        assert_eq!(report.forwarded_state_bytes, updates * 25);
    }

    #[test]
    fn final_congestion_state_matches_the_concurrent_implementation() {
        // The conventional pipeline and the concurrent-state-access
        // implementation apply the same per-segment update functions in the
        // same per-segment order, so their final congestion states must
        // agree.
        let spec = WorkloadSpec::default().events(2_000).seed(43);
        let events = tp::generate(&spec);

        let conventional = run_conventional(&events, ConventionalConfig::default());

        let store = tp::build_store(&spec);
        let app = Arc::new(tp::TollProcessing);
        let _ = Engine::new(EngineConfig::with_executors(4).punctuation(250)).run(
            &app,
            &store,
            events.clone(),
            &Scheme::TStream,
        );

        let speed_table = store.table(TableId(tp::SPEED_TABLE));
        for (segment, record) in speed_table.iter() {
            let shared = record.read_committed().as_double().unwrap();
            match conventional.final_speeds.get(&segment) {
                Some(partitioned) => assert!(
                    (shared - partitioned).abs() < 1e-9,
                    "segment {segment}: shared {shared} vs partitioned {partitioned}"
                ),
                None => assert!(
                    (shared - 60.0).abs() < 1e-9,
                    "untouched segment {segment} must keep its initial speed"
                ),
            }
        }
        let count_table = store.table(TableId(tp::COUNT_TABLE));
        for (segment, record) in count_table.iter() {
            let shared = record.read_committed().as_set().unwrap().len();
            let partitioned = conventional
                .final_vehicle_counts
                .get(&segment)
                .copied()
                .unwrap_or(0);
            assert_eq!(shared, partitioned, "segment {segment}");
        }
    }

    #[test]
    fn tiny_buffer_limit_forces_stale_emissions() {
        let spec = WorkloadSpec::default().events(3_000).seed(44);
        let events = tp::generate(&spec);
        let tight = run_conventional(
            &events,
            ConventionalConfig {
                executors_per_operator: 4,
                buffer_limit: 0,
                channel_capacity: 64,
            },
        );
        let generous = run_conventional(
            &events,
            ConventionalConfig {
                executors_per_operator: 4,
                buffer_limit: 4_096,
                channel_capacity: 64,
            },
        );
        assert!(
            tight.forced_emissions >= generous.forced_emissions,
            "a tighter buffer cannot produce fewer stale emissions \
             (tight {} vs generous {})",
            tight.forced_emissions,
            generous.forced_emissions
        );
        assert_eq!(tight.tolls_emitted, generous.tolls_emitted);
    }

    #[test]
    fn single_executor_pipeline_works() {
        let spec = WorkloadSpec::default().events(600).seed(45);
        let events = tp::generate(&spec);
        let report = run_conventional(
            &events,
            ConventionalConfig {
                executors_per_operator: 1,
                buffer_limit: 16,
                channel_capacity: 8,
            },
        );
        assert_eq!(report.events, 600);
        assert!(report.tolls_emitted > 0);
    }

    #[test]
    fn empty_input_produces_an_empty_report() {
        let report = run_conventional(&[], ConventionalConfig::default());
        assert_eq!(report.events, 0);
        assert_eq!(report.tolls_emitted, 0);
        assert_eq!(report.forced_emissions, 0);
        assert_eq!(report.forced_emission_ratio(), 0.0);
        assert!(report.final_speeds.is_empty());
    }
}
