//! Workload generation: deterministic PRNG, Zipf sampling and the shared
//! workload parameters of Section VI-B.
//!
//! All generators are fully deterministic given a seed so every scheme is
//! measured against byte-identical input streams, and so the
//! schedule-equivalence tests can compare final states across schemes.

/// Deterministic 64-bit PRNG (SplitMix64 seeding a xoshiro256** core).
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a PRNG from a seed.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro state.
        let mut x = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Rng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit value (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift rejection-free mapping (slight modulo bias is
        // irrelevant at workload scale).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, probability: f64) -> bool {
        self.next_f64() < probability
    }

    /// Sample `n` *distinct* values from `[0, bound)`.
    pub fn distinct_below(&mut self, n: usize, bound: u64) -> Vec<u64> {
        assert!(
            n as u64 <= bound,
            "cannot sample {n} distinct values from {bound}"
        );
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let candidate = self.next_below(bound);
            if !out.contains(&candidate) {
                out.push(candidate);
            }
        }
        out
    }
}

/// Zipf-distributed key sampler over `[0, n)`.
///
/// `theta = 0` degenerates to the uniform distribution; larger values skew
/// access towards a hot set.  The paper uses 0.6 for GS/SL/OB and 0.2 for TP
/// (Section VI-B).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` keys with skew `theta`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "zipf needs at least one key");
        let theta = theta.max(0.0);
        let mut weights: Vec<f64> = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        // Guard against floating point drift in the last bucket.
        if let Some(last) = weights.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf: weights }
    }

    /// Number of keys.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Sample one key.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        let u = rng.next_f64();
        self.cdf.partition_point(|&c| c < u) as u64
    }

    /// Sample `count` distinct keys.
    pub fn sample_distinct(&self, rng: &mut Rng, count: usize) -> Vec<u64> {
        assert!(count <= self.n());
        let mut out = Vec::with_capacity(count);
        let mut guard = 0usize;
        while out.len() < count {
            let k = self.sample(rng);
            if !out.contains(&k) {
                out.push(k);
            }
            guard += 1;
            if guard > count * 64 {
                // Extremely skewed distributions may take long to produce
                // distinct keys; fall back to low-key fill.
                for k in 0..self.n() as u64 {
                    if out.len() == count {
                        break;
                    }
                    if !out.contains(&k) {
                        out.push(k);
                    }
                }
            }
        }
        out
    }
}

/// Workload parameters shared by the GS-style microbenchmarks
/// (Section VI-B and the sensitivity studies of Section VI-E).
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Number of input events to generate.
    pub events: usize,
    /// Number of unique keys per table.
    pub keys: u64,
    /// Zipf skew factor of the key access distribution.
    pub skew: f64,
    /// Fraction of events issuing read-only transactions.
    pub read_ratio: f64,
    /// Accesses per transaction ("transaction length").
    pub txn_len: usize,
    /// Fraction of transactions that are multi-partition.
    pub multi_partition_ratio: f64,
    /// Number of distinct partitions a multi-partition transaction touches.
    pub multi_partition_len: usize,
    /// Number of state partitions assumed by the generator (must match the
    /// partition count handed to the PAT scheme for Figure 10).
    pub partitions: u32,
    /// Number of physical shards the application's state store is built
    /// over (`StateStore::with_shards`); should match the engine's
    /// `num_shards` so chain routing and record placement agree.
    pub shards: u32,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        // The paper's defaults (Section VI-B).
        WorkloadSpec {
            events: 10_000,
            keys: 10_000,
            skew: 0.6,
            read_ratio: 0.5,
            txn_len: 10,
            multi_partition_ratio: 0.25,
            multi_partition_len: 4,
            partitions: 4,
            shards: 1,
            seed: 0x7575_2020,
        }
    }
}

impl WorkloadSpec {
    /// Set the number of events.
    pub fn events(mut self, events: usize) -> Self {
        self.events = events;
        self
    }

    /// Set the number of unique keys per table.
    pub fn keys(mut self, keys: u64) -> Self {
        self.keys = keys.max(1);
        self
    }

    /// Set the Zipf skew.
    pub fn skew(mut self, skew: f64) -> Self {
        self.skew = skew;
        self
    }

    /// Set the accesses per transaction ("transaction length").
    pub fn txn_len(mut self, len: usize) -> Self {
        self.txn_len = len.max(1);
        self
    }

    /// Set the read ratio.
    pub fn read_ratio(mut self, ratio: f64) -> Self {
        self.read_ratio = ratio.clamp(0.0, 1.0);
        self
    }

    /// Set the multi-partition transaction ratio and length.
    pub fn multi_partition(mut self, ratio: f64, len: usize) -> Self {
        self.multi_partition_ratio = ratio.clamp(0.0, 1.0);
        self.multi_partition_len = len.max(1);
        self
    }

    /// Set the number of partitions the generator plans against.
    pub fn partitions(mut self, partitions: u32) -> Self {
        self.partitions = partitions.max(1);
        self
    }

    /// Set the number of physical state-store shards.
    pub fn shards(mut self, shards: u32) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Set the PRNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(8);
        assert_ne!(Rng::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn next_below_stays_in_range() {
        let mut rng = Rng::new(1);
        for bound in [1u64, 2, 10, 1000] {
            for _ in 0..1000 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn distinct_sampling_has_no_duplicates() {
        let mut rng = Rng::new(3);
        let sample = rng.distinct_below(10, 16);
        let mut dedup = sample.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
    }

    #[test]
    fn zipf_uniform_when_theta_zero() {
        let zipf = Zipf::new(100, 0.0);
        let mut rng = Rng::new(9);
        let mut counts = vec![0usize; 100];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        let min = *counts.iter().min().unwrap() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        assert!(max / min < 1.6, "uniform draw too skewed: {min} vs {max}");
    }

    #[test]
    fn zipf_skews_towards_low_keys() {
        let zipf = Zipf::new(1000, 0.9);
        let mut rng = Rng::new(11);
        let mut hot = 0usize;
        let draws = 50_000;
        for _ in 0..draws {
            if zipf.sample(&mut rng) < 10 {
                hot += 1;
            }
        }
        // With theta=0.9 the 10 hottest keys of 1000 should attract far more
        // than their uniform 1 % share.
        assert!(hot as f64 / draws as f64 > 0.10);
    }

    #[test]
    fn zipf_distinct_sampling_is_exact() {
        let zipf = Zipf::new(50, 0.99);
        let mut rng = Rng::new(21);
        let sample = zipf.sample_distinct(&mut rng, 50);
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 50);
    }

    #[test]
    fn zipf_samples_are_in_range() {
        let zipf = Zipf::new(10, 0.6);
        let mut rng = Rng::new(5);
        for _ in 0..10_000 {
            assert!(zipf.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn spec_builder_round_trip() {
        let spec = WorkloadSpec::default()
            .events(123)
            .skew(0.2)
            .read_ratio(2.0)
            .multi_partition(0.5, 6)
            .partitions(0)
            .shards(0)
            .seed(42);
        assert_eq!(spec.events, 123);
        assert_eq!(spec.skew, 0.2);
        assert_eq!(spec.read_ratio, 1.0, "ratio is clamped");
        assert_eq!(spec.multi_partition_len, 6);
        assert_eq!(spec.partitions, 1, "partitions clamped to 1");
        assert_eq!(spec.shards, 1, "shards clamped to 1");
        assert_eq!(spec.seed, 42);
        assert_eq!(WorkloadSpec::default().shards(8).shards, 8);
    }

    #[test]
    fn default_spec_matches_paper() {
        let spec = WorkloadSpec::default();
        assert_eq!(spec.keys, 10_000);
        assert_eq!(spec.txn_len, 10);
        assert_eq!(spec.skew, 0.6);
        assert_eq!(spec.multi_partition_len, 4);
        assert!((spec.multi_partition_ratio - 0.25).abs() < 1e-9);
    }
}
