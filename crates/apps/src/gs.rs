//! Grep and Sum (GS), Section VI-A / Figure 5.
//!
//! A synthetic application over one shared table of 10 000 records.  Each
//! input event triggers a transaction of length 10 that either **reads** ten
//! records (the Grep operator then forwards the values to Sum, which adds
//! them up and emits the result) or **writes** ten records.  Records are
//! 32-byte strings, matching the paper's record layout.
//!
//! The generator controls three knobs used by the sensitivity studies:
//! the read/write ratio (Figure 11a), the Zipf skew of the key distribution
//! (Figure 11b) and the ratio/length of multi-partition transactions
//! (Figure 10); the latter requires the generator to plan against the same
//! hash partitioning the PAT scheme uses.

use std::sync::Arc;

use tstream_core::prelude::*;
use tstream_state::partition::Partitioner;
use tstream_state::{StateError, StateStore, TableBuilder};
use tstream_txn::TxnBuilder as Txn;

use crate::workload::{Rng, WorkloadSpec, Zipf};

/// Table index of the shared record table.
pub const RECORD_TABLE: u32 = 0;

/// Width of the stored value strings (the paper's 32-byte values).
pub const VALUE_WIDTH: usize = 32;

/// Encode a number as a fixed-width record string.
pub fn encode_value(v: i64) -> String {
    format!("{v:<VALUE_WIDTH$}")
}

/// Decode a fixed-width record string back into a number.
pub fn decode_value(s: &str) -> i64 {
    s.trim_end().parse().unwrap_or(0)
}

/// One GS input event.
#[derive(Debug, Clone)]
pub struct GsEvent {
    /// Distinct keys the transaction accesses.
    pub keys: Vec<u64>,
    /// `None` for a read transaction, the values to write otherwise.
    pub writes: Option<Vec<i64>>,
}

impl GsEvent {
    /// Whether this event triggers a read-only transaction.
    pub fn is_read(&self) -> bool {
        self.writes.is_none()
    }
}

/// The Grep and Sum application.
#[derive(Debug, Clone)]
pub struct GrepSum {
    /// Whether the Sum operator's summation runs in post-processing;
    /// the read-ratio study of Figure 11a removes it to isolate state-access
    /// efficiency.
    pub with_summation: bool,
}

impl Default for GrepSum {
    fn default() -> Self {
        GrepSum {
            with_summation: true,
        }
    }
}

impl Application for GrepSum {
    type Payload = GsEvent;

    fn name(&self) -> &'static str {
        "GS"
    }

    fn read_write_set(&self, e: &GsEvent) -> ReadWriteSet {
        let mut set = ReadWriteSet::new();
        for &k in &e.keys {
            set.push(
                StateRef::new(RECORD_TABLE, k),
                if e.is_read() {
                    AccessMode::Read
                } else {
                    AccessMode::Write
                },
            );
        }
        set
    }

    fn state_access(&self, e: &GsEvent, txn: &mut Txn) {
        match &e.writes {
            None => {
                for &k in &e.keys {
                    txn.read(RECORD_TABLE, k);
                }
            }
            Some(values) => {
                for (&k, &v) in e.keys.iter().zip(values) {
                    // Encode during decomposition (compute mode): the state
                    // access then installs the prepared record with a
                    // refcount bump instead of formatting under the access
                    // timer.
                    let encoded = if v < 0 {
                        Value::Null
                    } else {
                        Value::Str(encode_value(v).into())
                    };
                    txn.write_with(RECORD_TABLE, k, None, move |_ctx| {
                        if v < 0 {
                            Err(StateError::ConsistencyViolation(
                                "GS records must be non-negative".into(),
                            ))
                        } else {
                            Ok(encoded.clone())
                        }
                    });
                }
            }
        }
    }

    fn post_process(&self, e: &GsEvent, blotter: &EventBlotter) -> PostAction {
        if blotter.is_aborted() {
            return PostAction::Silent;
        }
        if e.is_read() && self.with_summation {
            // The Sum operator: add up the grep'd values.
            let mut sum = 0i64;
            for i in 0..e.keys.len() {
                if let Some(v) = blotter.result(i) {
                    if let Ok(s) = v.as_str() {
                        sum = sum.wrapping_add(decode_value(s));
                    }
                }
            }
            // The sum is emitted as one event to the sink; the engine's sink
            // only records completion, so the value itself is discarded here.
            std::hint::black_box(sum);
        }
        PostAction::Emit
    }
}

/// Build the shared record table, randomly populated (Section VI-B) and
/// split over `spec.shards` physical shards.
pub fn build_store(spec: &WorkloadSpec) -> Arc<StateStore> {
    let mut rng = Rng::new(spec.seed ^ 0x6060_7070);
    let table = TableBuilder::new("records")
        .extend((0..spec.keys).map(|k| {
            (
                k,
                Value::Str(encode_value(rng.next_below(1_000_000) as i64).into()),
            )
        }))
        .build_sharded(spec.shards)
        .expect("GS record table");
    StateStore::with_shards(vec![table], spec.shards).expect("GS store")
}

/// Generate the GS input stream.
///
/// Key selection is partition-aware: single-partition transactions draw all
/// keys from one hash partition, multi-partition transactions draw keys
/// spanning exactly `spec.multi_partition_len` partitions.  Within a
/// partition, keys follow the Zipf skew.
pub fn generate(spec: &WorkloadSpec) -> Vec<GsEvent> {
    let mut rng = Rng::new(spec.seed);
    let partitioner = Partitioner::new(spec.partitions);
    // Precompute the key list of every partition.
    let mut partition_keys: Vec<Vec<u64>> = vec![Vec::new(); spec.partitions as usize];
    for k in 0..spec.keys {
        partition_keys[partitioner.partition_of_in_table(RECORD_TABLE, k) as usize].push(k);
    }
    partition_keys.retain(|p| !p.is_empty());
    let zipfs: Vec<Zipf> = partition_keys
        .iter()
        .map(|keys| Zipf::new(keys.len(), spec.skew))
        .collect();

    let mut events = Vec::with_capacity(spec.events);
    for _ in 0..spec.events {
        let multi = rng.chance(spec.multi_partition_ratio);
        let span = if multi {
            spec.multi_partition_len.min(partition_keys.len())
        } else {
            1
        };
        // Choose the partitions this transaction touches.
        let chosen = rng.distinct_below(span, partition_keys.len() as u64);
        // Draw distinct keys, cycling over the chosen partitions.
        let mut keys = Vec::with_capacity(spec.txn_len);
        let mut guard = 0usize;
        while keys.len() < spec.txn_len {
            let p = chosen[keys.len() % chosen.len()] as usize;
            let idx = zipfs[p].sample(&mut rng) as usize;
            let key = partition_keys[p][idx];
            if !keys.contains(&key) {
                keys.push(key);
            }
            guard += 1;
            if guard > spec.txn_len * 128 {
                // Tiny partitions under heavy skew: fill deterministically.
                for &key in partition_keys[p].iter() {
                    if keys.len() == spec.txn_len {
                        break;
                    }
                    if !keys.contains(&key) {
                        keys.push(key);
                    }
                }
                guard = 0;
            }
        }
        let writes = if rng.chance(spec.read_ratio) {
            None
        } else {
            Some(
                (0..keys.len())
                    .map(|_| rng.next_below(1_000_000) as i64)
                    .collect(),
            )
        };
        events.push(GsEvent { keys, writes });
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use tstream_core::{Engine, EngineConfig, Scheme};

    #[test]
    fn value_encoding_round_trips() {
        for v in [0i64, 1, 999_999, 42] {
            let s = encode_value(v);
            assert_eq!(s.len(), VALUE_WIDTH);
            assert_eq!(decode_value(&s), v);
        }
        assert_eq!(decode_value("garbage"), 0);
    }

    #[test]
    fn generator_respects_read_ratio_and_txn_len() {
        let spec = WorkloadSpec::default().events(2_000).read_ratio(0.3);
        let events = generate(&spec);
        assert_eq!(events.len(), 2_000);
        let reads = events.iter().filter(|e| e.is_read()).count();
        let ratio = reads as f64 / events.len() as f64;
        assert!((ratio - 0.3).abs() < 0.05, "observed read ratio {ratio}");
        for e in &events {
            assert_eq!(e.keys.len(), spec.txn_len);
            let mut dedup = e.keys.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), spec.txn_len, "keys must be distinct");
        }
    }

    #[test]
    fn generator_controls_partition_span() {
        let spec = WorkloadSpec::default()
            .events(1_000)
            .multi_partition(0.0, 6)
            .partitions(8);
        let partitioner = Partitioner::new(spec.partitions);
        for e in generate(&spec) {
            let mut parts: Vec<u32> = e
                .keys
                .iter()
                .map(|&k| partitioner.partition_of_in_table(RECORD_TABLE, k))
                .collect();
            parts.sort_unstable();
            parts.dedup();
            assert_eq!(
                parts.len(),
                1,
                "single-partition txns must stay in one partition"
            );
        }

        let spec = spec.multi_partition(1.0, 6);
        let mut spans = Vec::new();
        for e in generate(&spec) {
            let mut parts: Vec<u32> = e
                .keys
                .iter()
                .map(|&k| partitioner.partition_of_in_table(RECORD_TABLE, k))
                .collect();
            parts.sort_unstable();
            parts.dedup();
            spans.push(parts.len());
        }
        assert!(
            spans.iter().all(|&s| s == 6),
            "multi-partition txns must span 6 partitions"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = WorkloadSpec::default().events(100);
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.keys, y.keys);
            assert_eq!(x.writes, y.writes);
        }
    }

    #[test]
    fn gs_runs_under_tstream_and_a_baseline() {
        let spec = WorkloadSpec::default().events(600);
        let app = Arc::new(GrepSum::default());
        for scheme in [Scheme::TStream, Scheme::Eager(Arc::new(LockScheme::new()))] {
            let store = build_store(&spec);
            let engine = Engine::new(EngineConfig::with_executors(4).punctuation(100));
            let report = engine.run(&app, &store, generate(&spec), &scheme);
            assert_eq!(report.events, 600);
            assert_eq!(report.committed, 600, "no GS transaction should abort");
            assert!(report.throughput_keps() > 0.0);
        }
    }

    #[test]
    fn gs_reads_see_written_string_values() {
        // Single-threaded sanity check of the read path + summation.
        let spec = WorkloadSpec::default().events(50).read_ratio(1.0);
        let store = build_store(&spec);
        let app = Arc::new(GrepSum::default());
        let engine = Engine::new(EngineConfig::with_executors(1).punctuation(25));
        let report = engine.run(&app, &store, generate(&spec), &Scheme::TStream);
        assert_eq!(report.committed, 50);
    }
}
