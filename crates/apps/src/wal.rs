//! Write-ahead-log codecs for the four benchmark payload types.
//!
//! Durable sessions append every input event to the WAL before routing it,
//! and recovery replays the surviving segments, so each application payload
//! needs a stable binary encoding.  The encodings below reuse the
//! little-endian primitives of [`tstream_state::codec`]; framing (length
//! prefixes, seal markers) is owned by `tstream-recovery`, so these only
//! encode their own fields.
//!
//! Layouts (all integers little-endian):
//!
//! ```text
//! GsEvent  := u32:key_count u64:key*  u8:mode       mode 0 = read
//!             [u32:write_count i64:write*]          mode 1 = write
//! SlEvent  := 0x00 u64:account u64:asset i64:amount                  Deposit
//!           | 0x01 u64:src_acct u64:dst_acct u64:src_asset
//!                  u64:dst_asset i64:amount                          Transfer
//! ObEvent  := 0x00 u64:item i64:price i64:qty                        Bid
//!           | 0x01 u32:n (u64:item i64:price)*                      Alter
//!           | 0x02 u32:n (u64:item i64:amount)*                     Top
//! TpEvent  := u8:kind u64:segment u64:vehicle f64:speed
//!             kind 0 = RoadSpeed, 1 = VehicleCnt, 2 = TollNotification
//! ```

use tstream_recovery::WalPayload;
use tstream_state::codec::Reader;
use tstream_state::{StateError, StateResult};

use crate::gs::GsEvent;
use crate::ob::ObEvent;
use crate::sl::SlEvent;
use crate::tp::{TpEvent, TpKind};

/// Upper bound on the per-event list lengths any generator produces; a
/// decoded length beyond it means the frame is garbage, not a giant event.
const SANE_LIST_LEN: usize = 1 << 20;

fn read_len(reader: &mut Reader<'_>, what: &str) -> StateResult<usize> {
    let len = reader.u32()? as usize;
    if len > SANE_LIST_LEN {
        return Err(StateError::Corrupted(format!(
            "unreasonable {what} length {len} in WAL event"
        )));
    }
    Ok(len)
}

impl WalPayload for GsEvent {
    fn encode_wal(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.keys.len() as u32).to_le_bytes());
        for key in &self.keys {
            out.extend_from_slice(&key.to_le_bytes());
        }
        match &self.writes {
            None => out.push(0),
            Some(values) => {
                out.push(1);
                out.extend_from_slice(&(values.len() as u32).to_le_bytes());
                for value in values {
                    out.extend_from_slice(&value.to_le_bytes());
                }
            }
        }
    }

    fn decode_wal(reader: &mut Reader<'_>) -> StateResult<Self> {
        let key_count = read_len(reader, "GS key list")?;
        let mut keys = Vec::with_capacity(key_count);
        for _ in 0..key_count {
            keys.push(reader.u64()?);
        }
        let writes = match reader.u8()? {
            0 => None,
            1 => {
                let write_count = read_len(reader, "GS write list")?;
                let mut values = Vec::with_capacity(write_count);
                for _ in 0..write_count {
                    values.push(reader.i64()?);
                }
                Some(values)
            }
            tag => {
                return Err(StateError::Corrupted(format!(
                    "unknown GS event mode {tag}"
                )))
            }
        };
        Ok(GsEvent { keys, writes })
    }
}

impl WalPayload for SlEvent {
    fn encode_wal(&self, out: &mut Vec<u8>) {
        match self {
            SlEvent::Deposit {
                account,
                asset,
                amount,
            } => {
                out.push(0);
                out.extend_from_slice(&account.to_le_bytes());
                out.extend_from_slice(&asset.to_le_bytes());
                out.extend_from_slice(&amount.to_le_bytes());
            }
            SlEvent::Transfer {
                src_account,
                dst_account,
                src_asset,
                dst_asset,
                amount,
            } => {
                out.push(1);
                out.extend_from_slice(&src_account.to_le_bytes());
                out.extend_from_slice(&dst_account.to_le_bytes());
                out.extend_from_slice(&src_asset.to_le_bytes());
                out.extend_from_slice(&dst_asset.to_le_bytes());
                out.extend_from_slice(&amount.to_le_bytes());
            }
        }
    }

    fn decode_wal(reader: &mut Reader<'_>) -> StateResult<Self> {
        match reader.u8()? {
            0 => Ok(SlEvent::Deposit {
                account: reader.u64()?,
                asset: reader.u64()?,
                amount: reader.i64()?,
            }),
            1 => Ok(SlEvent::Transfer {
                src_account: reader.u64()?,
                dst_account: reader.u64()?,
                src_asset: reader.u64()?,
                dst_asset: reader.u64()?,
                amount: reader.i64()?,
            }),
            tag => Err(StateError::Corrupted(format!("unknown SL event tag {tag}"))),
        }
    }
}

impl WalPayload for ObEvent {
    fn encode_wal(&self, out: &mut Vec<u8>) {
        match self {
            ObEvent::Bid { item, price, qty } => {
                out.push(0);
                out.extend_from_slice(&item.to_le_bytes());
                out.extend_from_slice(&price.to_le_bytes());
                out.extend_from_slice(&qty.to_le_bytes());
            }
            ObEvent::Alter { items, prices } => {
                out.push(1);
                encode_item_list(out, items, prices);
            }
            ObEvent::Top { items, amounts } => {
                out.push(2);
                encode_item_list(out, items, amounts);
            }
        }
    }

    fn decode_wal(reader: &mut Reader<'_>) -> StateResult<Self> {
        match reader.u8()? {
            0 => Ok(ObEvent::Bid {
                item: reader.u64()?,
                price: reader.i64()?,
                qty: reader.i64()?,
            }),
            1 => {
                let (items, prices) = decode_item_list(reader)?;
                Ok(ObEvent::Alter { items, prices })
            }
            2 => {
                let (items, amounts) = decode_item_list(reader)?;
                Ok(ObEvent::Top { items, amounts })
            }
            tag => Err(StateError::Corrupted(format!("unknown OB event tag {tag}"))),
        }
    }
}

/// Encode parallel (item, value) lists.  The generator keeps them the same
/// length; malformed pairs of different lengths (possible through the public
/// structs, rejected by `OnlineBidding::pre_process`) are truncated to the
/// shorter — an encode must never produce an undecodable frame.
fn encode_item_list(out: &mut Vec<u8>, items: &[u64], values: &[i64]) {
    let len = items.len().min(values.len());
    out.extend_from_slice(&(len as u32).to_le_bytes());
    for (item, value) in items.iter().zip(values) {
        out.extend_from_slice(&item.to_le_bytes());
        out.extend_from_slice(&value.to_le_bytes());
    }
}

fn decode_item_list(reader: &mut Reader<'_>) -> StateResult<(Vec<u64>, Vec<i64>)> {
    let len = read_len(reader, "OB item list")?;
    let mut items = Vec::with_capacity(len);
    let mut values = Vec::with_capacity(len);
    for _ in 0..len {
        items.push(reader.u64()?);
        values.push(reader.i64()?);
    }
    Ok((items, values))
}

impl WalPayload for TpEvent {
    fn encode_wal(&self, out: &mut Vec<u8>) {
        out.push(match self.kind {
            TpKind::RoadSpeed => 0,
            TpKind::VehicleCnt => 1,
            TpKind::TollNotification => 2,
        });
        out.extend_from_slice(&self.segment.to_le_bytes());
        out.extend_from_slice(&self.vehicle.to_le_bytes());
        out.extend_from_slice(&self.speed.to_bits().to_le_bytes());
    }

    fn decode_wal(reader: &mut Reader<'_>) -> StateResult<Self> {
        let kind = match reader.u8()? {
            0 => TpKind::RoadSpeed,
            1 => TpKind::VehicleCnt,
            2 => TpKind::TollNotification,
            tag => {
                return Err(StateError::Corrupted(format!(
                    "unknown TP event kind {tag}"
                )))
            }
        };
        Ok(TpEvent {
            kind,
            segment: reader.u64()?,
            vehicle: reader.u64()?,
            speed: reader.f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadSpec;
    use crate::{gs, ob, sl, tp};

    fn round_trip<P: WalPayload>(payload: &P) -> P {
        let mut buf = Vec::new();
        payload.encode_wal(&mut buf);
        let mut reader = Reader::new(&buf);
        let decoded = P::decode_wal(&mut reader).expect("decodable");
        assert_eq!(reader.remaining(), 0, "every byte must be consumed");
        decoded
    }

    #[test]
    fn generated_gs_events_round_trip() {
        let spec = WorkloadSpec::default().events(200).seed(0xA1);
        for event in gs::generate(&spec) {
            let decoded = round_trip(&event);
            assert_eq!(decoded.keys, event.keys);
            assert_eq!(decoded.writes, event.writes);
        }
    }

    #[test]
    fn generated_sl_events_round_trip() {
        let spec = WorkloadSpec::default().events(200).seed(0xA2);
        for event in sl::generate(&spec) {
            let (mut a, mut b) = (Vec::new(), Vec::new());
            event.encode_wal(&mut a);
            round_trip(&event).encode_wal(&mut b);
            assert_eq!(a, b, "re-encoding the decoded event is identical");
        }
    }

    #[test]
    fn generated_ob_events_round_trip() {
        let spec = WorkloadSpec::default().events(200).seed(0xA3);
        for event in ob::generate(&spec) {
            let (mut a, mut b) = (Vec::new(), Vec::new());
            event.encode_wal(&mut a);
            round_trip(&event).encode_wal(&mut b);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn generated_tp_events_round_trip() {
        let spec = WorkloadSpec::default().events(200).seed(0xA4);
        for event in tp::generate(&spec) {
            let decoded = round_trip(&event);
            assert_eq!(decoded.kind, event.kind);
            assert_eq!(decoded.segment, event.segment);
            assert_eq!(decoded.vehicle, event.vehicle);
            assert_eq!(decoded.speed.to_bits(), event.speed.to_bits());
        }
    }

    #[test]
    fn unknown_tags_are_corrupted_not_panics() {
        for bytes in [&[9u8][..], &[0xFF], &[]] {
            let mut reader = Reader::new(bytes);
            assert!(SlEvent::decode_wal(&mut reader).is_err());
            let mut reader = Reader::new(bytes);
            assert!(ObEvent::decode_wal(&mut reader).is_err());
            let mut reader = Reader::new(bytes);
            assert!(TpEvent::decode_wal(&mut reader).is_err());
        }
        let mut garbage = Vec::new();
        garbage.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd key count
        let mut reader = Reader::new(&garbage);
        assert!(matches!(
            GsEvent::decode_wal(&mut reader),
            Err(StateError::Corrupted(_))
        ));
    }
}
