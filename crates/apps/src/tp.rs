//! Toll Processing (TP), Sections II-A and VI-A / Figure 2(b).
//!
//! The simplified toll-processing query from the Linear Road benchmark, in
//! its concurrent-state-access formulation: road congestion state (average
//! speed and the set of unique vehicles per road segment) is kept in two
//! shared tables that all executors of the fused operator access directly.
//!
//! Each traffic report fans out into three logical operators which the fused
//! operator dispatches with a switch-case (Section V):
//!
//! * **Road Speed (RS)** — update the running average speed of the segment
//!   (transaction length 1);
//! * **Vehicle Cnt (VC)** — add the vehicle to the segment's unique-vehicle
//!   set (length 1);
//! * **Toll Notification (TN)** — read both tables for the segment and
//!   compute the toll in post-processing (length 2, always two "partitions").
//!
//! The paper's TP dataset accesses 100 distinct road segments with a Zipf
//! skew of 0.2; we generate a synthetic trace with the same properties (see
//! DESIGN.md, substitutions).

use std::sync::Arc;

use tstream_core::prelude::*;
use tstream_state::{StateError, StateStore, TableBuilder};
use tstream_txn::TxnBuilder as Txn;

use crate::workload::{Rng, WorkloadSpec, Zipf};

/// Table index of the average road speed table.
pub const SPEED_TABLE: u32 = 0;
/// Table index of the unique-vehicle-count table.
pub const COUNT_TABLE: u32 = 1;

/// Number of road segments in the paper's dataset.
pub const SEGMENTS: u64 = 100;

/// Default Zipf skew of the TP trace (the paper uses 0.2).
pub const TP_SKEW: f64 = 0.2;

/// Which operator of the fused TP operator an event targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TpKind {
    /// Road Speed update.
    RoadSpeed,
    /// Vehicle count update.
    VehicleCnt,
    /// Toll notification (reads both tables).
    TollNotification,
}

/// One parsed traffic report.
#[derive(Debug, Clone)]
pub struct TpEvent {
    /// Operator the fused operator dispatches this event to.
    pub kind: TpKind,
    /// Road segment the vehicle reports from.
    pub segment: u64,
    /// Vehicle identifier.
    pub vehicle: u64,
    /// Reported speed.
    pub speed: f64,
}

/// The Toll Processing application (fused RS + VC + TN operator).
#[derive(Debug, Clone, Default)]
pub struct TollProcessing;

impl Application for TollProcessing {
    type Payload = TpEvent;

    fn name(&self) -> &'static str {
        "TP"
    }

    fn read_write_set(&self, e: &TpEvent) -> ReadWriteSet {
        let mut set = ReadWriteSet::new();
        match e.kind {
            TpKind::RoadSpeed => set.push(StateRef::new(SPEED_TABLE, e.segment), AccessMode::Write),
            TpKind::VehicleCnt => {
                set.push(StateRef::new(COUNT_TABLE, e.segment), AccessMode::Write)
            }
            TpKind::TollNotification => {
                set.push(StateRef::new(SPEED_TABLE, e.segment), AccessMode::Read);
                set.push(StateRef::new(COUNT_TABLE, e.segment), AccessMode::Read);
            }
        }
        set
    }

    fn state_access(&self, e: &TpEvent, txn: &mut Txn) {
        match e.kind {
            TpKind::RoadSpeed => {
                // Algorithm 2: running average of the segment speed.
                let speed = e.speed;
                txn.read_modify(SPEED_TABLE, e.segment, None, move |ctx| {
                    let avg = (ctx.current.as_double()? + speed) / 2.0;
                    if avg < 0.0 {
                        Err(StateError::ConsistencyViolation(
                            "road speed cannot be negative".into(),
                        ))
                    } else {
                        Ok(Value::Double(avg))
                    }
                });
            }
            TpKind::VehicleCnt => {
                // Algorithm 3: insert the vehicle id into the segment's set;
                // the result is the number of unique vehicles.
                let vehicle = e.vehicle;
                txn.read_modify(COUNT_TABLE, e.segment, None, move |ctx| {
                    let mut set = ctx.current.as_set()?.clone();
                    set.insert(vehicle);
                    Ok(Value::Set(set))
                });
            }
            TpKind::TollNotification => {
                // Algorithm 4: read both congestion tables.
                txn.read(SPEED_TABLE, e.segment);
                txn.read(COUNT_TABLE, e.segment);
            }
        }
    }

    fn post_process(&self, e: &TpEvent, blotter: &EventBlotter) -> PostAction {
        if blotter.is_aborted() {
            return PostAction::Silent;
        }
        if e.kind == TpKind::TollNotification {
            // Toll formula (in the spirit of Linear Road): charge when the
            // segment is congested (slow traffic, many unique vehicles).
            let speed = blotter.result_double(0);
            let vehicles = blotter
                .result(1)
                .and_then(|v| v.as_set().ok().map(|s| s.len() as i64))
                .unwrap_or(0);
            let toll = if speed < 40.0 && vehicles > 5 {
                2 * (vehicles - 5) * (vehicles - 5)
            } else {
                0
            };
            std::hint::black_box(toll);
        }
        PostAction::Emit
    }
}

/// Build the speed and vehicle-count tables for `segments` road segments,
/// split over `shards` physical shards.  Key-only routing keeps a segment's
/// speed and vehicle-count records on the same shard, so a traffic report's
/// two-table transaction stays shard-local.
pub fn build_store_with_segments_sharded(segments: u64, shards: u32) -> Arc<StateStore> {
    let speed = TableBuilder::new("road_speed")
        .extend((0..segments).map(|k| (k, Value::Double(60.0))))
        .build_sharded(shards)
        .expect("TP speed table");
    let count = TableBuilder::new("vehicle_cnt")
        .extend((0..segments).map(|k| (k, Value::Set(Default::default()))))
        .build_sharded(shards)
        .expect("TP count table");
    StateStore::with_shards(vec![speed, count], shards).expect("TP store")
}

/// Build the speed and vehicle-count tables for `segments` road segments.
pub fn build_store_with_segments(segments: u64) -> Arc<StateStore> {
    build_store_with_segments_sharded(segments, 1)
}

/// Build the default 100-segment store over `spec.shards` shards.
pub fn build_store(spec: &WorkloadSpec) -> Arc<StateStore> {
    build_store_with_segments_sharded(SEGMENTS, spec.shards)
}

/// Generate the synthetic TP trace: each traffic report produces one RS, one
/// VC and one TN event (so the three operator types are evenly mixed), over
/// 100 segments with Zipf(0.2) skew.
pub fn generate(spec: &WorkloadSpec) -> Vec<TpEvent> {
    let mut rng = Rng::new(spec.seed ^ 0x7979);
    let zipf = Zipf::new(
        SEGMENTS as usize,
        if spec.skew == 0.6 { TP_SKEW } else { spec.skew },
    );
    let mut events = Vec::with_capacity(spec.events);
    let mut report = 0u64;
    while events.len() < spec.events {
        let segment = zipf.sample(&mut rng);
        let vehicle = rng.next_below(100_000);
        let speed = 20.0 + rng.next_f64() * 80.0;
        for kind in [
            TpKind::RoadSpeed,
            TpKind::VehicleCnt,
            TpKind::TollNotification,
        ] {
            if events.len() == spec.events {
                break;
            }
            events.push(TpEvent {
                kind,
                segment,
                vehicle,
                speed,
            });
        }
        report += 1;
    }
    let _ = report;
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use tstream_core::{Engine, EngineConfig, Scheme};
    use tstream_state::TableId;

    #[test]
    fn generator_covers_all_three_operators() {
        let spec = WorkloadSpec::default().events(3_000);
        let events = generate(&spec);
        assert_eq!(events.len(), 3_000);
        let rs = events
            .iter()
            .filter(|e| e.kind == TpKind::RoadSpeed)
            .count();
        let vc = events
            .iter()
            .filter(|e| e.kind == TpKind::VehicleCnt)
            .count();
        let tn = events
            .iter()
            .filter(|e| e.kind == TpKind::TollNotification)
            .count();
        assert_eq!(rs, 1_000);
        assert_eq!(vc, 1_000);
        assert_eq!(tn, 1_000);
        assert!(events.iter().all(|e| e.segment < SEGMENTS));
    }

    #[test]
    fn speeds_stay_positive_and_sets_accumulate() {
        let spec = WorkloadSpec::default().events(900);
        let store = build_store(&spec);
        let app = Arc::new(TollProcessing);
        let engine = Engine::new(EngineConfig::with_executors(4).punctuation(150));
        let report = engine.run(&app, &store, generate(&spec), &Scheme::TStream);
        assert_eq!(report.rejected, 0, "speeds are always positive");

        let speed_table = store.table(TableId(SPEED_TABLE));
        for (_, record) in speed_table.iter() {
            let v = record.read_committed().as_double().unwrap();
            assert!(v > 0.0 && v <= 100.0, "average speed {v} out of range");
        }
        let count_table = store.table(TableId(COUNT_TABLE));
        let total_vehicles: usize = count_table
            .iter()
            .map(|(_, r)| r.read_committed().as_set().unwrap().len())
            .sum();
        assert!(total_vehicles > 0);
    }

    #[test]
    fn all_schemes_agree_on_final_congestion_state() {
        let spec = WorkloadSpec::default().events(600);
        let events = generate(&spec);
        let app = Arc::new(TollProcessing);

        let reference_store = build_store(&spec);
        let _ = Engine::new(EngineConfig::with_executors(1).punctuation(100)).run(
            &app,
            &reference_store,
            events.clone(),
            &Scheme::Eager(Arc::new(LockScheme::new())),
        );
        let expected = reference_store.snapshot();

        for scheme in [
            Scheme::TStream,
            Scheme::Eager(Arc::new(MvlkScheme::new())),
            Scheme::Eager(Arc::new(PatScheme::new(4))),
        ] {
            let store = build_store(&spec);
            let engine = Engine::new(EngineConfig::with_executors(6).punctuation(100));
            let report = engine.run(&app, &store, events.clone(), &scheme);
            assert_eq!(store.snapshot(), expected, "{} diverged", report.scheme);
        }
    }

    #[test]
    fn toll_notification_reads_both_tables() {
        let app = TollProcessing;
        let e = TpEvent {
            kind: TpKind::TollNotification,
            segment: 7,
            vehicle: 1,
            speed: 50.0,
        };
        let set = app.read_write_set(&e);
        assert_eq!(set.read_set().len(), 2);
        assert!(set.write_set().is_empty());
    }
}
