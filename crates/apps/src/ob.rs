//! Online Bidding (OB), Section VI-A / Figure 7.
//!
//! A simplified online bidding system over one shared table of 10 000 items
//! (each holding a price and a quantity).  Three request types, mixed 6:1:1:
//!
//! * **bid** (transaction length 1) — reduce the quantity of one item if the
//!   bid price is at least the asking price and enough quantity is left;
//!   otherwise the request is rejected;
//! * **alter** (length 20) — overwrite the prices of 20 items;
//! * **top** (length 20) — increase the quantities of 20 items.

use std::sync::Arc;

use tstream_core::prelude::*;
use tstream_state::{StateError, StateStore, TableBuilder};
use tstream_txn::TxnBuilder as Txn;

use crate::workload::{Rng, WorkloadSpec, Zipf};

/// Table index of the bidding item table.
pub const ITEM_TABLE: u32 = 0;

/// Initial asking price of every item.
pub const INITIAL_PRICE: i64 = 100;
/// Initial quantity of every item.
pub const INITIAL_QTY: i64 = 1_000_000;

/// Transaction length of alter and top requests (the paper uses 20).
pub const LIST_LEN: usize = 20;

/// One OB request.
#[derive(Debug, Clone)]
pub enum ObEvent {
    /// Bid for `qty` units of `item` at `price` per unit.
    Bid {
        /// Item key.
        item: u64,
        /// Offered price.
        price: i64,
        /// Requested quantity.
        qty: i64,
    },
    /// Modify the prices of a list of items.
    Alter {
        /// Item keys.
        items: Vec<u64>,
        /// New prices (same length as `items`).
        prices: Vec<i64>,
    },
    /// Increase the quantities of a list of items.
    Top {
        /// Item keys.
        items: Vec<u64>,
        /// Added quantities (same length as `items`).
        amounts: Vec<i64>,
    },
}

/// The Online Bidding application (the fused Auth + Trade operator).
#[derive(Debug, Clone, Default)]
pub struct OnlineBidding;

impl Application for OnlineBidding {
    type Payload = ObEvent;

    fn name(&self) -> &'static str {
        "OB"
    }

    fn pre_process(&self, e: &ObEvent) -> bool {
        // The Auth operator: reject malformed requests outright.
        match e {
            ObEvent::Bid { qty, price, .. } => *qty > 0 && *price > 0,
            ObEvent::Alter { items, prices } => items.len() == prices.len(),
            ObEvent::Top { items, amounts } => items.len() == amounts.len(),
        }
    }

    fn read_write_set(&self, e: &ObEvent) -> ReadWriteSet {
        let mut set = ReadWriteSet::new();
        match e {
            ObEvent::Bid { item, .. } => {
                set.push(StateRef::new(ITEM_TABLE, *item), AccessMode::Write);
            }
            ObEvent::Alter { items, .. } | ObEvent::Top { items, .. } => {
                for &i in items {
                    set.push(StateRef::new(ITEM_TABLE, i), AccessMode::Write);
                }
            }
        }
        set
    }

    fn state_access(&self, e: &ObEvent, txn: &mut Txn) {
        match e {
            ObEvent::Bid { item, price, qty } => {
                let (price, qty) = (*price, *qty);
                txn.read_modify(ITEM_TABLE, *item, None, move |ctx| {
                    let (ask, available) = ctx.current.as_pair()?;
                    if price < ask {
                        return Err(StateError::ConsistencyViolation(
                            "bid price below asking price".into(),
                        ));
                    }
                    if available < qty {
                        return Err(StateError::ConsistencyViolation(
                            "insufficient quantity".into(),
                        ));
                    }
                    Ok(Value::Pair(ask, available - qty))
                });
            }
            ObEvent::Alter { items, prices } => {
                for (&item, &price) in items.iter().zip(prices) {
                    txn.read_modify(ITEM_TABLE, item, None, move |ctx| {
                        let (_, qty) = ctx.current.as_pair()?;
                        if price <= 0 {
                            return Err(StateError::ConsistencyViolation(
                                "price must be positive".into(),
                            ));
                        }
                        Ok(Value::Pair(price, qty))
                    });
                }
            }
            ObEvent::Top { items, amounts } => {
                for (&item, &amount) in items.iter().zip(amounts) {
                    txn.read_modify(ITEM_TABLE, item, None, move |ctx| {
                        let (price, qty) = ctx.current.as_pair()?;
                        Ok(Value::Pair(price, qty + amount))
                    });
                }
            }
        }
    }

    fn post_process(&self, _e: &ObEvent, blotter: &EventBlotter) -> PostAction {
        if blotter.is_aborted() {
            PostAction::Silent
        } else {
            PostAction::Emit
        }
    }
}

/// Build the bidding item table, split over `spec.shards` physical shards.
pub fn build_store(spec: &WorkloadSpec) -> Arc<StateStore> {
    let items = TableBuilder::new("items")
        .extend((0..spec.keys).map(|k| (k, Value::Pair(INITIAL_PRICE, INITIAL_QTY))))
        .build_sharded(spec.shards)
        .expect("OB item table");
    StateStore::with_shards(vec![items], spec.shards).expect("OB store")
}

/// Generate the OB input stream (bid : alter : top = 6 : 1 : 1).
pub fn generate(spec: &WorkloadSpec) -> Vec<ObEvent> {
    let mut rng = Rng::new(spec.seed ^ 0x0b0b);
    let zipf = Zipf::new(spec.keys as usize, spec.skew);
    let mut events = Vec::with_capacity(spec.events);
    for _ in 0..spec.events {
        let roll = rng.next_below(8);
        if roll < 6 {
            events.push(ObEvent::Bid {
                item: zipf.sample(&mut rng),
                // Mostly at or above the asking price so most bids succeed,
                // with a small fraction of genuine rejections.
                price: INITIAL_PRICE - 2 + rng.next_below(8) as i64,
                qty: 1 + rng.next_below(5) as i64,
            });
        } else if roll == 6 {
            let items = zipf.sample_distinct(&mut rng, LIST_LEN.min(spec.keys as usize));
            let prices = (0..items.len())
                .map(|_| 50 + rng.next_below(100) as i64)
                .collect();
            events.push(ObEvent::Alter { items, prices });
        } else {
            let items = zipf.sample_distinct(&mut rng, LIST_LEN.min(spec.keys as usize));
            let amounts = (0..items.len())
                .map(|_| 1 + rng.next_below(10) as i64)
                .collect();
            events.push(ObEvent::Top { items, amounts });
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use tstream_core::{Engine, EngineConfig, Scheme};

    #[test]
    fn generator_respects_request_mix_and_lengths() {
        let spec = WorkloadSpec::default().events(4_000);
        let events = generate(&spec);
        let bids = events
            .iter()
            .filter(|e| matches!(e, ObEvent::Bid { .. }))
            .count();
        let ratio = bids as f64 / events.len() as f64;
        assert!((ratio - 0.75).abs() < 0.05, "bid ratio {ratio}");
        for e in &events {
            match e {
                ObEvent::Alter { items, prices } => {
                    assert_eq!(items.len(), LIST_LEN);
                    assert_eq!(prices.len(), LIST_LEN);
                }
                ObEvent::Top { items, amounts } => {
                    assert_eq!(items.len(), LIST_LEN);
                    assert_eq!(amounts.len(), LIST_LEN);
                }
                ObEvent::Bid { qty, .. } => assert!(*qty > 0),
            }
        }
    }

    #[test]
    fn malformed_requests_are_filtered_by_auth() {
        let app = OnlineBidding;
        assert!(!app.pre_process(&ObEvent::Bid {
            item: 0,
            price: 0,
            qty: 1
        }));
        assert!(!app.pre_process(&ObEvent::Alter {
            items: vec![1, 2],
            prices: vec![5]
        }));
        assert!(app.pre_process(&ObEvent::Top {
            items: vec![1],
            amounts: vec![1]
        }));
    }

    #[test]
    fn low_bids_are_rejected_and_do_not_change_state() {
        let spec = WorkloadSpec::default();
        let store = build_store(&spec);
        let app = Arc::new(OnlineBidding);
        let engine = Engine::new(EngineConfig::with_executors(1).punctuation(10));
        let events = vec![ObEvent::Bid {
            item: 3,
            price: 1, // far below the asking price of 100
            qty: 1,
        }];
        let report = engine.run(&app, &store, events, &Scheme::TStream);
        assert_eq!(report.rejected, 1);
        assert_eq!(
            store
                .record(tstream_state::TableId(ITEM_TABLE), 3)
                .unwrap()
                .read_committed(),
            Value::Pair(INITIAL_PRICE, INITIAL_QTY)
        );
    }

    #[test]
    fn quantities_balance_across_schemes() {
        // Total quantity = initial + tops - successful bids; all schemes must
        // agree on the final table contents for the same input.
        let spec = WorkloadSpec::default().events(600);
        let events = generate(&spec);
        let app = Arc::new(OnlineBidding);

        let reference_store = build_store(&spec);
        let reference = Engine::new(EngineConfig::with_executors(1).punctuation(100));
        let _ = reference.run(&app, &reference_store, events.clone(), &Scheme::TStream);
        let expected = reference_store.snapshot();

        for scheme in [
            Scheme::TStream,
            Scheme::Eager(Arc::new(LockScheme::new())),
            Scheme::Eager(Arc::new(PatScheme::new(8))),
        ] {
            let store = build_store(&spec);
            let engine = Engine::new(EngineConfig::with_executors(4).punctuation(100));
            let report = engine.run(&app, &store, events.clone(), &scheme);
            assert_eq!(store.snapshot(), expected, "{} diverged", report.scheme);
        }
    }
}
