//! Uniform benchmark runner.
//!
//! The figure harnesses in `tstream-bench` sweep (application × scheme ×
//! cores × workload knobs).  Applications have different payload types, so
//! this module provides the small amount of dynamic dispatch needed to drive
//! any combination through one function, plus table-formatting helpers shared
//! by every harness.

use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use tstream_core::{Engine, EngineConfig, RunReport, Scheme};
use tstream_recovery::WalPayload;
use tstream_state::{StateResult, StateStore, StoreSnapshot};
use tstream_txn::Application;
use tstream_txn::{
    lock_based::LockScheme,
    mvlk::MvlkScheme,
    nolock::NoLockScheme,
    occ::OccScheme,
    pat::PatScheme,
    to::{ToPolicy, ToScheme},
};

use crate::workload::WorkloadSpec;
use crate::{gs, ob, sl, tp};

/// The five schemes compared throughout the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeKind {
    /// Upper bound: all synchronisation removed.
    NoLock,
    /// S2PL with a centralized lockAhead counter.
    Lock,
    /// Multi-version locking with per-state `lwm` counters.
    Mvlk,
    /// Partition-based ordering (S-Store style).
    Pat,
    /// TStream (dual-mode scheduling + dynamic restructuring).
    TStream,
    /// Basic timestamp ordering (order-unaware; Section II-C discussion).
    /// Rejects transactions that fail the freshness check.
    To,
    /// Backward-validation OCC (order-unaware; Section II-C discussion).
    Occ,
}

impl SchemeKind {
    /// All schemes in the order of the paper's legends.
    pub const ALL: [SchemeKind; 5] = [
        SchemeKind::NoLock,
        SchemeKind::Lock,
        SchemeKind::Mvlk,
        SchemeKind::Pat,
        SchemeKind::TStream,
    ];

    /// Consistency-preserving schemes only (Figure 13 excludes No-Lock from
    /// some comparisons; keeping it separate is convenient for harnesses).
    pub const CONSISTENT: [SchemeKind; 4] = [
        SchemeKind::Lock,
        SchemeKind::Mvlk,
        SchemeKind::Pat,
        SchemeKind::TStream,
    ];

    /// The classic order-unaware concurrency controls discussed (and
    /// dismissed) in Section II-C; compared by the `sec2c_order_unaware`
    /// harness, never by the paper's main figures.
    pub const ORDER_UNAWARE: [SchemeKind; 2] = [SchemeKind::To, SchemeKind::Occ];

    /// Display label matching the paper.
    pub fn label(&self) -> &'static str {
        match self {
            SchemeKind::NoLock => "No-Lock",
            SchemeKind::Lock => "LOCK",
            SchemeKind::Mvlk => "MVLK",
            SchemeKind::Pat => "PAT",
            SchemeKind::TStream => "TStream",
            SchemeKind::To => "T/O",
            SchemeKind::Occ => "OCC",
        }
    }

    /// Instantiate the scheme; `partitions` is only used by PAT.
    pub fn build(&self, partitions: u32) -> Scheme {
        match self {
            SchemeKind::NoLock => Scheme::Eager(Arc::new(NoLockScheme::new())),
            SchemeKind::Lock => Scheme::Eager(Arc::new(LockScheme::new())),
            SchemeKind::Mvlk => Scheme::Eager(Arc::new(MvlkScheme::new())),
            SchemeKind::Pat => Scheme::Eager(Arc::new(PatScheme::new(partitions))),
            SchemeKind::TStream => Scheme::TStream,
            SchemeKind::To => Scheme::Eager(Arc::new(ToScheme::new(ToPolicy::Reject))),
            SchemeKind::Occ => Scheme::Eager(Arc::new(OccScheme::default())),
        }
    }
}

/// The four benchmark applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppKind {
    /// Grep and Sum.
    Gs,
    /// Streaming Ledger.
    Sl,
    /// Online Bidding.
    Ob,
    /// Toll Processing.
    Tp,
}

impl AppKind {
    /// All applications in the order of Figure 8.
    pub const ALL: [AppKind; 4] = [AppKind::Gs, AppKind::Sl, AppKind::Ob, AppKind::Tp];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            AppKind::Gs => "GS",
            AppKind::Sl => "SL",
            AppKind::Ob => "OB",
            AppKind::Tp => "TP",
        }
    }
}

/// Options controlling one benchmark run.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Workload parameters.
    pub spec: WorkloadSpec,
    /// Engine configuration (executors, punctuation interval, placement...).
    pub engine: EngineConfig,
    /// Partitions handed to the PAT scheme (should match `spec.partitions`).
    pub pat_partitions: u32,
    /// GS only: whether the Sum computation runs (Figure 11a disables it).
    pub gs_with_summation: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        let spec = WorkloadSpec::default();
        RunOptions {
            spec,
            engine: EngineConfig::default(),
            pat_partitions: spec.partitions,
            gs_with_summation: true,
        }
    }
}

impl RunOptions {
    /// Convenience constructor.
    pub fn new(spec: WorkloadSpec, engine: EngineConfig) -> Self {
        RunOptions {
            spec,
            engine,
            pat_partitions: spec.partitions,
            gs_with_summation: true,
        }
    }
}

/// How a benchmark run is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionPath {
    /// The streaming runtime: online batch formation pipelined onto the
    /// engine's persistent executor pool ([`Engine::run`], which streams
    /// the input through a `Session`).
    #[default]
    Pipelined,
    /// The seed's offline mode: pre-materialize every batch, then execute
    /// with scoped per-run threads ([`Engine::run_offline`]).  Kept as the
    /// differential baseline — results must be identical to `Pipelined`.
    Offline,
}

fn drive<A: Application>(
    engine: &Engine,
    app: &Arc<A>,
    store: &Arc<StateStore>,
    payloads: Vec<A::Payload>,
    scheme: &Scheme,
    path: ExecutionPath,
) -> RunReport {
    match path {
        ExecutionPath::Pipelined => engine.run(app, store, payloads, scheme),
        ExecutionPath::Offline => engine.run_offline(app, store, payloads, scheme),
    }
}

/// Drive a durable (write-ahead-logged) session over `dir`: recover whatever
/// the directory already holds, then push `payloads[ingested..until]`.
fn drive_durable<A: Application>(
    engine: &Engine,
    app: &Arc<A>,
    store: &Arc<StateStore>,
    payloads: Vec<A::Payload>,
    scheme: &Scheme,
    dir: &Path,
    until: Option<usize>,
) -> StateResult<RunReport>
where
    A::Payload: WalPayload,
{
    let mut session = engine
        .session_builder(app, store, scheme)
        .durable(dir)
        .open()?;
    let start = session.ingested() as usize;
    let stop = until.unwrap_or(payloads.len()).min(payloads.len());
    for payload in payloads.into_iter().take(stop).skip(start) {
        session.push(payload)?;
    }
    session.report()
}

/// Run one (application, scheme) combination and return the report.
///
/// The store is built from `options.spec`, so its shard count is
/// authoritative: the engine's `num_shards` is aligned to `spec.shards` here,
/// keeping chain-pool routing and physical record placement in agreement
/// (one knob — `WorkloadSpec::shards` — controls both).
pub fn run_benchmark(app: AppKind, scheme: SchemeKind, options: &RunOptions) -> RunReport {
    run_benchmark_via(app, scheme, options, ExecutionPath::Pipelined)
}

/// [`run_benchmark`] with an explicit [`ExecutionPath`] — the differential
/// tests drive the pipelined runtime and the offline baseline through this
/// single entry point.
pub fn run_benchmark_via(
    app: AppKind,
    scheme: SchemeKind,
    options: &RunOptions,
    path: ExecutionPath,
) -> RunReport {
    run_benchmark_with_snapshot(app, scheme, options, path).0
}

/// Run one (application, scheme) combination through a **durable session**
/// over `dir` — the `--durable` / `--recover` path of the benchmark
/// harnesses.
///
/// The call is self-positioning: it first recovers whatever durability state
/// `dir` already holds (an empty directory starts a fresh log), then pushes
/// the generated input from the first not-yet-ingested event up to `until`
/// (exclusive; `None` = the whole input).  Calling it once with
/// `until = Some(n)` and again with `until = None` over the same directory
/// therefore models a crash after `n` events followed by a recovery that
/// finishes the stream — the second report carries the *cumulative* counts.
///
/// Returns the report and the final key-sorted store snapshot, so harnesses
/// can compare recovered runs byte-for-byte against uninterrupted ones.
pub fn run_benchmark_durable(
    app: AppKind,
    scheme: SchemeKind,
    options: &RunOptions,
    dir: &Path,
    until: Option<usize>,
) -> StateResult<(RunReport, StoreSnapshot)> {
    let engine_config = options.engine.shards(options.spec.shards as usize);
    let engine = Engine::new(engine_config);
    let scheme = scheme.build(options.pat_partitions);
    let result = match app {
        AppKind::Gs => {
            let store = gs::build_store(&options.spec);
            let application = Arc::new(gs::GrepSum {
                with_summation: options.gs_with_summation,
            });
            let report = drive_durable(
                &engine,
                &application,
                &store,
                gs::generate(&options.spec),
                &scheme,
                dir,
                until,
            )?;
            Ok((report, StoreSnapshot::capture(&store)))
        }
        AppKind::Sl => {
            let store = sl::build_store(&options.spec);
            let application = Arc::new(sl::StreamingLedger);
            let report = drive_durable(
                &engine,
                &application,
                &store,
                sl::generate(&options.spec),
                &scheme,
                dir,
                until,
            )?;
            Ok((report, StoreSnapshot::capture(&store)))
        }
        AppKind::Ob => {
            let store = ob::build_store(&options.spec);
            let application = Arc::new(ob::OnlineBidding);
            let report = drive_durable(
                &engine,
                &application,
                &store,
                ob::generate(&options.spec),
                &scheme,
                dir,
                until,
            )?;
            Ok((report, StoreSnapshot::capture(&store)))
        }
        AppKind::Tp => {
            let store = tp::build_store(&options.spec);
            let application = Arc::new(tp::TollProcessing);
            let report = drive_durable(
                &engine,
                &application,
                &store,
                tp::generate(&options.spec),
                &scheme,
                dir,
                until,
            )?;
            Ok((report, StoreSnapshot::capture(&store)))
        }
    };
    maybe_dump_metrics(&engine, app);
    result
}

/// Result of one concurrent multi-session run: the per-session reports
/// (labelled with the app they drove) plus the shared wall-clock window.
#[derive(Debug, Clone)]
pub struct ConcurrentRun {
    /// One report per session, in the order of the `apps` argument.
    pub reports: Vec<RunReport>,
    /// Wall-clock duration from the first session opening to the last
    /// report, shared by all sessions.
    pub elapsed: Duration,
}

impl ConcurrentRun {
    /// Total events across every session.
    pub fn events(&self) -> u64 {
        self.reports.iter().map(|r| r.events).sum()
    }

    /// Aggregate throughput over the shared wall-clock window, in thousands
    /// of events per second.
    pub fn aggregate_keps(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.events() as f64 / self.elapsed.as_secs_f64() / 1_000.0
    }
}

/// Run one session **per entry of `apps`, concurrently, on one engine**:
/// each session gets its own store, workload and scheme instance, is pushed
/// from its own thread, and is labelled with its app, so the reports stay
/// attributable.  The sessions multiplex over the engine's shared executor
/// pool — this is the multi-client shape the session scheduler exists for,
/// and what the `bench_snapshot` concurrency rows measure.
pub fn run_benchmark_concurrent(
    apps: &[AppKind],
    scheme: SchemeKind,
    options: &RunOptions,
) -> ConcurrentRun {
    fn session_thread<A: Application>(
        engine: &Engine,
        application: A,
        store: Arc<StateStore>,
        payloads: Vec<A::Payload>,
        scheme: &Scheme,
        label: &str,
    ) -> RunReport {
        let app = Arc::new(application);
        let mut session = engine
            .session_builder(&app, &store, scheme)
            .label(label)
            .open()
            .expect("plain sessions cannot fail to open");
        for payload in payloads {
            session
                .push(payload)
                .expect("plain sessions cannot fail to push");
        }
        session
            .report()
            .expect("plain sessions cannot fail to report")
    }

    /// One fully prepared session run, waiting for the timed window.
    type PreparedSession = Box<dyn FnOnce(&Engine) -> RunReport + Send>;

    let engine_config = options.engine.shards(options.spec.shards as usize);
    let engine = Engine::new(engine_config);
    // Build every session's store, workload and scheme instance (eager
    // schemes carry per-run counters that concurrent sessions must not
    // share) *before* the clock starts: the shared window must measure
    // push-to-report work only, so the aggregate rows stay comparable to
    // the per-app throughput points.
    let jobs: Vec<PreparedSession> = apps
        .iter()
        .map(|&app| {
            let scheme = scheme.build(options.pat_partitions);
            let label = app.label();
            match app {
                AppKind::Gs => {
                    let application = gs::GrepSum {
                        with_summation: options.gs_with_summation,
                    };
                    let store = gs::build_store(&options.spec);
                    let payloads = gs::generate(&options.spec);
                    Box::new(move |engine: &Engine| {
                        session_thread(engine, application, store, payloads, &scheme, label)
                    }) as PreparedSession
                }
                AppKind::Sl => {
                    let store = sl::build_store(&options.spec);
                    let payloads = sl::generate(&options.spec);
                    Box::new(move |engine: &Engine| {
                        session_thread(engine, sl::StreamingLedger, store, payloads, &scheme, label)
                    })
                }
                AppKind::Ob => {
                    let store = ob::build_store(&options.spec);
                    let payloads = ob::generate(&options.spec);
                    Box::new(move |engine: &Engine| {
                        session_thread(engine, ob::OnlineBidding, store, payloads, &scheme, label)
                    })
                }
                AppKind::Tp => {
                    let store = tp::build_store(&options.spec);
                    let payloads = tp::generate(&options.spec);
                    Box::new(move |engine: &Engine| {
                        session_thread(engine, tp::TollProcessing, store, payloads, &scheme, label)
                    })
                }
            }
        })
        .collect();
    let started = std::time::Instant::now();
    let reports: Vec<RunReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .into_iter()
            .map(|job| {
                let engine = &engine;
                scope.spawn(move || job(engine))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    ConcurrentRun {
        reports,
        elapsed: started.elapsed(),
    }
}

/// [`run_benchmark_via`] that also returns the final key-sorted store
/// snapshot — what the crash-recovery differential harnesses compare
/// durable runs against.
pub fn run_benchmark_with_snapshot(
    app: AppKind,
    scheme: SchemeKind,
    options: &RunOptions,
    path: ExecutionPath,
) -> (RunReport, StoreSnapshot) {
    let engine_config = options.engine.shards(options.spec.shards as usize);
    let engine = Engine::new(engine_config);
    let scheme = scheme.build(options.pat_partitions);
    let result = match app {
        AppKind::Gs => {
            let store = gs::build_store(&options.spec);
            let application = Arc::new(gs::GrepSum {
                with_summation: options.gs_with_summation,
            });
            let report = drive(
                &engine,
                &application,
                &store,
                gs::generate(&options.spec),
                &scheme,
                path,
            );
            (report, StoreSnapshot::capture(&store))
        }
        AppKind::Sl => {
            let store = sl::build_store(&options.spec);
            let application = Arc::new(sl::StreamingLedger);
            let report = drive(
                &engine,
                &application,
                &store,
                sl::generate(&options.spec),
                &scheme,
                path,
            );
            (report, StoreSnapshot::capture(&store))
        }
        AppKind::Ob => {
            let store = ob::build_store(&options.spec);
            let application = Arc::new(ob::OnlineBidding);
            let report = drive(
                &engine,
                &application,
                &store,
                ob::generate(&options.spec),
                &scheme,
                path,
            );
            (report, StoreSnapshot::capture(&store))
        }
        AppKind::Tp => {
            let store = tp::build_store(&options.spec);
            let application = Arc::new(tp::TollProcessing);
            let report = drive(
                &engine,
                &application,
                &store,
                tp::generate(&options.spec),
                &scheme,
                path,
            );
            (report, StoreSnapshot::capture(&store))
        }
    };
    maybe_dump_metrics(&engine, app);
    result
}

/// Dump the engine's full metrics scrape to stderr when `TSTREAM_METRICS`
/// is set — ad-hoc observability for any figure harness or differential
/// test without threading a flag through every entry point.
fn maybe_dump_metrics(engine: &Engine, app: AppKind) {
    if std::env::var_os("TSTREAM_METRICS").is_some() {
        eprintln!(
            "--- metrics ({}) ---\n{}",
            app.label(),
            engine.metrics_text()
        );
    }
}

/// Format a duration as milliseconds with two decimals.
pub fn fmt_ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1_000.0)
}

/// Format a throughput figure (K events/s) with one decimal.
pub fn fmt_keps(v: f64) -> String {
    format!("{v:.1}")
}

/// Render one row of a fixed-width text table.
pub fn table_row(cells: &[String], widths: &[usize]) -> String {
    let mut out = String::new();
    for (i, cell) in cells.iter().enumerate() {
        let width = widths.get(i).copied().unwrap_or(12);
        out.push_str(&format!("{cell:>width$}  "));
    }
    out.trim_end().to_owned()
}

/// Render a full fixed-width text table (header + rows).
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i >= widths.len() {
                widths.push(cell.len());
            } else {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = table_row(
        &header.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &widths,
    );
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&table_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_cover_all_variants() {
        assert_eq!(SchemeKind::ALL.len(), 5);
        assert_eq!(AppKind::ALL.len(), 4);
        assert_eq!(SchemeKind::TStream.label(), "TStream");
        assert_eq!(AppKind::Tp.label(), "TP");
        assert_eq!(SchemeKind::CONSISTENT.len(), 4);
        assert_eq!(SchemeKind::ORDER_UNAWARE.len(), 2);
        assert_eq!(SchemeKind::To.label(), "T/O");
        assert_eq!(SchemeKind::Occ.label(), "OCC");
    }

    #[test]
    fn order_unaware_schemes_run_but_are_not_part_of_the_paper_comparison() {
        // They must be runnable through the same dispatch (used by the
        // sec2c_order_unaware harness) without being listed in ALL/CONSISTENT.
        let mut options = RunOptions::default();
        options.spec = options.spec.events(300);
        options.engine = EngineConfig::with_executors(2).punctuation(100);
        for scheme in SchemeKind::ORDER_UNAWARE {
            assert!(!SchemeKind::ALL.contains(&scheme));
            assert!(!SchemeKind::CONSISTENT.contains(&scheme));
            let report = run_benchmark(AppKind::Gs, scheme, &options);
            assert_eq!(report.events, 300);
            assert_eq!(report.committed + report.rejected, 300);
        }
    }

    #[test]
    fn every_app_runs_under_every_scheme_smoke() {
        // A very small end-to-end sweep: 2 executors, 200 events per app.
        let mut options = RunOptions::default();
        options.spec = options.spec.events(200);
        options.engine = EngineConfig::with_executors(2).punctuation(50);
        for app in AppKind::ALL {
            for scheme in SchemeKind::ALL {
                let report = run_benchmark(app, scheme, &options);
                assert_eq!(report.events, 200, "{} / {}", app.label(), scheme.label());
                assert_eq!(report.committed + report.rejected, 200);
                assert!(report.throughput_keps() > 0.0);
            }
        }
    }

    #[test]
    fn pipelined_and_offline_paths_agree() {
        let mut options = RunOptions::default();
        options.spec = options.spec.events(400).seed(0x51);
        options.engine = EngineConfig::with_executors(2).punctuation(100);
        let pipelined = run_benchmark_via(
            AppKind::Sl,
            SchemeKind::TStream,
            &options,
            ExecutionPath::Pipelined,
        );
        let offline = run_benchmark_via(
            AppKind::Sl,
            SchemeKind::TStream,
            &options,
            ExecutionPath::Offline,
        );
        assert_eq!(pipelined.committed, offline.committed);
        assert_eq!(pipelined.rejected, offline.rejected);
        assert_eq!(pipelined.events, offline.events);
        assert_eq!(ExecutionPath::default(), ExecutionPath::Pipelined);
    }

    #[test]
    fn table_rendering_aligns_columns() {
        let table = render_table(
            &["scheme", "keps"],
            &[
                vec!["LOCK".into(), "12.3".into()],
                vec!["TStream".into(), "45.6".into()],
            ],
        );
        assert!(table.contains("TStream"));
        assert!(table.lines().count() >= 4);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ms(Duration::from_micros(1500)), "1.50");
        assert_eq!(fmt_keps(123.456), "123.5");
    }
}
