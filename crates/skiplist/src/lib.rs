//! # tstream-skiplist
//!
//! An **insert-ordered concurrent skip list**, the data structure TStream uses
//! to build *operation chains* (the paper adopts Java's `ConcurrentSkipList`
//! for this purpose, Section IV-C.1).
//!
//! The access pattern of an operation chain is very specific and this crate is
//! tailored to it:
//!
//! * **many threads insert concurrently** during *compute mode* — inserts are
//!   lock-free (CAS on each level, no locks taken);
//! * **one thread scans sequentially** during *state-access mode* — iteration
//!   walks the bottom level in key order;
//! * **no concurrent removal** — chains are only ever cleared wholesale (with
//!   exclusive access) once a batch of transactions has been processed, so the
//!   list does not need deletion marks or hazard pointers.
//!
//! The list rejects duplicate keys, which matches operation chains where the
//! key is a globally unique `(timestamp, sequence)` pair.
//!
//! ```
//! use tstream_skiplist::ConcurrentSkipList;
//!
//! let list: ConcurrentSkipList<u64, &str> = ConcurrentSkipList::new();
//! list.insert(30, "c");
//! list.insert(10, "a");
//! list.insert(20, "b");
//! let keys: Vec<u64> = list.iter().map(|(k, _)| *k).collect();
//! assert_eq!(keys, vec![10, 20, 30]);
//! ```

#![warn(missing_docs)]

mod list;
mod node;

pub use list::{ConcurrentSkipList, Iter};

/// Maximum tower height used by [`ConcurrentSkipList`].
///
/// With a branching probability of 1/2, 20 levels comfortably cover the chain
/// sizes seen in TStream batches (a punctuation interval of a few thousand
/// transactions produces chains of at most a few thousand operations).
pub const MAX_HEIGHT: usize = 20;
