use std::cell::Cell;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};

use crate::node::{Head, Node};
use crate::MAX_HEIGHT;

/// An insert-ordered concurrent skip list.
///
/// * `insert` is lock-free and may be called from many threads concurrently.
/// * `iter`, `get`, `first_key`, `len` may run concurrently with inserts and
///   observe a consistent prefix of the bottom level.
/// * `clear` and `drop` require exclusive access (`&mut self`) and free all
///   nodes; this matches TStream's batch lifecycle where chains are recycled
///   only after a punctuation batch has been fully processed.
///
/// Duplicate keys are rejected: `insert` returns `false` and drops the value
/// if the key is already present.
pub struct ConcurrentSkipList<K, V> {
    head: Head<K, V>,
    len: AtomicUsize,
    /// Per-list PRNG state used to pick tower heights (SplitMix64).
    height_seed: AtomicU64,
    /// Best-effort pointer to the largest-key node, enabling an O(1) append
    /// fast path for the common in-order insertion pattern (batch events
    /// arrive in timestamp order).  Null when unknown; a stale hint is
    /// detected by its non-null bottom successor and falls back to the
    /// ordinary search.  Reset under exclusive access in `clear` /
    /// `drain_sorted` before any node is freed, so a non-null hint always
    /// points at a live node.
    tail_hint: AtomicPtr<Node<K, V>>,
}

// SAFETY: nodes are heap allocated and only freed under exclusive access; all
// shared mutation goes through atomics.
unsafe impl<K: Send, V: Send> Send for ConcurrentSkipList<K, V> {}
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for ConcurrentSkipList<K, V> {}

thread_local! {
    /// Thread-local salt so concurrent inserters do not fight over the shared
    /// height seed on every call.
    static HEIGHT_SALT: Cell<u64> = const { Cell::new(0) };
}

impl<K: Ord, V> Default for ConcurrentSkipList<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> std::fmt::Debug for ConcurrentSkipList<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentSkipList")
            .field("len", &self.len.load(Ordering::Relaxed))
            .finish()
    }
}

impl<K: Ord, V> ConcurrentSkipList<K, V> {
    /// Creates an empty list.
    pub fn new() -> Self {
        ConcurrentSkipList {
            head: Head::new(),
            len: AtomicUsize::new(0),
            height_seed: AtomicU64::new(0x9E37_79B9_7F4A_7C15),
            tail_hint: AtomicPtr::new(ptr::null_mut()),
        }
    }

    /// Number of elements currently linked at the bottom level.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Returns `true` when the list holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Draw a tower height with geometric distribution (p = 1/2).
    fn random_height(&self) -> usize {
        let salt = HEIGHT_SALT.with(|s| {
            let mut v = s.get();
            if v == 0 {
                // Mix the shared seed exactly once per thread.
                v = self
                    .height_seed
                    .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
                    | 1;
            }
            // SplitMix64 step.
            v = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = v;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            s.set(v);
            z
        });
        let mut height = 1;
        let mut bits = salt;
        while height < MAX_HEIGHT && (bits & 1) == 1 {
            height += 1;
            bits >>= 1;
        }
        height
    }

    /// Find, for every level, the last node with key `< key` (the
    /// predecessor) and its successor. `preds[l]` of `None` means the head.
    ///
    /// Returns `Err(ptr)` if a node with an equal key was found.
    #[allow(clippy::type_complexity)]
    fn find(
        &self,
        key: &K,
    ) -> Result<([*mut Node<K, V>; MAX_HEIGHT], [*mut Node<K, V>; MAX_HEIGHT]), *mut Node<K, V>>
    {
        let mut preds: [*mut Node<K, V>; MAX_HEIGHT] = [ptr::null_mut(); MAX_HEIGHT];
        let mut succs: [*mut Node<K, V>; MAX_HEIGHT] = [ptr::null_mut(); MAX_HEIGHT];
        let mut pred: *mut Node<K, V> = ptr::null_mut(); // null == head
        for level in (0..MAX_HEIGHT).rev() {
            let mut curr = if pred.is_null() {
                self.head.next(level)
            } else {
                // SAFETY: `pred` was read from a live link and nodes are never
                // freed while shared references exist.
                unsafe { (*pred).next(level) }
            };
            loop {
                if curr.is_null() {
                    break;
                }
                // SAFETY: as above, `curr` points to a live node.
                let curr_ref = unsafe { &*curr };
                match curr_ref.key.cmp(key) {
                    std::cmp::Ordering::Less => {
                        pred = curr;
                        curr = curr_ref.next(level);
                    }
                    std::cmp::Ordering::Equal => return Err(curr),
                    std::cmp::Ordering::Greater => break,
                }
            }
            preds[level] = pred;
            succs[level] = curr;
        }
        Ok((preds, succs))
    }

    #[inline]
    fn link_slot(
        &self,
        pred: *mut Node<K, V>,
        level: usize,
    ) -> &std::sync::atomic::AtomicPtr<Node<K, V>> {
        if pred.is_null() {
            &self.head.next[level]
        } else {
            // SAFETY: `pred` is a live node (see `find`).
            unsafe { &(*pred).next[level] }
        }
    }

    /// Append fast path: when `key` is strictly greater than the current
    /// tail's key (or the list is empty), publish a height-1 node with a
    /// single bottom-level CAS — no tower search.  This is the common case
    /// for operation chains, whose keys arrive in timestamp order within a
    /// batch.  Declines (`Err`, returning ownership of the pair) when the
    /// hint is missing/stale, the key is not a strict tail successor, or the
    /// CAS loses a race; callers then run the ordinary search-based insert.
    #[inline]
    fn try_append(&self, key: K, value: V) -> Result<(), (K, V)> {
        let tail = self.tail_hint.load(Ordering::Acquire);
        let slot = if tail.is_null() {
            if self.head.next(0).is_null() {
                &self.head.next[0]
            } else {
                return Err((key, value));
            }
        } else {
            // SAFETY: a non-null hint always points to a live node — the
            // hint is reset (under exclusive access) before any node is
            // freed.
            let tail_ref = unsafe { &*tail };
            if tail_ref.key < key && tail_ref.next(0).is_null() {
                &tail_ref.next[0]
            } else {
                return Err((key, value));
            }
        };
        let node = Box::into_raw(Node::new(key, value, 1));
        // The CAS re-checks tail-ness atomically: it only succeeds while the
        // predecessor's bottom successor is still null, i.e. while it is
        // still the last node of the (sorted) bottom level.
        if slot
            .compare_exchange(ptr::null_mut(), node, Ordering::Release, Ordering::Acquire)
            .is_ok()
        {
            self.tail_hint.store(node, Ordering::Release);
            self.len.fetch_add(1, Ordering::Release);
            Ok(())
        } else {
            // Lost the race; unpublish our speculative node and fall back.
            // SAFETY: the node was never linked into the list.
            let boxed = unsafe { Box::from_raw(node) };
            Err((boxed.key, boxed.value))
        }
    }

    /// Insert `key -> value`. Returns `true` if inserted, `false` (dropping
    /// `value`) if the key already exists.
    ///
    /// Lock-free: concurrent inserters retry their CAS on contention.
    /// In-order insertions (each key larger than every existing key) take an
    /// O(1) append path; out-of-order keys — e.g. a replay tail interleaving
    /// with fresh events — use the full tower search.
    pub fn insert(&self, key: K, value: V) -> bool {
        let (key, value) = match self.try_append(key, value) {
            Ok(()) => return true,
            Err(pair) => pair,
        };
        let height = self.random_height();
        let node = Box::into_raw(Node::new(key, value, height));
        loop {
            // SAFETY: we still own `node` exclusively until the bottom-level
            // CAS succeeds.
            let key_ref = unsafe { &(*node).key };
            let (preds, succs) = match self.find(key_ref) {
                Ok(found) => found,
                Err(_) => {
                    // Key already present: free our speculative node.
                    // SAFETY: the node was never published.
                    drop(unsafe { Box::from_raw(node) });
                    return false;
                }
            };
            // Prepare the new node's forward pointers before publication.
            for (level, succ) in succs.iter().enumerate().take(height) {
                // SAFETY: exclusive ownership of `node` pre-publication.
                unsafe { (*node).next[level].store(*succ, Ordering::Relaxed) };
            }
            // Publish at the bottom level.
            let slot = self.link_slot(preds[0], 0);
            if slot
                .compare_exchange(succs[0], node, Ordering::Release, Ordering::Acquire)
                .is_err()
            {
                // Somebody raced us; retry the whole search.
                continue;
            }
            self.len.fetch_add(1, Ordering::Release);
            if succs[0].is_null() {
                // We are the new tail: refresh the append hint so in-order
                // insertion can resume on the fast path.
                self.tail_hint.store(node, Ordering::Release);
            }
            // Link the upper levels; failures re-run the search for fresh
            // predecessors (duplicates are impossible now that the node is in).
            for level in 1..height {
                loop {
                    // SAFETY: `node` is published but its upper levels are
                    // still only written by us.
                    let succ = unsafe { (*node).next[level].load(Ordering::Relaxed) };
                    let slot = self.link_slot(preds[level], level);
                    if slot
                        .compare_exchange(succ, node, Ordering::Release, Ordering::Acquire)
                        .is_ok()
                    {
                        break;
                    }
                    // Refresh predecessors/successors for the remaining levels.
                    // SAFETY: node is live.
                    let key_ref = unsafe { &(*node).key };
                    match self.find(key_ref) {
                        // Our own node is now in the list, so `find` reports
                        // it as "already present"; recompute the predecessor
                        // chain manually for this level instead.
                        Err(_) | Ok(_) => {
                            let (p, s) = self.find_ignoring(key_ref, node);
                            // Update the snapshot used by the outer loop.
                            let pred = p[level];
                            let succ_new = s[level];
                            // SAFETY: exclusive writer of upper levels.
                            unsafe {
                                (*node).next[level].store(succ_new, Ordering::Relaxed);
                            }
                            let slot = self.link_slot(pred, level);
                            if slot
                                .compare_exchange(
                                    succ_new,
                                    node,
                                    Ordering::Release,
                                    Ordering::Acquire,
                                )
                                .is_ok()
                            {
                                break;
                            }
                            // else: retry this level again.
                        }
                    }
                }
            }
            return true;
        }
    }

    /// Like `find`, but treats `skip` (our own partially linked node) as
    /// absent so that predecessors strictly before the key are returned.
    #[allow(clippy::type_complexity)]
    fn find_ignoring(
        &self,
        key: &K,
        skip: *mut Node<K, V>,
    ) -> ([*mut Node<K, V>; MAX_HEIGHT], [*mut Node<K, V>; MAX_HEIGHT]) {
        let mut preds: [*mut Node<K, V>; MAX_HEIGHT] = [ptr::null_mut(); MAX_HEIGHT];
        let mut succs: [*mut Node<K, V>; MAX_HEIGHT] = [ptr::null_mut(); MAX_HEIGHT];
        let mut pred: *mut Node<K, V> = ptr::null_mut();
        for level in (0..MAX_HEIGHT).rev() {
            let mut curr = if pred.is_null() {
                self.head.next(level)
            } else {
                // SAFETY: live node.
                unsafe { (*pred).next(level) }
            };
            loop {
                if curr.is_null() {
                    break;
                }
                // SAFETY: live node.
                let curr_ref = unsafe { &*curr };
                if curr == skip {
                    // Successor of our own node at this level.
                    succs[level] = curr_ref.next(level);
                    break;
                }
                match curr_ref.key.cmp(key) {
                    std::cmp::Ordering::Less => {
                        pred = curr;
                        curr = curr_ref.next(level);
                    }
                    _ => break,
                }
            }
            preds[level] = pred;
            if succs[level].is_null() {
                succs[level] = curr;
            }
            if succs[level] == skip {
                // Never chain a node to itself.
                // SAFETY: live node.
                succs[level] = unsafe { (*skip).next(level) };
            }
        }
        (preds, succs)
    }

    /// Look up a key and return a reference to its value.
    pub fn get(&self, key: &K) -> Option<&V> {
        match self.find(key) {
            // SAFETY: nodes are never freed while `&self` is held.
            Err(node) => Some(unsafe { &(*node).value }),
            Ok(_) => None,
        }
    }

    /// Returns `true` if `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// The smallest key currently in the list, if any.
    pub fn first_key(&self) -> Option<&K> {
        let first = self.head.next(0);
        if first.is_null() {
            None
        } else {
            // SAFETY: live node.
            Some(unsafe { &(*first).key })
        }
    }

    /// Ordered iterator over `(key, value)` pairs (bottom-level walk).
    pub fn iter(&self) -> Iter<'_, K, V> {
        Iter {
            curr: self.head.next(0),
            _list: self,
        }
    }

    /// Remove every element. Requires exclusive access, so it cannot race
    /// with readers or inserters.
    pub fn clear(&mut self) {
        // Reset the append hint before any node is freed so it can never
        // reference a dead node.
        self.tail_hint.store(ptr::null_mut(), Ordering::Relaxed);
        let mut curr = self.head.next[0].load(Ordering::Relaxed);
        while !curr.is_null() {
            // SAFETY: exclusive access; every published node was allocated
            // with `Box::into_raw` and appears exactly once on level 0.
            let boxed = unsafe { Box::from_raw(curr) };
            curr = boxed.next[0].load(Ordering::Relaxed);
        }
        for level in 0..MAX_HEIGHT {
            self.head.next[level].store(ptr::null_mut(), Ordering::Relaxed);
        }
        self.len.store(0, Ordering::Release);
    }

    /// Drain the list into a sorted `Vec`, leaving it empty.
    pub fn drain_sorted(&mut self) -> Vec<(K, V)> {
        self.tail_hint.store(ptr::null_mut(), Ordering::Relaxed);
        let mut out = Vec::with_capacity(self.len());
        let mut curr = self.head.next[0].load(Ordering::Relaxed);
        while !curr.is_null() {
            // SAFETY: exclusive access, node published exactly once.
            let boxed = unsafe { Box::from_raw(curr) };
            curr = boxed.next[0].load(Ordering::Relaxed);
            out.push((boxed.key, boxed.value));
        }
        for level in 0..MAX_HEIGHT {
            self.head.next[level].store(ptr::null_mut(), Ordering::Relaxed);
        }
        self.len.store(0, Ordering::Release);
        out
    }
}

impl<K, V> Drop for ConcurrentSkipList<K, V> {
    fn drop(&mut self) {
        let mut curr = self.head.next[0].load(Ordering::Relaxed);
        while !curr.is_null() {
            // SAFETY: exclusive access during drop.
            let boxed = unsafe { Box::from_raw(curr) };
            curr = boxed.next[0].load(Ordering::Relaxed);
            drop(boxed);
        }
    }
}

/// Ordered iterator returned by [`ConcurrentSkipList::iter`].
pub struct Iter<'a, K, V> {
    curr: *mut Node<K, V>,
    _list: &'a ConcurrentSkipList<K, V>,
}

impl<'a, K, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        if self.curr.is_null() {
            return None;
        }
        // SAFETY: nodes live as long as the list borrow `'a`.
        let node = unsafe { &*self.curr };
        self.curr = node.next(0);
        Some((&node.key, &node.value))
    }
}

impl<'a, K: Ord, V> IntoIterator for &'a ConcurrentSkipList<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = Iter<'a, K, V>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_iterate_in_order() {
        let list = ConcurrentSkipList::new();
        for k in [5u64, 1, 9, 3, 7] {
            assert!(list.insert(k, k * 10));
        }
        let got: Vec<(u64, u64)> = list.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(got, vec![(1, 10), (3, 30), (5, 50), (7, 70), (9, 90)]);
        assert_eq!(list.len(), 5);
    }

    #[test]
    fn duplicate_keys_rejected() {
        let list = ConcurrentSkipList::new();
        assert!(list.insert(42u32, "a"));
        assert!(!list.insert(42u32, "b"));
        assert_eq!(list.len(), 1);
        assert_eq!(list.get(&42), Some(&"a"));
    }

    #[test]
    fn get_and_contains() {
        let list = ConcurrentSkipList::new();
        for k in 0..100u64 {
            list.insert(k, k + 1);
        }
        assert_eq!(list.get(&50), Some(&51));
        assert!(list.contains(&0));
        assert!(!list.contains(&100));
        assert_eq!(list.first_key(), Some(&0));
    }

    #[test]
    fn empty_list_behaviour() {
        let list: ConcurrentSkipList<u64, ()> = ConcurrentSkipList::new();
        assert!(list.is_empty());
        assert_eq!(list.first_key(), None);
        assert_eq!(list.iter().count(), 0);
        assert_eq!(list.get(&1), None);
    }

    #[test]
    fn clear_resets_everything() {
        let mut list = ConcurrentSkipList::new();
        for k in 0..1000u64 {
            list.insert(k, k);
        }
        assert_eq!(list.len(), 1000);
        list.clear();
        assert!(list.is_empty());
        assert_eq!(list.iter().count(), 0);
        // Re-usable after clear.
        assert!(list.insert(7u64, 7));
        assert_eq!(list.len(), 1);
    }

    #[test]
    fn drain_sorted_returns_everything_in_order() {
        let mut list = ConcurrentSkipList::new();
        for k in [4u64, 2, 8, 6, 0] {
            list.insert(k, format!("v{k}"));
        }
        let drained = list.drain_sorted();
        assert_eq!(
            drained.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![0, 2, 4, 6, 8]
        );
        assert!(list.is_empty());
    }

    #[test]
    fn in_order_appends_then_replay_tail_interleaving() {
        let list = ConcurrentSkipList::new();
        // Pure in-order appends: every insert rides the tail fast path.
        for k in 0..100u64 {
            assert!(list.insert(k * 2, k));
        }
        // Replay-tail style out-of-order inserts land between existing keys
        // via the general search path.
        for k in (0..100u64).rev() {
            assert!(list.insert(k * 2 + 1, k));
        }
        // Appending resumes after out-of-order traffic (hint refreshed).
        assert!(list.insert(1_000u64, 0));
        assert!(!list.insert(1_000u64, 1), "duplicate tail key rejected");
        let keys: Vec<u64> = list.iter().map(|(k, _)| *k).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        assert_eq!(list.len(), 201);
    }

    #[test]
    fn reverse_and_random_insert_orders_agree() {
        let fwd = ConcurrentSkipList::new();
        let rev = ConcurrentSkipList::new();
        for k in 0..500u64 {
            fwd.insert(k, k);
        }
        for k in (0..500u64).rev() {
            rev.insert(k, k);
        }
        let a: Vec<u64> = fwd.iter().map(|(k, _)| *k).collect();
        let b: Vec<u64> = rev.iter().map(|(k, _)| *k).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn concurrent_inserts_from_many_threads() {
        let list = std::sync::Arc::new(ConcurrentSkipList::new());
        let threads = 8;
        let per_thread = 2_000u64;
        let mut handles = Vec::new();
        for t in 0..threads {
            let list = list.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..per_thread {
                    let key = i * threads + t;
                    assert!(list.insert(key, key));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(list.len() as u64, threads * per_thread);
        let mut prev = None;
        let mut count = 0u64;
        for (k, v) in list.iter() {
            assert_eq!(k, v);
            if let Some(p) = prev {
                assert!(*k > p, "keys must be strictly increasing");
            }
            prev = Some(*k);
            count += 1;
        }
        assert_eq!(count, threads * per_thread);
    }

    #[test]
    fn concurrent_duplicate_contention() {
        // All threads try to insert the same small key range; exactly one
        // winner per key.
        let list = std::sync::Arc::new(ConcurrentSkipList::new());
        let threads = 8;
        let keys = 256u64;
        let winners = std::sync::Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for t in 0..threads {
            let list = list.clone();
            let winners = winners.clone();
            handles.push(std::thread::spawn(move || {
                for k in 0..keys {
                    if list.insert(k, t) {
                        winners.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(winners.load(Ordering::Relaxed) as u64, keys);
        assert_eq!(list.len() as u64, keys);
    }
}
