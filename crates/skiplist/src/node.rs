use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};

use crate::MAX_HEIGHT;

/// A single tower in the skip list.
///
/// `next` pointers above `height - 1` are never linked and stay null.
/// Nodes are allocated with `Box` and only ever freed while the owning list is
/// held exclusively (`&mut self`), so readers never observe a dangling
/// pointer.
pub(crate) struct Node<K, V> {
    pub(crate) key: K,
    pub(crate) value: V,
    /// Tower height of this node; levels `height..MAX_HEIGHT` stay unlinked.
    #[allow(dead_code)]
    pub(crate) height: usize,
    pub(crate) next: [AtomicPtr<Node<K, V>>; MAX_HEIGHT],
}

impl<K, V> Node<K, V> {
    pub(crate) fn new(key: K, value: V, height: usize) -> Box<Self> {
        debug_assert!((1..=MAX_HEIGHT).contains(&height));
        Box::new(Node {
            key,
            value,
            height,
            next: std::array::from_fn(|_| AtomicPtr::new(ptr::null_mut())),
        })
    }

    /// Load the successor at `level` with acquire ordering.
    #[inline]
    pub(crate) fn next(&self, level: usize) -> *mut Node<K, V> {
        self.next[level].load(Ordering::Acquire)
    }
}

/// Sentinel head: owns only `next` pointers, no key/value.
pub(crate) struct Head<K, V> {
    pub(crate) next: [AtomicPtr<Node<K, V>>; MAX_HEIGHT],
}

impl<K, V> Head<K, V> {
    pub(crate) fn new() -> Self {
        Head {
            next: std::array::from_fn(|_| AtomicPtr::new(ptr::null_mut())),
        }
    }

    #[inline]
    pub(crate) fn next(&self, level: usize) -> *mut Node<K, V> {
        self.next[level].load(Ordering::Acquire)
    }
}
