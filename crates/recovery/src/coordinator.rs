//! The recovery coordinator: glue between the WAL and the checkpoints.
//!
//! A durability directory has two sub-directories:
//!
//! ```text
//! <root>/checkpoints/  checkpoint-000000000007.tsnap   (epoch-stamped, v2)
//! <root>/wal/          segment-000000000014.twal       (sealed batches)
//!                      segment-000000000015.twal.open  (active tail)
//! ```
//!
//! [`RecoveryCoordinator::open`] turns that directory into a
//! [`RecoveredState`]: the newest checkpoint (snapshot + manifest), the
//! sealed segments *after* the checkpoint epoch that must be replayed, the
//! unsealed tail whose events re-enter the forming batch, and a
//! [`DurableLog`] ready for live appends.  Segments the checkpoint already
//! covers — leftovers of a truncation the crash interrupted — are deleted on
//! open, so recovery is idempotent: crash during recovery, open again, and
//! the same procedure converges.
//!
//! [`DurableLog`] is the handle the engine holds during a run.  Two threads
//! use it concurrently: the ingestion thread appends events and seals
//! segments at punctuation; the executor leader writes epoch-stamped
//! checkpoints at the end-of-batch barrier and truncates covered segments.
//! A mutex over the WAL serializes them; truncation never touches the
//! active segment, so ingestion is only ever blocked for the file-remove
//! window.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::{Condvar, Mutex};

use tstream_state::checkpoint::{Checkpoint, CheckpointManifest, Checkpointer};
use tstream_state::codec::Reader;
use tstream_state::{StateError, StateResult, StateStore, StoreSnapshot};

use crate::wal::{self, FsyncPolicy, GroupCommitConfig, SegmentInfo, SegmentedWal, WalPayload};

/// Something that can run a WAL flush job on another thread.
///
/// The recovery crate owns the group-commit *protocol* but not the threads:
/// the engine's executor pool implements this trait with its spawn-once WAL
/// writer, and tooling that has no runtime simply attaches nothing — the
/// [`DurableLog`] then flushes windows inline on the appending thread.
///
/// Jobs submitted through one executor must run **in submission order, one
/// at a time**: the log relies on that FIFO ordering as its flush barrier.
pub trait FlushExecutor: Send + Sync {
    /// Enqueue `job` to run on the executor's writer thread.
    fn submit(&self, job: Box<dyn FnOnce() + Send + 'static>);
}

/// Observer of the durable artifacts a [`DurableLog`] produces, the shipping
/// side of hot-standby replication.
///
/// The log calls these hooks synchronously on the thread that produced the
/// artifact — no thread is spawned here.  [`ShipSink::segment_executed`]
/// fires from [`DurableLog::record_epoch_root`], i.e. at the end-of-batch
/// barrier *after* the epoch's batch executed: the segment is sealed on disk
/// and the leader's state root is known, which is exactly what a standby
/// needs to replay and cross-check the epoch.
/// [`ShipSink::checkpoint_written`] fires from [`DurableLog::checkpoint`]
/// after the checkpoint file is durably renamed and *before* covered
/// segments are truncated.
///
/// Implementations must be quick and must not call back into the log beyond
/// the pin API — they run under the engine's batch barrier.
pub trait ShipSink: Send + Sync {
    /// Epoch `epoch` executed: its sealed segment lives at `path`, and the
    /// leader computed `root` over the quiescent store (when epoch roots are
    /// enabled — attaching a shipper enables them).
    fn segment_executed(&self, epoch: u64, path: &Path, root: Option<u64>);

    /// A checkpoint covering `epoch` was durably written to `path`.
    fn checkpoint_written(&self, epoch: u64, path: &Path);
}

/// A registered retention pin: while it exists, [`DurableLog::checkpoint`]
/// will not truncate any sealed segment with epoch `>= floor` — the holder
/// (a shipper that has not been acked yet, or a point-in-time-recovery
/// floor) still needs those files.
///
/// Obtained from [`DurableLog::pin_retention`]; advance the floor with
/// [`DurableLog::advance_pin`] as the consumer catches up and release it
/// with [`DurableLog::release_pin`].  Pins are process-local state: they
/// protect a *live* lagging consumer, not one that outlives a crash.
#[derive(Debug)]
pub struct RetentionPin {
    id: u64,
}

/// What [`RecoveryCoordinator::recover_to`] found for a target epoch: the
/// restore base and the sealed segments whose replay reproduces the state
/// exactly as of the end of that epoch.
///
/// Purely descriptive — producing it does not mutate the durability
/// directory, so historical states can be materialized over and over from
/// one directory (each onto a fresh store).
#[derive(Debug)]
pub struct PointInTime {
    /// The target epoch.
    pub epoch: u64,
    /// Snapshot of the newest checkpoint at or before the target epoch, to
    /// restore before replay; `None` when replay starts from the empty
    /// (initial) store state.
    pub snapshot: Option<StoreSnapshot>,
    /// Progress counters covered by `snapshot` (zero when it is `None`).
    pub base: RecoveredProgress,
    /// Sealed segments to replay after the restore, ascending and dense,
    /// ending exactly at `epoch`.
    pub sealed_segments: Vec<SegmentInfo>,
}

/// Shared ack state of the group-commit protocol: how many windows were
/// handed to the flush executor and how many have finished (synced under
/// [`FsyncPolicy::Always`]).  `error` latches the first write failure so
/// the appending thread surfaces it on the next append or seal.
#[derive(Debug, Default)]
struct GroupProgress {
    submitted: u64,
    completed: u64,
    error: Option<String>,
}

/// Sub-directory holding checkpoint files.
pub const CHECKPOINT_SUBDIR: &str = "checkpoints";

/// Sub-directory holding WAL segments.
pub const WAL_SUBDIR: &str = "wal";

/// File stamping the run parameters a durability directory was written with.
pub const META_FILE: &str = "meta.tmeta";

const META_MAGIC: &[u8; 5] = b"TMETA";
const META_VERSION: u8 = 1;

/// Run parameters that must stay fixed across recoveries of one directory.
///
/// The WAL's epoch alignment assumes one sealed segment ⇔ one punctuation
/// batch; reopening the directory with a different punctuation interval
/// would re-batch the replay and desynchronize epoch stamps from segment
/// numbering, so the interval is stamped on first use and validated on
/// every reopen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurableMeta {
    /// Punctuation interval (events per batch) of the runs over this
    /// directory.
    pub punctuation_interval: u64,
}

impl DurableMeta {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        out.extend_from_slice(META_MAGIC);
        out.push(b'0' + META_VERSION);
        out.extend_from_slice(&self.punctuation_interval.to_le_bytes());
        out
    }

    fn decode(bytes: &[u8]) -> StateResult<Self> {
        let mut reader = Reader::new(bytes);
        reader.versioned_header(META_MAGIC, META_VERSION, "durability metadata")?;
        Ok(DurableMeta {
            punctuation_interval: reader.u64()?,
        })
    }
}

/// Tuning of a durability directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryOptions {
    /// When the WAL forces data to stable storage.
    pub fsync: FsyncPolicy,
    /// Write a checkpoint every `checkpoint_every` batches (clamped to at
    /// least 1).  Between checkpoints the WAL alone carries durability, so
    /// larger values trade recovery replay time for run-time throughput.
    pub checkpoint_every: u64,
    /// How many checkpoint files to retain.
    pub retain: usize,
    /// Run parameters to stamp into the directory on first use and validate
    /// on every reopen; `None` skips the check (raw-log tooling).
    pub meta: Option<DurableMeta>,
    /// Group-commit window bounds: appends buffer in memory and the window
    /// flushes (and under [`FsyncPolicy::Always`] syncs) when either bound
    /// is reached, or at the latest when the segment seals.
    pub group: GroupCommitConfig,
}

impl Default for RecoveryOptions {
    fn default() -> Self {
        RecoveryOptions {
            fsync: FsyncPolicy::default(),
            checkpoint_every: 1,
            retain: 2,
            meta: None,
            group: GroupCommitConfig::default(),
        }
    }
}

/// Cumulative progress restored from a checkpoint manifest; the base the
/// recovered run's own counting starts from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveredProgress {
    /// Input events already covered by the restored snapshot.
    pub events: u64,
    /// Committed transactions already covered.
    pub committed: u64,
    /// Rejected transactions already covered.
    pub rejected: u64,
}

/// Everything [`RecoveryCoordinator::open`] found in a durability directory.
#[derive(Debug)]
pub struct RecoveredState {
    /// Snapshot of the newest checkpoint, to be restored onto the store
    /// before any replay.  `None` on a fresh (or checkpoint-less) directory.
    pub snapshot: Option<StoreSnapshot>,
    /// Sealed segments newer than the checkpoint, ascending by epoch; each
    /// replays as exactly one punctuation batch.
    pub sealed_segments: Vec<SegmentInfo>,
    /// The unsealed tail segment, if the crash hit mid-batch: its complete
    /// events re-enter the forming batch (the log keeps appending to this
    /// very segment).
    pub pending_segment: Option<SegmentInfo>,
    /// The log, positioned to continue exactly where the crash stopped.
    pub log: DurableLog,
}

/// Opens durability directories and validates their invariants.
#[derive(Debug, Clone)]
pub struct RecoveryCoordinator {
    root: PathBuf,
    options: RecoveryOptions,
}

impl RecoveryCoordinator {
    /// Coordinator over `root` with default options.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        RecoveryCoordinator {
            root: root.into(),
            options: RecoveryOptions::default(),
        }
    }

    /// Replace the options wholesale.
    pub fn options(mut self, options: RecoveryOptions) -> Self {
        self.options = options;
        self
    }

    /// Root directory of the durability state.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Stamp the run parameters on first use; reject a mismatch on reopen
    /// (re-batching a replay with a different punctuation interval would
    /// silently desynchronize epoch stamps from segment numbering).
    fn stamp_or_validate_meta(&self, expected: DurableMeta) -> StateResult<()> {
        let path = self.root.join(META_FILE);
        match fs::read(&path) {
            Ok(bytes) => {
                let found = DurableMeta::decode(&bytes)?;
                if found != expected {
                    return Err(StateError::InvalidDefinition(format!(
                        "durability directory {} was written with punctuation interval {}, \
                         but the engine is configured with {}; recover with the original \
                         interval (or use a fresh directory)",
                        self.root.display(),
                        found.punctuation_interval,
                        expected.punctuation_interval
                    )));
                }
                Ok(())
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                fs::create_dir_all(&self.root)?;
                fs::write(&path, expected.encode())?;
                Ok(())
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Open the directory: restore-able checkpoint, segments to replay, and
    /// a live [`DurableLog`].  Works identically on a fresh directory (no
    /// checkpoint, no segments) and after a crash at any point.
    pub fn open(&self) -> StateResult<RecoveredState> {
        if let Some(expected) = self.options.meta {
            self.stamp_or_validate_meta(expected)?;
        }
        let checkpointer = Checkpointer::new(
            self.root.join(CHECKPOINT_SUBDIR),
            self.options.retain.max(1),
        )?;
        let latest = checkpointer.latest_checkpoint()?;
        let (snapshot, manifest) = match latest {
            None => (None, None),
            Some(Checkpoint { manifest, snapshot }) => (Some(snapshot), manifest),
        };
        let covered_epoch: Option<u64> = manifest.map(|m| m.epoch);

        // The checkpoint's covered epoch is the numbering floor: even when
        // truncation has emptied the WAL directory, epoch numbering must
        // resume at `covered + 1`, never restart at 0 (re-used low epochs
        // would be mistaken for checkpoint-covered on the next recovery and
        // silently truncated).
        let floor = covered_epoch.map_or(0, |c| c + 1);
        let mut wal = SegmentedWal::open(self.root.join(WAL_SUBDIR), self.options.fsync, floor)?;
        wal.set_group_commit(self.options.group);
        // Finish a truncation the crash interrupted: segments the checkpoint
        // covers are redundant.
        if let Some(epoch) = covered_epoch {
            wal.truncate_through(epoch)?;
        }

        let mut sealed_segments = Vec::new();
        let mut pending_segment = None;
        for info in wal::list_segments(wal.directory())? {
            if covered_epoch.is_some_and(|c| info.epoch <= c) {
                continue; // already truncated above; be tolerant of races
            }
            if info.sealed {
                sealed_segments.push(info);
            } else {
                pending_segment = Some(info);
            }
        }
        if snapshot.is_some()
            && manifest.is_none()
            && (!sealed_segments.is_empty() || pending_segment.is_some())
        {
            return Err(StateError::Corrupted(
                "checkpoint carries no epoch manifest but WAL segments exist; \
                 cannot tell which segments it covers"
                    .to_owned(),
            ));
        }
        // The surviving epochs must be dense: checkpoint epoch + 1, +2, ...
        // up to the tail.  A gap means a segment vanished and replay would
        // silently skip its events.
        let mut expected = covered_epoch.map_or(0, |c| c + 1);
        for info in &sealed_segments {
            if info.epoch != expected {
                return Err(StateError::Corrupted(format!(
                    "WAL epoch gap: expected segment {expected}, found {}",
                    info.epoch
                )));
            }
            expected += 1;
        }
        if let Some(info) = &pending_segment {
            if info.epoch != expected {
                return Err(StateError::Corrupted(format!(
                    "WAL epoch gap: expected tail segment {expected}, found {}",
                    info.epoch
                )));
            }
        }

        let base = manifest.map_or(RecoveredProgress::default(), |m| RecoveredProgress {
            events: m.events,
            committed: m.committed,
            rejected: m.rejected,
        });
        let epoch_base = covered_epoch.map_or(0, |c| c + 1);
        let sealed_count = sealed_segments.len() as u64;
        Ok(RecoveredState {
            snapshot,
            sealed_segments,
            pending_segment,
            // Everything below `epoch_base + sealed_count` is sealed on
            // disk: the checkpoint-covered epochs plus the surviving (dense)
            // sealed segments.
            log: DurableLog::assemble(
                wal,
                checkpointer,
                base,
                epoch_base,
                self.options.checkpoint_every,
                epoch_base + sealed_count,
            ),
        })
    }

    /// Open the directory for **standby takeover**: position a [`DurableLog`]
    /// *after* the last sealed segment without replaying anything.
    ///
    /// A promoting standby has already replayed every mirrored segment
    /// through its live session, so the normal [`RecoveryCoordinator::open`]
    /// contract (restore + replay) would double-apply.  This opens the same
    /// directory write-only: epoch numbering resumes right after the newest
    /// sealed segment, and `base` carries the cumulative progress the
    /// standby's replay already counted (so recovered reports stay identical
    /// to an uninterrupted run).
    ///
    /// Refuses a directory holding an unsealed tail segment — a standby only
    /// mirrors sealed history, so a tail means this directory belonged to a
    /// live primary, not a mirror.
    pub fn open_for_takeover(&self, base: RecoveredProgress) -> StateResult<DurableLog> {
        if let Some(expected) = self.options.meta {
            self.stamp_or_validate_meta(expected)?;
        }
        let checkpointer = Checkpointer::new(
            self.root.join(CHECKPOINT_SUBDIR),
            self.options.retain.max(1),
        )?;
        let covered: Option<u64> = checkpointer
            .latest_checkpoint()?
            .and_then(|cp| cp.manifest.map(|m| m.epoch));
        let floor = covered.map_or(0, |c| c + 1);
        let mut wal = SegmentedWal::open(self.root.join(WAL_SUBDIR), self.options.fsync, floor)?;
        wal.set_group_commit(self.options.group);
        let mut expected = floor;
        for info in wal::list_segments(wal.directory())? {
            if covered.is_some_and(|c| info.epoch <= c) {
                continue;
            }
            if !info.sealed {
                return Err(StateError::InvalidDefinition(format!(
                    "takeover refuses the unsealed tail segment (epoch {}): a standby \
                     mirrors sealed history only",
                    info.epoch
                )));
            }
            if info.epoch != expected {
                return Err(StateError::Corrupted(format!(
                    "WAL epoch gap: expected segment {expected}, found {}",
                    info.epoch
                )));
            }
            expected += 1;
        }
        let next = wal.next_epoch().max(floor);
        Ok(DurableLog::assemble(
            wal,
            checkpointer,
            base,
            next,
            self.options.checkpoint_every,
            next,
        ))
    }

    /// Point-in-time recovery: describe how to reproduce the state exactly
    /// as of the end of `epoch` — the newest checkpoint at or before it plus
    /// the sealed segments `(checkpoint, epoch]`, dense and ending exactly
    /// at `epoch`.
    ///
    /// Read-only: nothing in the directory is stamped, healed or truncated,
    /// so any number of historical epochs can be materialized from one
    /// directory.  Fails when the target's segment exists only as an
    /// unsealed tail (the epoch never became durable) or when retention has
    /// already truncated part of the needed history — which is what
    /// [`DurableLog::pin_retention`] exists to prevent.
    pub fn recover_to(&self, epoch: u64) -> StateResult<PointInTime> {
        let checkpointer = Checkpointer::new(
            self.root.join(CHECKPOINT_SUBDIR),
            self.options.retain.max(1),
        )?;
        let found = checkpointer.checkpoint_at_or_before(epoch)?;
        let (snapshot, manifest) = match found {
            None => (None, None),
            Some(Checkpoint { manifest, snapshot }) => (Some(snapshot), manifest),
        };
        let covered: Option<u64> = manifest.map(|m| m.epoch);
        let base = manifest.map_or(RecoveredProgress::default(), |m| RecoveredProgress {
            events: m.events,
            committed: m.committed,
            rejected: m.rejected,
        });

        let mut sealed_segments = Vec::new();
        let mut expected = covered.map_or(0, |c| c + 1);
        for info in wal::list_segments(&self.root.join(WAL_SUBDIR))? {
            if covered.is_some_and(|c| info.epoch <= c) || info.epoch > epoch {
                continue;
            }
            if !info.sealed {
                return Err(StateError::InvalidDefinition(format!(
                    "recover_to({epoch}): epoch {} exists only as an unsealed tail; \
                     point-in-time recovery replays durable (sealed) history only",
                    info.epoch
                )));
            }
            if info.epoch != expected {
                return Err(StateError::Corrupted(format!(
                    "recover_to({epoch}): WAL epoch gap — expected segment {expected}, \
                     found {} (was the history truncated without a retention pin?)",
                    info.epoch
                )));
            }
            expected += 1;
            sealed_segments.push(info);
        }
        if covered != Some(epoch) && expected != epoch + 1 {
            return Err(StateError::InvalidDefinition(format!(
                "recover_to({epoch}): durable history ends at epoch {}; the target epoch \
                 was never sealed (or its segments were truncated without a pin)",
                expected.saturating_sub(1)
            )));
        }
        Ok(PointInTime {
            epoch,
            snapshot,
            base,
            sealed_segments,
        })
    }
}

/// The live durability handle of an engine run.
///
/// Appends/seals come from the ingestion thread; checkpoints and truncation
/// from the executor leader at the end-of-batch barrier.  When a
/// [`FlushExecutor`] is attached, full group-commit windows are written (and
/// synced, per policy) on its writer thread while the ingestion thread keeps
/// buffering the next window; at most one window is in flight, and `seal`
/// drains the pipeline before stamping the batch durable.
pub struct DurableLog {
    wal: Arc<Mutex<SegmentedWal>>,
    checkpointer: Checkpointer,
    base: RecoveredProgress,
    epoch_base: u64,
    checkpoint_every: u64,
    /// Exclusive upper bound of the epochs whose segments are sealed on
    /// disk.  A checkpoint may only cover sealed epochs: stamping a manifest
    /// for an epoch whose seal *failed* would raise the recovery floor past
    /// an unsealed tail and brick the directory.
    sealed_below: AtomicU64,
    /// Background writer for full group-commit windows; `None` flushes
    /// inline on the appending thread.
    executor: Option<Arc<dyn FlushExecutor>>,
    /// Submitted/completed window counters plus the latched first error.
    progress: Arc<(Mutex<GroupProgress>, Condvar)>,
    /// Retention pins: pin id → lowest epoch that holder still needs.  The
    /// effective truncation ceiling is the minimum over all pins.
    pins: Mutex<BTreeMap<u64, u64>>,
    /// Next pin id.
    next_pin: AtomicU64,
    /// Whether the executor leader should compute a per-epoch state root at
    /// the end-of-batch barrier (replication / divergence detection).
    record_roots: AtomicBool,
    /// Per-epoch state roots recorded so far.
    roots: Mutex<BTreeMap<u64, u64>>,
    /// The attached shipping sink, if any.  Held weakly: the shipper owns
    /// an `Arc` of this log (to verify roots and advance its retention
    /// pin), so a strong reference back would leak both — and with them
    /// the log's group-commit executor handle, wedging engine shutdown.
    shipper: Mutex<Option<Weak<dyn ShipSink>>>,
}

impl std::fmt::Debug for DurableLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableLog")
            .field("checkpointer", &self.checkpointer)
            .field("base", &self.base)
            .field("epoch_base", &self.epoch_base)
            .field("checkpoint_every", &self.checkpoint_every)
            .field("sealed_below", &self.sealed_below)
            .field("has_executor", &self.executor.is_some())
            .finish_non_exhaustive()
    }
}

impl DurableLog {
    /// Assemble a log over an opened WAL + checkpointer (shared by
    /// [`RecoveryCoordinator::open`] and
    /// [`RecoveryCoordinator::open_for_takeover`]).
    fn assemble(
        wal: SegmentedWal,
        checkpointer: Checkpointer,
        base: RecoveredProgress,
        epoch_base: u64,
        checkpoint_every: u64,
        sealed_below: u64,
    ) -> Self {
        DurableLog {
            wal: Arc::new(Mutex::new(wal)),
            checkpointer,
            base,
            epoch_base,
            checkpoint_every: checkpoint_every.max(1),
            sealed_below: AtomicU64::new(sealed_below),
            executor: None,
            progress: Arc::new((Mutex::new(GroupProgress::default()), Condvar::new())),
            pins: Mutex::new(BTreeMap::new()),
            next_pin: AtomicU64::new(0),
            record_roots: AtomicBool::new(false),
            roots: Mutex::new(BTreeMap::new()),
            shipper: Mutex::new(None),
        }
    }

    /// Progress already covered by the restored checkpoint (zero on a fresh
    /// directory).
    pub fn base(&self) -> RecoveredProgress {
        self.base
    }

    /// Durable epoch of the session's first batch: the session's punctuation
    /// sequence `s` executes as durable epoch `epoch_base() + s`.
    pub fn epoch_base(&self) -> u64 {
        self.epoch_base
    }

    /// Whether the batch of durable epoch `epoch` should be followed by a
    /// checkpoint (every `checkpoint_every` batches, on absolute epochs so
    /// the cadence survives restarts).
    pub fn should_checkpoint(&self, epoch: u64) -> bool {
        (epoch + 1).is_multiple_of(self.checkpoint_every)
    }

    /// Attach the background writer for full group-commit windows.  Called
    /// once by the engine before the log is shared; without it, windows
    /// flush inline on the appending thread (tooling, tests).
    pub fn attach_group_executor(&mut self, executor: Arc<dyn FlushExecutor>) {
        self.executor = Some(executor);
    }

    /// Append one event to the active WAL segment (creating it if needed).
    ///
    /// The frame is encoded straight into the writer's reusable buffer; if
    /// that fills the group-commit window, the window is handed to the
    /// attached [`FlushExecutor`] (or flushed inline when none is attached).
    pub fn append<P: WalPayload>(&self, payload: &P) -> StateResult<()> {
        let mut wal = self.wal.lock();
        let window_full = wal.append_deferred(|buf| payload.encode_wal(buf))?;
        if !window_full {
            return Ok(());
        }
        if self.executor.is_none() {
            return wal.flush_window();
        }
        let window = wal.take_window()?;
        drop(wal);
        if let Some(window) = window {
            self.submit_window(window)?;
        }
        Ok(())
    }

    /// Hand one full window to the writer thread, first waiting out the
    /// previous one (at most one window is in flight — natural backpressure
    /// when the disk cannot keep up with ingestion).
    fn submit_window(&self, window: wal::PendingWindow) -> StateResult<()> {
        let executor = self.executor.as_ref().expect("checked by caller");
        self.drain_in_flight()?;
        {
            let (lock, _) = &*self.progress;
            lock.lock().submitted += 1;
        }
        let wal = Arc::clone(&self.wal);
        let progress = Arc::clone(&self.progress);
        executor.submit(Box::new(move || {
            let failure = match window.commit() {
                Ok((buf, sync_ns)) => {
                    let mut wal = wal.lock();
                    wal.recycle_window_buffer(buf);
                    wal.note_offline_sync(sync_ns);
                    None
                }
                Err(e) => {
                    // The file may hold a torn frame; appending behind it
                    // would corrupt the tail.
                    wal.lock().poison();
                    Some(e.to_string())
                }
            };
            let (lock, cvar) = &*progress;
            let mut p = lock.lock();
            if p.error.is_none() {
                p.error = failure;
            }
            p.completed += 1;
            cvar.notify_all();
        }));
        Ok(())
    }

    /// Wait until every submitted window has committed; surface the first
    /// writer-thread failure as an I/O error.
    fn drain_in_flight(&self) -> StateResult<()> {
        if self.executor.is_none() {
            return Ok(());
        }
        let (lock, cvar) = &*self.progress;
        let mut p = lock.lock();
        while p.completed < p.submitted {
            cvar.wait(&mut p);
        }
        if let Some(e) = p.error.as_ref() {
            return Err(StateError::Io(format!(
                "WAL group-commit write failed: {e}"
            )));
        }
        Ok(())
    }

    /// Seal the active segment at a punctuation boundary; returns its epoch.
    ///
    /// Drains the in-flight window first — the seal marker must land behind
    /// every event frame — then flushes the buffered remainder, syncs, and
    /// renames (the WAL writer does all three).  Only after the covering
    /// sync does the batch count as acked-durable.
    pub fn seal(&self) -> StateResult<u64> {
        self.drain_in_flight()?;
        let epoch = self.wal.lock().seal()?;
        self.sealed_below.fetch_max(epoch + 1, Ordering::Release);
        Ok(epoch)
    }

    /// Write an epoch-stamped checkpoint of `store` and truncate every WAL
    /// segment the checkpoint covers.  Called by the executor leader at the
    /// end-of-batch barrier, where the store is quiescent by construction.
    ///
    /// Refuses to checkpoint an epoch whose WAL segment never sealed (a
    /// failed seal leaves the batch input only in the unsealed tail): a
    /// manifest for it would raise the recovery floor past the tail and make
    /// the directory unrecoverable.  The batch stays covered by a future
    /// successful seal or by replay of the tail.
    pub fn checkpoint(
        &self,
        store: &StateStore,
        manifest: CheckpointManifest,
    ) -> StateResult<PathBuf> {
        let epoch = manifest.epoch;
        let sealed_below = self.sealed_below.load(Ordering::Acquire);
        if epoch >= sealed_below {
            return Err(StateError::InvalidDefinition(format!(
                "refusing to checkpoint epoch {epoch}: its WAL segment has not sealed \
                 (sealed epochs end below {sealed_below})"
            )));
        }
        let path = self.checkpointer.write_checkpoint(&Checkpoint {
            manifest: Some(manifest),
            snapshot: StoreSnapshot::capture(store),
        })?;
        if let Some(sink) = self.attached_shipper() {
            sink.checkpoint_written(epoch, &path);
        }
        // Only after the checkpoint is durably renamed may its segments go —
        // and never a segment a retention pin still needs: a pinned floor of
        // `f` keeps epochs `>= f` on disk however far checkpoints advance.
        let through = match self.retention_floor() {
            None => Some(epoch),
            Some(0) => None,
            Some(floor) => Some(epoch.min(floor - 1)),
        };
        if let Some(through) = through {
            self.wal.lock().truncate_through(through)?;
        }
        Ok(path)
    }

    /// Register a retention pin at `floor`: sealed segments with epoch
    /// `>= floor` survive checkpoint truncation until the pin is advanced
    /// past them or released.
    pub fn pin_retention(&self, floor: u64) -> RetentionPin {
        let id = self.next_pin.fetch_add(1, Ordering::Relaxed);
        self.pins.lock().insert(id, floor);
        RetentionPin { id }
    }

    /// Raise a pin's floor (the consumer caught up through `floor - 1`).
    /// Floors only move forward; a lower value is ignored.
    pub fn advance_pin(&self, pin: &RetentionPin, floor: u64) {
        let mut pins = self.pins.lock();
        if let Some(current) = pins.get_mut(&pin.id) {
            *current = (*current).max(floor);
        }
    }

    /// Release a pin; its segments become truncatable at the next
    /// checkpoint.
    pub fn release_pin(&self, pin: RetentionPin) {
        self.pins.lock().remove(&pin.id);
    }

    /// The effective retention floor: the minimum over all registered pins
    /// (`None` when nothing is pinned and truncation is unrestricted).
    pub fn retention_floor(&self) -> Option<u64> {
        self.pins.lock().values().min().copied()
    }

    /// Ask the executor leader to compute a deterministic state root at
    /// every end-of-batch barrier (see [`DurableLog::record_epoch_root`]).
    /// Off by default — root hashing walks the whole store, and runs without
    /// a standby should not pay for it.  Attaching a shipper enables this.
    pub fn enable_epoch_roots(&self) {
        self.record_roots.store(true, Ordering::Release);
    }

    /// Whether per-epoch state roots should be computed.
    pub fn wants_epoch_roots(&self) -> bool {
        self.record_roots.load(Ordering::Acquire)
    }

    /// Record the leader's state root for `epoch` and notify the attached
    /// shipper that the epoch's sealed segment is ready to ship.
    ///
    /// Called by the executor leader at the end-of-batch barrier, after the
    /// epoch's batch fully executed (store quiescent, segment sealed).
    pub fn record_epoch_root(&self, epoch: u64, root: u64) {
        self.roots.lock().insert(epoch, root);
        if let Some(sink) = self.attached_shipper() {
            sink.segment_executed(epoch, &self.sealed_segment_path(epoch), Some(root));
        }
    }

    /// The recorded state root of `epoch`, if the leader computed one.
    pub fn epoch_root(&self, epoch: u64) -> Option<u64> {
        self.roots.lock().get(&epoch).copied()
    }

    /// All recorded `(epoch, root)` pairs, ascending by epoch.
    pub fn epoch_roots(&self) -> Vec<(u64, u64)> {
        self.roots.lock().iter().map(|(&e, &r)| (e, r)).collect()
    }

    /// Attach the shipping sink and enable epoch roots.  The sink is called
    /// synchronously from [`DurableLog::record_epoch_root`] (executor
    /// leader) and [`DurableLog::checkpoint`] (same thread); it should hold
    /// a retention pin for everything it has not shipped-and-acked yet.
    pub fn attach_shipper(&self, sink: &Arc<dyn ShipSink>) {
        *self.shipper.lock() = Some(Arc::downgrade(sink));
        self.enable_epoch_roots();
    }

    /// The live attached sink, dropping the registration once the shipper
    /// is gone.
    fn attached_shipper(&self) -> Option<Arc<dyn ShipSink>> {
        let mut slot = self.shipper.lock();
        let sink = slot.as_ref().and_then(Weak::upgrade);
        if sink.is_none() {
            *slot = None;
        }
        sink
    }

    /// Directory the WAL segments live in.
    pub fn wal_directory(&self) -> PathBuf {
        self.wal.lock().directory().to_path_buf()
    }

    /// Path the sealed segment of `epoch` lives at (whether or not it still
    /// exists — truncation may have removed it).
    pub fn sealed_segment_path(&self, epoch: u64) -> PathBuf {
        self.wal_directory().join(wal::sealed_segment_name(epoch))
    }

    /// Bytes appended to the WAL through this log instance.
    pub fn wal_bytes(&self) -> u64 {
        self.wal.lock().bytes_written()
    }

    /// Cumulative WAL activity counters (windows, fsyncs, seals,
    /// truncations).  The engine drains these as deltas into its metrics
    /// hub at batch boundaries.
    pub fn wal_stats(&self) -> wal::WalStats {
        self.wal.lock().stats()
    }

    /// Events sitting in the active (unsealed) segment.
    pub fn pending_records(&self) -> u64 {
        self.wal.lock().pending_records()
    }

    /// The underlying checkpointer (for inspection in tests and tools).
    pub fn checkpointer(&self) -> &Checkpointer {
        &self.checkpointer
    }
}

impl Drop for DurableLog {
    /// Let the in-flight window land before the WAL's own drop flushes the
    /// buffered remainder behind it — frames must stay in append order even
    /// on the shutdown path.
    fn drop(&mut self) {
        let (lock, cvar) = &*self.progress;
        let mut p = lock.lock();
        while p.completed < p.submitted {
            cvar.wait(&mut p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use tstream_state::{TableBuilder, Value};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tstream-coordinator-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_store() -> std::sync::Arc<StateStore> {
        let table = TableBuilder::new("t")
            .extend((0..8u64).map(|k| (k, Value::Long(0))))
            .build()
            .unwrap();
        StateStore::new(vec![table]).unwrap()
    }

    fn append_event(log: &DurableLog, value: u64) {
        log.append(&value).unwrap();
    }

    #[test]
    fn fresh_directory_opens_empty() {
        let dir = temp_dir("fresh");
        let state = RecoveryCoordinator::new(&dir).open().unwrap();
        assert!(state.snapshot.is_none());
        assert!(state.sealed_segments.is_empty());
        assert!(state.pending_segment.is_none());
        assert_eq!(state.log.epoch_base(), 0);
        assert_eq!(state.log.base(), RecoveredProgress::default());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_truncates_covered_segments_and_advances_the_base() {
        let dir = temp_dir("truncate");
        let store = sample_store();
        let state = RecoveryCoordinator::new(&dir).open().unwrap();
        let log = state.log;
        for epoch in 0..3u64 {
            append_event(&log, epoch);
            assert_eq!(log.seal().unwrap(), epoch);
        }
        log.checkpoint(
            &store,
            CheckpointManifest {
                epoch: 1,
                events: 2,
                committed: 2,
                rejected: 0,
            },
        )
        .unwrap();
        drop(log);

        // Reopen: the checkpoint covers epochs <= 1, segment 2 survives.
        let state = RecoveryCoordinator::new(&dir).open().unwrap();
        assert!(state.snapshot.is_some());
        let epochs: Vec<u64> = state.sealed_segments.iter().map(|s| s.epoch).collect();
        assert_eq!(epochs, vec![2]);
        assert_eq!(state.log.epoch_base(), 2);
        assert_eq!(
            state.log.base(),
            RecoveredProgress {
                events: 2,
                committed: 2,
                rejected: 0
            }
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn pending_tail_segments_survive_reopen() {
        let dir = temp_dir("pending");
        {
            let state = RecoveryCoordinator::new(&dir).open().unwrap();
            append_event(&state.log, 1);
            state.log.seal().unwrap();
            append_event(&state.log, 2);
            // crash mid-batch: no seal
        }
        let state = RecoveryCoordinator::new(&dir).open().unwrap();
        assert_eq!(state.sealed_segments.len(), 1);
        let pending = state.pending_segment.expect("tail must survive");
        assert_eq!(pending.epoch, 1);
        let decoded = wal::read_segment::<u64>(&pending.path).unwrap();
        assert_eq!(decoded.events, vec![2]);
        // And the log keeps appending to that very segment.
        assert_eq!(state.log.pending_records(), 1);
        append_event(&state.log, 3);
        assert_eq!(state.log.seal().unwrap(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn epoch_gaps_are_rejected() {
        let dir = temp_dir("gap");
        {
            let state = RecoveryCoordinator::new(&dir).open().unwrap();
            for epoch in 0..3u64 {
                append_event(&state.log, epoch);
                state.log.seal().unwrap();
            }
        }
        // Delete the middle segment: replay would silently skip its events.
        fs::remove_file(dir.join(WAL_SUBDIR).join("segment-000000000001.twal")).unwrap();
        assert!(matches!(
            RecoveryCoordinator::new(&dir).open(),
            Err(StateError::Corrupted(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_cadence_follows_absolute_epochs() {
        let dir = temp_dir("cadence");
        let state = RecoveryCoordinator::new(&dir)
            .options(RecoveryOptions {
                checkpoint_every: 3,
                ..RecoveryOptions::default()
            })
            .open()
            .unwrap();
        let decisions: Vec<bool> = (0..7).map(|e| state.log.should_checkpoint(e)).collect();
        assert_eq!(
            decisions,
            vec![false, false, true, false, false, true, false]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn epoch_numbering_survives_a_fully_truncated_wal() {
        // checkpoint covers epoch 1 and truncation removed every segment;
        // reopening must resume numbering at 2, not restart at 0 (restarted
        // low epochs would be mistaken for covered and truncated on the
        // *next* recovery).
        let dir = temp_dir("full-truncation");
        let store = sample_store();
        {
            let state = RecoveryCoordinator::new(&dir).open().unwrap();
            for epoch in 0..2u64 {
                append_event(&state.log, epoch);
                state.log.seal().unwrap();
            }
            state
                .log
                .checkpoint(
                    &store,
                    CheckpointManifest {
                        epoch: 1,
                        events: 2,
                        committed: 2,
                        rejected: 0,
                    },
                )
                .unwrap();
        }
        let state = RecoveryCoordinator::new(&dir).open().unwrap();
        assert!(state.sealed_segments.is_empty());
        assert_eq!(state.log.epoch_base(), 2);
        append_event(&state.log, 9);
        assert_eq!(
            state.log.seal().unwrap(),
            2,
            "numbering resumes after the checkpoint"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_parameter_meta_is_stamped_and_validated() {
        let dir = temp_dir("meta");
        let meta = |interval: u64| {
            RecoveryCoordinator::new(&dir).options(RecoveryOptions {
                meta: Some(DurableMeta {
                    punctuation_interval: interval,
                }),
                ..RecoveryOptions::default()
            })
        };
        meta(100).open().unwrap(); // stamps
        meta(100).open().unwrap(); // same interval: fine
        match meta(50).open() {
            Err(StateError::InvalidDefinition(msg)) => {
                assert!(msg.contains("100") && msg.contains("50"), "{msg}");
            }
            other => panic!("expected InvalidDefinition, got {other:?}"),
        }
        // Tooling without meta skips the check.
        RecoveryCoordinator::new(&dir).open().unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_manifestless_checkpoint_with_any_wal_data_is_rejected() {
        // A legacy (v1, no-manifest) checkpoint cannot say which epochs it
        // covers, so replaying *any* surviving WAL data on top of it —
        // sealed segments or just the unsealed tail — could double-apply.
        for tail_only in [false, true] {
            let dir = temp_dir(&format!("manifestless-{tail_only}"));
            {
                let state = RecoveryCoordinator::new(&dir).open().unwrap();
                append_event(&state.log, 1);
                if !tail_only {
                    state.log.seal().unwrap();
                }
                state
                    .log
                    .checkpointer()
                    .write_snapshot(&StoreSnapshot::capture(&sample_store()))
                    .unwrap();
            }
            assert!(
                matches!(
                    RecoveryCoordinator::new(&dir).open(),
                    Err(StateError::Corrupted(_))
                ),
                "tail_only = {tail_only}"
            );
            let _ = fs::remove_dir_all(&dir);
        }
    }

    fn manifest(epoch: u64, events: u64) -> CheckpointManifest {
        CheckpointManifest {
            epoch,
            events,
            committed: events,
            rejected: 0,
        }
    }

    fn sealed_epochs(dir: &Path) -> Vec<u64> {
        wal::list_segments(&dir.join(WAL_SUBDIR))
            .unwrap()
            .iter()
            .filter(|s| s.sealed)
            .map(|s| s.epoch)
            .collect()
    }

    #[test]
    fn retention_pin_keeps_unshipped_segments_across_checkpoints() {
        // Regression for the lagging-consumer data loss: without a pin,
        // checkpointing epoch 2 deletes segments 0..=2 even though a standby
        // has shipped nothing yet.
        let dir = temp_dir("pin");
        let store = sample_store();
        let state = RecoveryCoordinator::new(&dir).open().unwrap();
        let log = state.log;
        let pin = log.pin_retention(0);
        for epoch in 0..4u64 {
            append_event(&log, epoch);
            log.seal().unwrap();
        }
        log.checkpoint(&store, manifest(2, 3)).unwrap();
        assert_eq!(
            sealed_epochs(&dir),
            vec![0, 1, 2, 3],
            "pinned segments must survive checkpoint truncation"
        );

        // The consumer catches up through epoch 1: 0 and 1 become
        // truncatable, 2 and beyond stay.
        log.advance_pin(&pin, 2);
        log.checkpoint(&store, manifest(3, 4)).unwrap();
        assert_eq!(sealed_epochs(&dir), vec![2, 3]);

        // Releasing the pin restores unconditional truncation.
        log.release_pin(pin);
        append_event(&log, 9);
        log.seal().unwrap();
        log.checkpoint(&store, manifest(4, 5)).unwrap();
        assert!(sealed_epochs(&dir).is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_floor_is_the_minimum_over_pins() {
        let dir = temp_dir("pin-floor");
        let state = RecoveryCoordinator::new(&dir).open().unwrap();
        let log = state.log;
        assert_eq!(log.retention_floor(), None);
        let a = log.pin_retention(5);
        let b = log.pin_retention(2);
        assert_eq!(log.retention_floor(), Some(2));
        log.advance_pin(&b, 7);
        assert_eq!(log.retention_floor(), Some(5));
        log.advance_pin(&b, 3); // floors never move backwards
        assert_eq!(log.retention_floor(), Some(5));
        log.release_pin(a);
        assert_eq!(log.retention_floor(), Some(7));
        log.release_pin(b);
        assert_eq!(log.retention_floor(), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn epoch_roots_are_recorded_only_when_enabled() {
        let dir = temp_dir("roots");
        let state = RecoveryCoordinator::new(&dir).open().unwrap();
        let log = state.log;
        assert!(!log.wants_epoch_roots());
        log.enable_epoch_roots();
        log.record_epoch_root(0, 11);
        log.record_epoch_root(1, 22);
        assert_eq!(log.epoch_root(1), Some(22));
        assert_eq!(log.epoch_roots(), vec![(0, 11), (1, 22)]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_to_selects_checkpoint_and_segment_range() {
        let dir = temp_dir("pitr");
        let store = sample_store();
        let state = RecoveryCoordinator::new(&dir).open().unwrap();
        let log = state.log;
        let pin = log.pin_retention(0); // keep full history for PITR
        for epoch in 0..5u64 {
            append_event(&log, epoch);
            log.seal().unwrap();
            if epoch == 2 {
                log.checkpoint(&store, manifest(2, 3)).unwrap();
            }
        }
        // Target before the checkpoint: replay everything from scratch.
        let pit = RecoveryCoordinator::new(&dir).recover_to(1).unwrap();
        assert!(pit.snapshot.is_none());
        assert_eq!(
            pit.sealed_segments
                .iter()
                .map(|s| s.epoch)
                .collect::<Vec<_>>(),
            vec![0, 1]
        );
        // Target exactly at the checkpoint: restore only, no replay.
        let pit = RecoveryCoordinator::new(&dir).recover_to(2).unwrap();
        assert!(pit.snapshot.is_some());
        assert_eq!(pit.base.events, 3);
        assert!(pit.sealed_segments.is_empty());
        // Target past the checkpoint: restore + replay (2, 4].
        let pit = RecoveryCoordinator::new(&dir).recover_to(4).unwrap();
        assert_eq!(
            pit.sealed_segments
                .iter()
                .map(|s| s.epoch)
                .collect::<Vec<_>>(),
            vec![3, 4]
        );
        // Target beyond durable history is refused.
        assert!(matches!(
            RecoveryCoordinator::new(&dir).recover_to(5),
            Err(StateError::InvalidDefinition(_))
        ));
        log.release_pin(pin);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_to_refuses_an_unsealed_target() {
        let dir = temp_dir("pitr-tail");
        {
            let state = RecoveryCoordinator::new(&dir).open().unwrap();
            append_event(&state.log, 1);
            state.log.seal().unwrap();
            append_event(&state.log, 2); // epoch 1 exists only as a tail
        }
        match RecoveryCoordinator::new(&dir).recover_to(1) {
            Err(StateError::InvalidDefinition(msg)) => {
                assert!(msg.contains("unsealed tail"), "{msg}");
            }
            other => panic!("expected InvalidDefinition, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_to_fails_when_history_was_truncated_without_a_pin() {
        let dir = temp_dir("pitr-truncated");
        let store = sample_store();
        {
            let state = RecoveryCoordinator::new(&dir).open().unwrap();
            for epoch in 0..4u64 {
                append_event(&state.log, epoch);
                state.log.seal().unwrap();
            }
            // No pin: checkpointing epoch 2 truncates segments 0..=2.
            state.log.checkpoint(&store, manifest(2, 3)).unwrap();
        }
        // Epoch 1 predates the only surviving checkpoint: unrecoverable.
        assert!(RecoveryCoordinator::new(&dir).recover_to(1).is_err());
        // Epoch 3 is still fine (checkpoint at 2 + segment 3).
        let pit = RecoveryCoordinator::new(&dir).recover_to(3).unwrap();
        assert_eq!(pit.sealed_segments.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn takeover_positions_after_the_last_sealed_segment() {
        let dir = temp_dir("takeover");
        {
            let state = RecoveryCoordinator::new(&dir).open().unwrap();
            for epoch in 0..3u64 {
                append_event(&state.log, epoch);
                state.log.seal().unwrap();
            }
        }
        let base = RecoveredProgress {
            events: 3,
            committed: 3,
            rejected: 0,
        };
        let log = RecoveryCoordinator::new(&dir)
            .open_for_takeover(base)
            .unwrap();
        assert_eq!(log.epoch_base(), 3);
        assert_eq!(log.base(), base);
        append_event(&log, 9);
        assert_eq!(log.seal().unwrap(), 3, "writes resume at the next epoch");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn takeover_refuses_an_unsealed_tail() {
        let dir = temp_dir("takeover-tail");
        {
            let state = RecoveryCoordinator::new(&dir).open().unwrap();
            append_event(&state.log, 1);
            state.log.seal().unwrap();
            append_event(&state.log, 2); // tail never sealed
        }
        assert!(matches!(
            RecoveryCoordinator::new(&dir).open_for_takeover(RecoveredProgress::default()),
            Err(StateError::InvalidDefinition(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn shipper_hooks_fire_on_execution_and_checkpoint() {
        #[derive(Default)]
        struct Spy {
            segments: Mutex<Vec<(u64, Option<u64>, bool)>>,
            checkpoints: Mutex<Vec<u64>>,
        }
        impl ShipSink for Spy {
            fn segment_executed(&self, epoch: u64, path: &Path, root: Option<u64>) {
                self.segments.lock().push((epoch, root, path.exists()));
            }
            fn checkpoint_written(&self, epoch: u64, path: &Path) {
                assert!(path.exists());
                self.checkpoints.lock().push(epoch);
            }
        }

        let dir = temp_dir("ship-hooks");
        let store = sample_store();
        let state = RecoveryCoordinator::new(&dir).open().unwrap();
        let log = state.log;
        let spy = Arc::new(Spy::default());
        log.attach_shipper(&(spy.clone() as Arc<dyn ShipSink>));
        assert!(log.wants_epoch_roots(), "attaching a shipper enables roots");
        for epoch in 0..2u64 {
            append_event(&log, epoch);
            log.seal().unwrap();
            log.record_epoch_root(epoch, 100 + epoch);
        }
        log.checkpoint(&store, manifest(1, 2)).unwrap();
        assert_eq!(
            *spy.segments.lock(),
            vec![(0, Some(100), true), (1, Some(101), true)],
            "segments are announced sealed-on-disk with their roots"
        );
        assert_eq!(*spy.checkpoints.lock(), vec![1]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_after_interrupted_truncation_converges() {
        let dir = temp_dir("idempotent");
        let store = sample_store();
        {
            let state = RecoveryCoordinator::new(&dir).open().unwrap();
            for epoch in 0..2u64 {
                append_event(&state.log, epoch);
                state.log.seal().unwrap();
            }
            // Checkpoint epoch 1 but "crash" before truncation finishes:
            // write the checkpoint file directly, leaving both segments.
            state
                .log
                .checkpointer()
                .write_checkpoint(&Checkpoint {
                    manifest: Some(CheckpointManifest {
                        epoch: 1,
                        events: 2,
                        committed: 2,
                        rejected: 0,
                    }),
                    snapshot: StoreSnapshot::capture(&store),
                })
                .unwrap();
        }
        let state = RecoveryCoordinator::new(&dir).open().unwrap();
        assert!(
            state.sealed_segments.is_empty(),
            "covered segments are deleted on open"
        );
        assert_eq!(state.log.epoch_base(), 2);
        assert!(wal::list_segments(&dir.join(WAL_SUBDIR))
            .unwrap()
            .is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
