//! The recovery coordinator: glue between the WAL and the checkpoints.
//!
//! A durability directory has two sub-directories:
//!
//! ```text
//! <root>/checkpoints/  checkpoint-000000000007.tsnap   (epoch-stamped, v2)
//! <root>/wal/          segment-000000000014.twal       (sealed batches)
//!                      segment-000000000015.twal.open  (active tail)
//! ```
//!
//! [`RecoveryCoordinator::open`] turns that directory into a
//! [`RecoveredState`]: the newest checkpoint (snapshot + manifest), the
//! sealed segments *after* the checkpoint epoch that must be replayed, the
//! unsealed tail whose events re-enter the forming batch, and a
//! [`DurableLog`] ready for live appends.  Segments the checkpoint already
//! covers — leftovers of a truncation the crash interrupted — are deleted on
//! open, so recovery is idempotent: crash during recovery, open again, and
//! the same procedure converges.
//!
//! [`DurableLog`] is the handle the engine holds during a run.  Two threads
//! use it concurrently: the ingestion thread appends events and seals
//! segments at punctuation; the executor leader writes epoch-stamped
//! checkpoints at the end-of-batch barrier and truncates covered segments.
//! A mutex over the WAL serializes them; truncation never touches the
//! active segment, so ingestion is only ever blocked for the file-remove
//! window.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use tstream_state::checkpoint::{Checkpoint, CheckpointManifest, Checkpointer};
use tstream_state::codec::Reader;
use tstream_state::{StateError, StateResult, StateStore, StoreSnapshot};

use crate::wal::{self, FsyncPolicy, GroupCommitConfig, SegmentInfo, SegmentedWal, WalPayload};

/// Something that can run a WAL flush job on another thread.
///
/// The recovery crate owns the group-commit *protocol* but not the threads:
/// the engine's executor pool implements this trait with its spawn-once WAL
/// writer, and tooling that has no runtime simply attaches nothing — the
/// [`DurableLog`] then flushes windows inline on the appending thread.
///
/// Jobs submitted through one executor must run **in submission order, one
/// at a time**: the log relies on that FIFO ordering as its flush barrier.
pub trait FlushExecutor: Send + Sync {
    /// Enqueue `job` to run on the executor's writer thread.
    fn submit(&self, job: Box<dyn FnOnce() + Send + 'static>);
}

/// Shared ack state of the group-commit protocol: how many windows were
/// handed to the flush executor and how many have finished (synced under
/// [`FsyncPolicy::Always`]).  `error` latches the first write failure so
/// the appending thread surfaces it on the next append or seal.
#[derive(Debug, Default)]
struct GroupProgress {
    submitted: u64,
    completed: u64,
    error: Option<String>,
}

/// Sub-directory holding checkpoint files.
pub const CHECKPOINT_SUBDIR: &str = "checkpoints";

/// Sub-directory holding WAL segments.
pub const WAL_SUBDIR: &str = "wal";

/// File stamping the run parameters a durability directory was written with.
pub const META_FILE: &str = "meta.tmeta";

const META_MAGIC: &[u8; 5] = b"TMETA";
const META_VERSION: u8 = 1;

/// Run parameters that must stay fixed across recoveries of one directory.
///
/// The WAL's epoch alignment assumes one sealed segment ⇔ one punctuation
/// batch; reopening the directory with a different punctuation interval
/// would re-batch the replay and desynchronize epoch stamps from segment
/// numbering, so the interval is stamped on first use and validated on
/// every reopen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurableMeta {
    /// Punctuation interval (events per batch) of the runs over this
    /// directory.
    pub punctuation_interval: u64,
}

impl DurableMeta {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        out.extend_from_slice(META_MAGIC);
        out.push(b'0' + META_VERSION);
        out.extend_from_slice(&self.punctuation_interval.to_le_bytes());
        out
    }

    fn decode(bytes: &[u8]) -> StateResult<Self> {
        let mut reader = Reader::new(bytes);
        reader.versioned_header(META_MAGIC, META_VERSION, "durability metadata")?;
        Ok(DurableMeta {
            punctuation_interval: reader.u64()?,
        })
    }
}

/// Tuning of a durability directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryOptions {
    /// When the WAL forces data to stable storage.
    pub fsync: FsyncPolicy,
    /// Write a checkpoint every `checkpoint_every` batches (clamped to at
    /// least 1).  Between checkpoints the WAL alone carries durability, so
    /// larger values trade recovery replay time for run-time throughput.
    pub checkpoint_every: u64,
    /// How many checkpoint files to retain.
    pub retain: usize,
    /// Run parameters to stamp into the directory on first use and validate
    /// on every reopen; `None` skips the check (raw-log tooling).
    pub meta: Option<DurableMeta>,
    /// Group-commit window bounds: appends buffer in memory and the window
    /// flushes (and under [`FsyncPolicy::Always`] syncs) when either bound
    /// is reached, or at the latest when the segment seals.
    pub group: GroupCommitConfig,
}

impl Default for RecoveryOptions {
    fn default() -> Self {
        RecoveryOptions {
            fsync: FsyncPolicy::default(),
            checkpoint_every: 1,
            retain: 2,
            meta: None,
            group: GroupCommitConfig::default(),
        }
    }
}

/// Cumulative progress restored from a checkpoint manifest; the base the
/// recovered run's own counting starts from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveredProgress {
    /// Input events already covered by the restored snapshot.
    pub events: u64,
    /// Committed transactions already covered.
    pub committed: u64,
    /// Rejected transactions already covered.
    pub rejected: u64,
}

/// Everything [`RecoveryCoordinator::open`] found in a durability directory.
#[derive(Debug)]
pub struct RecoveredState {
    /// Snapshot of the newest checkpoint, to be restored onto the store
    /// before any replay.  `None` on a fresh (or checkpoint-less) directory.
    pub snapshot: Option<StoreSnapshot>,
    /// Sealed segments newer than the checkpoint, ascending by epoch; each
    /// replays as exactly one punctuation batch.
    pub sealed_segments: Vec<SegmentInfo>,
    /// The unsealed tail segment, if the crash hit mid-batch: its complete
    /// events re-enter the forming batch (the log keeps appending to this
    /// very segment).
    pub pending_segment: Option<SegmentInfo>,
    /// The log, positioned to continue exactly where the crash stopped.
    pub log: DurableLog,
}

/// Opens durability directories and validates their invariants.
#[derive(Debug, Clone)]
pub struct RecoveryCoordinator {
    root: PathBuf,
    options: RecoveryOptions,
}

impl RecoveryCoordinator {
    /// Coordinator over `root` with default options.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        RecoveryCoordinator {
            root: root.into(),
            options: RecoveryOptions::default(),
        }
    }

    /// Replace the options wholesale.
    pub fn options(mut self, options: RecoveryOptions) -> Self {
        self.options = options;
        self
    }

    /// Root directory of the durability state.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Stamp the run parameters on first use; reject a mismatch on reopen
    /// (re-batching a replay with a different punctuation interval would
    /// silently desynchronize epoch stamps from segment numbering).
    fn stamp_or_validate_meta(&self, expected: DurableMeta) -> StateResult<()> {
        let path = self.root.join(META_FILE);
        match fs::read(&path) {
            Ok(bytes) => {
                let found = DurableMeta::decode(&bytes)?;
                if found != expected {
                    return Err(StateError::InvalidDefinition(format!(
                        "durability directory {} was written with punctuation interval {}, \
                         but the engine is configured with {}; recover with the original \
                         interval (or use a fresh directory)",
                        self.root.display(),
                        found.punctuation_interval,
                        expected.punctuation_interval
                    )));
                }
                Ok(())
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                fs::create_dir_all(&self.root)?;
                fs::write(&path, expected.encode())?;
                Ok(())
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Open the directory: restore-able checkpoint, segments to replay, and
    /// a live [`DurableLog`].  Works identically on a fresh directory (no
    /// checkpoint, no segments) and after a crash at any point.
    pub fn open(&self) -> StateResult<RecoveredState> {
        if let Some(expected) = self.options.meta {
            self.stamp_or_validate_meta(expected)?;
        }
        let checkpointer = Checkpointer::new(
            self.root.join(CHECKPOINT_SUBDIR),
            self.options.retain.max(1),
        )?;
        let latest = checkpointer.latest_checkpoint()?;
        let (snapshot, manifest) = match latest {
            None => (None, None),
            Some(Checkpoint { manifest, snapshot }) => (Some(snapshot), manifest),
        };
        let covered_epoch: Option<u64> = manifest.map(|m| m.epoch);

        // The checkpoint's covered epoch is the numbering floor: even when
        // truncation has emptied the WAL directory, epoch numbering must
        // resume at `covered + 1`, never restart at 0 (re-used low epochs
        // would be mistaken for checkpoint-covered on the next recovery and
        // silently truncated).
        let floor = covered_epoch.map_or(0, |c| c + 1);
        let mut wal = SegmentedWal::open(self.root.join(WAL_SUBDIR), self.options.fsync, floor)?;
        wal.set_group_commit(self.options.group);
        // Finish a truncation the crash interrupted: segments the checkpoint
        // covers are redundant.
        if let Some(epoch) = covered_epoch {
            wal.truncate_through(epoch)?;
        }

        let mut sealed_segments = Vec::new();
        let mut pending_segment = None;
        for info in wal::list_segments(wal.directory())? {
            if covered_epoch.is_some_and(|c| info.epoch <= c) {
                continue; // already truncated above; be tolerant of races
            }
            if info.sealed {
                sealed_segments.push(info);
            } else {
                pending_segment = Some(info);
            }
        }
        if snapshot.is_some()
            && manifest.is_none()
            && (!sealed_segments.is_empty() || pending_segment.is_some())
        {
            return Err(StateError::Corrupted(
                "checkpoint carries no epoch manifest but WAL segments exist; \
                 cannot tell which segments it covers"
                    .to_owned(),
            ));
        }
        // The surviving epochs must be dense: checkpoint epoch + 1, +2, ...
        // up to the tail.  A gap means a segment vanished and replay would
        // silently skip its events.
        let mut expected = covered_epoch.map_or(0, |c| c + 1);
        for info in &sealed_segments {
            if info.epoch != expected {
                return Err(StateError::Corrupted(format!(
                    "WAL epoch gap: expected segment {expected}, found {}",
                    info.epoch
                )));
            }
            expected += 1;
        }
        if let Some(info) = &pending_segment {
            if info.epoch != expected {
                return Err(StateError::Corrupted(format!(
                    "WAL epoch gap: expected tail segment {expected}, found {}",
                    info.epoch
                )));
            }
        }

        let base = manifest.map_or(RecoveredProgress::default(), |m| RecoveredProgress {
            events: m.events,
            committed: m.committed,
            rejected: m.rejected,
        });
        let epoch_base = covered_epoch.map_or(0, |c| c + 1);
        let sealed_count = sealed_segments.len() as u64;
        Ok(RecoveredState {
            snapshot,
            sealed_segments,
            pending_segment,
            log: DurableLog {
                wal: Arc::new(Mutex::new(wal)),
                checkpointer,
                base,
                epoch_base,
                checkpoint_every: self.options.checkpoint_every.max(1),
                // Everything below this is sealed on disk: the checkpoint-
                // covered epochs plus the surviving (dense) sealed segments.
                sealed_below: AtomicU64::new(epoch_base + sealed_count),
                executor: None,
                progress: Arc::new((Mutex::new(GroupProgress::default()), Condvar::new())),
            },
        })
    }
}

/// The live durability handle of an engine run.
///
/// Appends/seals come from the ingestion thread; checkpoints and truncation
/// from the executor leader at the end-of-batch barrier.  When a
/// [`FlushExecutor`] is attached, full group-commit windows are written (and
/// synced, per policy) on its writer thread while the ingestion thread keeps
/// buffering the next window; at most one window is in flight, and `seal`
/// drains the pipeline before stamping the batch durable.
pub struct DurableLog {
    wal: Arc<Mutex<SegmentedWal>>,
    checkpointer: Checkpointer,
    base: RecoveredProgress,
    epoch_base: u64,
    checkpoint_every: u64,
    /// Exclusive upper bound of the epochs whose segments are sealed on
    /// disk.  A checkpoint may only cover sealed epochs: stamping a manifest
    /// for an epoch whose seal *failed* would raise the recovery floor past
    /// an unsealed tail and brick the directory.
    sealed_below: AtomicU64,
    /// Background writer for full group-commit windows; `None` flushes
    /// inline on the appending thread.
    executor: Option<Arc<dyn FlushExecutor>>,
    /// Submitted/completed window counters plus the latched first error.
    progress: Arc<(Mutex<GroupProgress>, Condvar)>,
}

impl std::fmt::Debug for DurableLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableLog")
            .field("checkpointer", &self.checkpointer)
            .field("base", &self.base)
            .field("epoch_base", &self.epoch_base)
            .field("checkpoint_every", &self.checkpoint_every)
            .field("sealed_below", &self.sealed_below)
            .field("has_executor", &self.executor.is_some())
            .finish_non_exhaustive()
    }
}

impl DurableLog {
    /// Progress already covered by the restored checkpoint (zero on a fresh
    /// directory).
    pub fn base(&self) -> RecoveredProgress {
        self.base
    }

    /// Durable epoch of the session's first batch: the session's punctuation
    /// sequence `s` executes as durable epoch `epoch_base() + s`.
    pub fn epoch_base(&self) -> u64 {
        self.epoch_base
    }

    /// Whether the batch of durable epoch `epoch` should be followed by a
    /// checkpoint (every `checkpoint_every` batches, on absolute epochs so
    /// the cadence survives restarts).
    pub fn should_checkpoint(&self, epoch: u64) -> bool {
        (epoch + 1).is_multiple_of(self.checkpoint_every)
    }

    /// Attach the background writer for full group-commit windows.  Called
    /// once by the engine before the log is shared; without it, windows
    /// flush inline on the appending thread (tooling, tests).
    pub fn attach_group_executor(&mut self, executor: Arc<dyn FlushExecutor>) {
        self.executor = Some(executor);
    }

    /// Append one event to the active WAL segment (creating it if needed).
    ///
    /// The frame is encoded straight into the writer's reusable buffer; if
    /// that fills the group-commit window, the window is handed to the
    /// attached [`FlushExecutor`] (or flushed inline when none is attached).
    pub fn append<P: WalPayload>(&self, payload: &P) -> StateResult<()> {
        let mut wal = self.wal.lock();
        let window_full = wal.append_deferred(|buf| payload.encode_wal(buf))?;
        if !window_full {
            return Ok(());
        }
        if self.executor.is_none() {
            return wal.flush_window();
        }
        let window = wal.take_window()?;
        drop(wal);
        if let Some(window) = window {
            self.submit_window(window)?;
        }
        Ok(())
    }

    /// Hand one full window to the writer thread, first waiting out the
    /// previous one (at most one window is in flight — natural backpressure
    /// when the disk cannot keep up with ingestion).
    fn submit_window(&self, window: wal::PendingWindow) -> StateResult<()> {
        let executor = self.executor.as_ref().expect("checked by caller");
        self.drain_in_flight()?;
        {
            let (lock, _) = &*self.progress;
            lock.lock().submitted += 1;
        }
        let wal = Arc::clone(&self.wal);
        let progress = Arc::clone(&self.progress);
        executor.submit(Box::new(move || {
            let failure = match window.commit() {
                Ok((buf, sync_ns)) => {
                    let mut wal = wal.lock();
                    wal.recycle_window_buffer(buf);
                    wal.note_offline_sync(sync_ns);
                    None
                }
                Err(e) => {
                    // The file may hold a torn frame; appending behind it
                    // would corrupt the tail.
                    wal.lock().poison();
                    Some(e.to_string())
                }
            };
            let (lock, cvar) = &*progress;
            let mut p = lock.lock();
            if p.error.is_none() {
                p.error = failure;
            }
            p.completed += 1;
            cvar.notify_all();
        }));
        Ok(())
    }

    /// Wait until every submitted window has committed; surface the first
    /// writer-thread failure as an I/O error.
    fn drain_in_flight(&self) -> StateResult<()> {
        if self.executor.is_none() {
            return Ok(());
        }
        let (lock, cvar) = &*self.progress;
        let mut p = lock.lock();
        while p.completed < p.submitted {
            cvar.wait(&mut p);
        }
        if let Some(e) = p.error.as_ref() {
            return Err(StateError::Io(format!(
                "WAL group-commit write failed: {e}"
            )));
        }
        Ok(())
    }

    /// Seal the active segment at a punctuation boundary; returns its epoch.
    ///
    /// Drains the in-flight window first — the seal marker must land behind
    /// every event frame — then flushes the buffered remainder, syncs, and
    /// renames (the WAL writer does all three).  Only after the covering
    /// sync does the batch count as acked-durable.
    pub fn seal(&self) -> StateResult<u64> {
        self.drain_in_flight()?;
        let epoch = self.wal.lock().seal()?;
        self.sealed_below.fetch_max(epoch + 1, Ordering::Release);
        Ok(epoch)
    }

    /// Write an epoch-stamped checkpoint of `store` and truncate every WAL
    /// segment the checkpoint covers.  Called by the executor leader at the
    /// end-of-batch barrier, where the store is quiescent by construction.
    ///
    /// Refuses to checkpoint an epoch whose WAL segment never sealed (a
    /// failed seal leaves the batch input only in the unsealed tail): a
    /// manifest for it would raise the recovery floor past the tail and make
    /// the directory unrecoverable.  The batch stays covered by a future
    /// successful seal or by replay of the tail.
    pub fn checkpoint(
        &self,
        store: &StateStore,
        manifest: CheckpointManifest,
    ) -> StateResult<PathBuf> {
        let epoch = manifest.epoch;
        let sealed_below = self.sealed_below.load(Ordering::Acquire);
        if epoch >= sealed_below {
            return Err(StateError::InvalidDefinition(format!(
                "refusing to checkpoint epoch {epoch}: its WAL segment has not sealed \
                 (sealed epochs end below {sealed_below})"
            )));
        }
        let path = self.checkpointer.write_checkpoint(&Checkpoint {
            manifest: Some(manifest),
            snapshot: StoreSnapshot::capture(store),
        })?;
        // Only after the checkpoint is durably renamed may its segments go.
        self.wal.lock().truncate_through(epoch)?;
        Ok(path)
    }

    /// Bytes appended to the WAL through this log instance.
    pub fn wal_bytes(&self) -> u64 {
        self.wal.lock().bytes_written()
    }

    /// Cumulative WAL activity counters (windows, fsyncs, seals,
    /// truncations).  The engine drains these as deltas into its metrics
    /// hub at batch boundaries.
    pub fn wal_stats(&self) -> wal::WalStats {
        self.wal.lock().stats()
    }

    /// Events sitting in the active (unsealed) segment.
    pub fn pending_records(&self) -> u64 {
        self.wal.lock().pending_records()
    }

    /// The underlying checkpointer (for inspection in tests and tools).
    pub fn checkpointer(&self) -> &Checkpointer {
        &self.checkpointer
    }
}

impl Drop for DurableLog {
    /// Let the in-flight window land before the WAL's own drop flushes the
    /// buffered remainder behind it — frames must stay in append order even
    /// on the shutdown path.
    fn drop(&mut self) {
        let (lock, cvar) = &*self.progress;
        let mut p = lock.lock();
        while p.completed < p.submitted {
            cvar.wait(&mut p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use tstream_state::{TableBuilder, Value};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tstream-coordinator-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_store() -> std::sync::Arc<StateStore> {
        let table = TableBuilder::new("t")
            .extend((0..8u64).map(|k| (k, Value::Long(0))))
            .build()
            .unwrap();
        StateStore::new(vec![table]).unwrap()
    }

    fn append_event(log: &DurableLog, value: u64) {
        log.append(&value).unwrap();
    }

    #[test]
    fn fresh_directory_opens_empty() {
        let dir = temp_dir("fresh");
        let state = RecoveryCoordinator::new(&dir).open().unwrap();
        assert!(state.snapshot.is_none());
        assert!(state.sealed_segments.is_empty());
        assert!(state.pending_segment.is_none());
        assert_eq!(state.log.epoch_base(), 0);
        assert_eq!(state.log.base(), RecoveredProgress::default());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_truncates_covered_segments_and_advances_the_base() {
        let dir = temp_dir("truncate");
        let store = sample_store();
        let state = RecoveryCoordinator::new(&dir).open().unwrap();
        let log = state.log;
        for epoch in 0..3u64 {
            append_event(&log, epoch);
            assert_eq!(log.seal().unwrap(), epoch);
        }
        log.checkpoint(
            &store,
            CheckpointManifest {
                epoch: 1,
                events: 2,
                committed: 2,
                rejected: 0,
            },
        )
        .unwrap();
        drop(log);

        // Reopen: the checkpoint covers epochs <= 1, segment 2 survives.
        let state = RecoveryCoordinator::new(&dir).open().unwrap();
        assert!(state.snapshot.is_some());
        let epochs: Vec<u64> = state.sealed_segments.iter().map(|s| s.epoch).collect();
        assert_eq!(epochs, vec![2]);
        assert_eq!(state.log.epoch_base(), 2);
        assert_eq!(
            state.log.base(),
            RecoveredProgress {
                events: 2,
                committed: 2,
                rejected: 0
            }
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn pending_tail_segments_survive_reopen() {
        let dir = temp_dir("pending");
        {
            let state = RecoveryCoordinator::new(&dir).open().unwrap();
            append_event(&state.log, 1);
            state.log.seal().unwrap();
            append_event(&state.log, 2);
            // crash mid-batch: no seal
        }
        let state = RecoveryCoordinator::new(&dir).open().unwrap();
        assert_eq!(state.sealed_segments.len(), 1);
        let pending = state.pending_segment.expect("tail must survive");
        assert_eq!(pending.epoch, 1);
        let decoded = wal::read_segment::<u64>(&pending.path).unwrap();
        assert_eq!(decoded.events, vec![2]);
        // And the log keeps appending to that very segment.
        assert_eq!(state.log.pending_records(), 1);
        append_event(&state.log, 3);
        assert_eq!(state.log.seal().unwrap(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn epoch_gaps_are_rejected() {
        let dir = temp_dir("gap");
        {
            let state = RecoveryCoordinator::new(&dir).open().unwrap();
            for epoch in 0..3u64 {
                append_event(&state.log, epoch);
                state.log.seal().unwrap();
            }
        }
        // Delete the middle segment: replay would silently skip its events.
        fs::remove_file(dir.join(WAL_SUBDIR).join("segment-000000000001.twal")).unwrap();
        assert!(matches!(
            RecoveryCoordinator::new(&dir).open(),
            Err(StateError::Corrupted(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_cadence_follows_absolute_epochs() {
        let dir = temp_dir("cadence");
        let state = RecoveryCoordinator::new(&dir)
            .options(RecoveryOptions {
                checkpoint_every: 3,
                ..RecoveryOptions::default()
            })
            .open()
            .unwrap();
        let decisions: Vec<bool> = (0..7).map(|e| state.log.should_checkpoint(e)).collect();
        assert_eq!(
            decisions,
            vec![false, false, true, false, false, true, false]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn epoch_numbering_survives_a_fully_truncated_wal() {
        // checkpoint covers epoch 1 and truncation removed every segment;
        // reopening must resume numbering at 2, not restart at 0 (restarted
        // low epochs would be mistaken for covered and truncated on the
        // *next* recovery).
        let dir = temp_dir("full-truncation");
        let store = sample_store();
        {
            let state = RecoveryCoordinator::new(&dir).open().unwrap();
            for epoch in 0..2u64 {
                append_event(&state.log, epoch);
                state.log.seal().unwrap();
            }
            state
                .log
                .checkpoint(
                    &store,
                    CheckpointManifest {
                        epoch: 1,
                        events: 2,
                        committed: 2,
                        rejected: 0,
                    },
                )
                .unwrap();
        }
        let state = RecoveryCoordinator::new(&dir).open().unwrap();
        assert!(state.sealed_segments.is_empty());
        assert_eq!(state.log.epoch_base(), 2);
        append_event(&state.log, 9);
        assert_eq!(
            state.log.seal().unwrap(),
            2,
            "numbering resumes after the checkpoint"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_parameter_meta_is_stamped_and_validated() {
        let dir = temp_dir("meta");
        let meta = |interval: u64| {
            RecoveryCoordinator::new(&dir).options(RecoveryOptions {
                meta: Some(DurableMeta {
                    punctuation_interval: interval,
                }),
                ..RecoveryOptions::default()
            })
        };
        meta(100).open().unwrap(); // stamps
        meta(100).open().unwrap(); // same interval: fine
        match meta(50).open() {
            Err(StateError::InvalidDefinition(msg)) => {
                assert!(msg.contains("100") && msg.contains("50"), "{msg}");
            }
            other => panic!("expected InvalidDefinition, got {other:?}"),
        }
        // Tooling without meta skips the check.
        RecoveryCoordinator::new(&dir).open().unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_manifestless_checkpoint_with_any_wal_data_is_rejected() {
        // A legacy (v1, no-manifest) checkpoint cannot say which epochs it
        // covers, so replaying *any* surviving WAL data on top of it —
        // sealed segments or just the unsealed tail — could double-apply.
        for tail_only in [false, true] {
            let dir = temp_dir(&format!("manifestless-{tail_only}"));
            {
                let state = RecoveryCoordinator::new(&dir).open().unwrap();
                append_event(&state.log, 1);
                if !tail_only {
                    state.log.seal().unwrap();
                }
                state
                    .log
                    .checkpointer()
                    .write_snapshot(&StoreSnapshot::capture(&sample_store()))
                    .unwrap();
            }
            assert!(
                matches!(
                    RecoveryCoordinator::new(&dir).open(),
                    Err(StateError::Corrupted(_))
                ),
                "tail_only = {tail_only}"
            );
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn reopen_after_interrupted_truncation_converges() {
        let dir = temp_dir("idempotent");
        let store = sample_store();
        {
            let state = RecoveryCoordinator::new(&dir).open().unwrap();
            for epoch in 0..2u64 {
                append_event(&state.log, epoch);
                state.log.seal().unwrap();
            }
            // Checkpoint epoch 1 but "crash" before truncation finishes:
            // write the checkpoint file directly, leaving both segments.
            state
                .log
                .checkpointer()
                .write_checkpoint(&Checkpoint {
                    manifest: Some(CheckpointManifest {
                        epoch: 1,
                        events: 2,
                        committed: 2,
                        rejected: 0,
                    }),
                    snapshot: StoreSnapshot::capture(&store),
                })
                .unwrap();
        }
        let state = RecoveryCoordinator::new(&dir).open().unwrap();
        assert!(
            state.sealed_segments.is_empty(),
            "covered segments are deleted on open"
        );
        assert_eq!(state.log.epoch_base(), 2);
        assert!(wal::list_segments(&dir.join(WAL_SUBDIR))
            .unwrap()
            .is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
