//! # tstream-recovery
//!
//! The crash-recovery subsystem: a segmented, punctuation-aligned
//! **write-ahead input log** plus the coordinator that ties it to the
//! epoch-stamped checkpoints of `tstream-state`.
//!
//! Section IV-D of the paper observes that the punctuation boundary is a
//! natural quiescent point for durability: every transaction of the batch
//! has either committed or aborted and no version chains are live.  The
//! `Checkpointer` already snapshots the committed state there — but a
//! snapshot alone cannot recover a *run*: every event pushed after the last
//! checkpoint would be lost.  This crate closes that loop:
//!
//! * [`wal::SegmentedWal`] — input events are appended to the active WAL
//!   segment *before* they are routed; the segment seals exactly when the
//!   punctuation closes the batch, so one sealed segment corresponds to one
//!   executed batch (epoch);
//! * [`coordinator::DurableLog`] — the shared handle the engine uses: append
//!   and seal from the ingestion thread, checkpoint-and-truncate from the
//!   executor leader.  After a checkpoint for epoch `e` is durable, every
//!   sealed segment with epoch `<= e` is redundant and deleted;
//! * [`coordinator::RecoveryCoordinator`] — opens a durability directory
//!   after a crash (or for the first time): restores the newest checkpoint,
//!   lists the surviving segments to replay, finishes half-sealed segments,
//!   and hands back a [`coordinator::DurableLog`] ready for live appends.
//!
//! Replays go through the engine's normal streaming-session path (this crate
//! only stores and returns bytes), which is what makes recovery *exactly
//! once*: the restored snapshot is the state after epoch `e`, replayed
//! segments re-execute epochs `e+1..`, and re-executing from a snapshot is
//! idempotent — crash during recovery and the same procedure converges.

#![warn(missing_docs)]

pub mod coordinator;
pub mod wal;

pub use coordinator::{
    DurableLog, DurableMeta, FlushExecutor, PointInTime, RecoveredProgress, RecoveredState,
    RecoveryCoordinator, RecoveryOptions, RetentionPin, ShipSink,
};
pub use wal::{
    list_segments, read_segment, sealed_segment_name, DecodedSegment, FsyncPolicy,
    GroupCommitConfig, PendingWindow, SegmentInfo, SegmentedWal, WalPayload, WalStats,
};
