//! The segmented, punctuation-aligned write-ahead input log.
//!
//! Every input event is appended to the **active segment** before it is
//! routed to an executor; the segment **seals** exactly when the punctuation
//! closes the batch.  One sealed segment therefore corresponds to one
//! executed batch — its file name carries the batch's durable **epoch** —
//! which is what lets recovery replay surviving segments as whole batches
//! and lets a checkpoint for epoch `e` truncate every segment `<= e`.
//!
//! On-disk layout (all integers little-endian):
//!
//! ```text
//! directory/  segment-000000000000.twal        sealed epoch 0
//!             segment-000000000001.twal        sealed epoch 1
//!             segment-000000000002.twal.open   active (tail) segment
//!
//! segment  := header frame*
//! header   := "TWAL" version_digit u64:epoch
//! frame    := 0x01 u32:len payload_bytes      one input event
//!           | 0xFF u64:record_count           seal marker (last frame)
//! ```
//!
//! A crash can leave a torn frame at the tail of the *active* segment; the
//! complete prefix is replayed and the torn bytes are truncated when the
//! segment is reopened (the event was never acknowledged to the producer).
//! A sealed segment with a torn frame is corruption.  A crash between
//! writing the seal marker and the rename is healed on open: a `.open` file
//! that ends with a valid seal marker is renamed into place.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use tstream_obs::Stopwatch;
use tstream_state::codec::Reader;
use tstream_state::{StateError, StateResult};

/// Magic prefix of every WAL segment; an ASCII-digit version byte follows.
pub const WAL_MAGIC: &[u8; 4] = b"TWAL";

/// Newest WAL format version this build can decode (and the one it writes).
pub const WAL_VERSION: u8 = 1;

/// File extension of sealed segments.
pub const SEGMENT_EXTENSION: &str = "twal";

/// Extension suffix of the active (unsealed) segment.
pub const OPEN_SUFFIX: &str = ".open";

const FRAME_EVENT: u8 = 0x01;
const FRAME_SEAL: u8 = 0xFF;

/// When the log forces data to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Never fsync; rely on the OS to flush.  Fastest, weakest: a machine
    /// crash (not just a process crash) can lose recently sealed batches.
    Never,
    /// Fsync when a segment seals — once per punctuation batch.  The
    /// default: a sealed (checkpointable, replayable) batch is always
    /// durable, while per-event appends stay cheap.
    #[default]
    OnSeal,
    /// Fsync after every appended event.  Strongest, slowest.
    Always,
}

impl FsyncPolicy {
    /// Label used in reports and config dumps.
    pub fn label(&self) -> &'static str {
        match self {
            FsyncPolicy::Never => "never",
            FsyncPolicy::OnSeal => "on-seal",
            FsyncPolicy::Always => "always",
        }
    }
}

/// Bounds of one **group-commit window**.
///
/// Appended events accumulate in a writer-owned frame buffer; the buffer is
/// flushed to the segment file (and, under [`FsyncPolicy::Always`], fsynced)
/// when either bound is reached, so the cost of a `write` syscall — and of a
/// sync — is amortized over the whole window instead of being paid per
/// event.  Under `Always` an event is **acked by the group sync that covers
/// it**: a crash can lose at most the tail of the current (un-synced)
/// window, which no caller was told is durable.  Sealing always flushes and
/// (per policy) syncs whatever is buffered, so a sealed batch is never
/// partial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupCommitConfig {
    /// Flush when this many events are buffered.
    pub window_events: u64,
    /// Flush when the buffered frames reach this many bytes.
    pub window_bytes: u64,
}

impl Default for GroupCommitConfig {
    fn default() -> Self {
        GroupCommitConfig {
            window_events: 128,
            window_bytes: 32 * 1024,
        }
    }
}

/// Cumulative WAL activity counters.
///
/// Accumulated as plain integers under the owner's (`DurableLog`'s) mutex —
/// the WAL itself never touches atomics or an observability handle — and
/// drained as deltas into the engine's metrics hub at batch boundaries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Group-commit windows flushed (inline or handed off).
    pub windows: u64,
    /// `fsync` (`sync_data`) calls issued.
    pub fsyncs: u64,
    /// Nanoseconds spent inside those syncs.
    pub fsync_ns: u64,
    /// Segments sealed.
    pub seals: u64,
    /// Sealed segments removed by checkpoint truncation.
    pub truncated_segments: u64,
}

impl WalStats {
    /// Field-wise `self - prev` (saturating), for delta draining against a
    /// cached previous snapshot.
    pub fn delta_since(&self, prev: &WalStats) -> WalStats {
        WalStats {
            windows: self.windows.saturating_sub(prev.windows),
            fsyncs: self.fsyncs.saturating_sub(prev.fsyncs),
            fsync_ns: self.fsync_ns.saturating_sub(prev.fsync_ns),
            seals: self.seals.saturating_sub(prev.seals),
            truncated_segments: self
                .truncated_segments
                .saturating_sub(prev.truncated_segments),
        }
    }
}

/// A full group-commit window handed off for out-of-line writing: the frames
/// to append, a duplicated handle of the active segment file, and whether
/// the policy wants the window synced.  Produced by
/// [`SegmentedWal::take_window`]; consumed by [`PendingWindow::commit`] on
/// whatever thread performs the I/O (the engine's WAL-writer thread in
/// production).
#[derive(Debug)]
pub struct PendingWindow {
    frames: Vec<u8>,
    file: File,
    sync: bool,
}

impl PendingWindow {
    /// Write (and per policy sync) the window.  Returns the drained frame
    /// buffer — so the owner can hand it back via
    /// [`SegmentedWal::recycle_window_buffer`] — and the nanoseconds spent
    /// in the sync (`None` when the policy wanted none), which the owner
    /// feeds back via [`SegmentedWal::note_offline_sync`].
    pub fn commit(mut self) -> std::io::Result<(Vec<u8>, Option<u64>)> {
        self.file.write_all(&self.frames)?;
        let mut sync_ns = None;
        if self.sync {
            let sw = Stopwatch::start();
            self.file.sync_data()?;
            sync_ns = Some(sw.elapsed_ns());
        }
        Ok((self.frames, sync_ns))
    }
}

/// How a payload type serialises itself into (and out of) WAL frames.
///
/// Implementations reuse the primitives of [`tstream_state::codec`]; the
/// framing (length prefix, seal markers, headers) is owned by this module,
/// so an implementation only encodes its own fields.
pub trait WalPayload: Sized {
    /// Append the encoded payload onto `out`.
    fn encode_wal(&self, out: &mut Vec<u8>);
    /// Decode one payload; must consume exactly the bytes `encode_wal`
    /// produced (the caller verifies the frame is fully consumed).
    fn decode_wal(reader: &mut Reader<'_>) -> StateResult<Self>;
}

/// One segment file on disk, as discovered by a directory scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentInfo {
    /// Durable epoch (batch number) the segment covers.
    pub epoch: u64,
    /// Path of the segment file.
    pub path: PathBuf,
    /// Whether the segment is sealed (complete batch) or the active tail.
    pub sealed: bool,
}

/// A fully decoded segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedSegment<P> {
    /// Durable epoch (batch number) the segment covers.
    pub epoch: u64,
    /// The events of the segment, in append order.
    pub events: Vec<P>,
    /// Whether the segment was sealed.  An unsealed segment yields its
    /// complete frame prefix; a torn tail frame is skipped.
    pub sealed: bool,
}

fn sealed_name(epoch: u64) -> String {
    format!("segment-{epoch:012}.{SEGMENT_EXTENSION}")
}

/// File name a sealed segment of `epoch` carries (`segment-<epoch>.twal`).
///
/// Exposed so shipping and mirroring code can address a sealed segment — or
/// write a received one under its canonical name — without reimplementing
/// the layout.
pub fn sealed_segment_name(epoch: u64) -> String {
    sealed_name(epoch)
}

fn open_name(epoch: u64) -> String {
    format!("{}{OPEN_SUFFIX}", sealed_name(epoch))
}

/// Parse `segment-<epoch>.twal[.open]`; `None` for foreign files.
fn parse_segment_name(name: &str) -> Option<(u64, bool)> {
    let rest = name.strip_prefix("segment-")?;
    if let Some(digits) = rest.strip_suffix(&format!(".{SEGMENT_EXTENSION}")) {
        return Some((digits.parse().ok()?, true));
    }
    let digits = rest.strip_suffix(&format!(".{SEGMENT_EXTENSION}{OPEN_SUFFIX}"))?;
    Some((digits.parse().ok()?, false))
}

/// List every segment of `directory`, sealed and open, sorted by epoch.
pub fn list_segments(directory: &Path) -> StateResult<Vec<SegmentInfo>> {
    let mut found = Vec::new();
    if !directory.exists() {
        return Ok(found);
    }
    for entry in fs::read_dir(directory)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if let Some((epoch, sealed)) = parse_segment_name(name) {
            found.push(SegmentInfo {
                epoch,
                path,
                sealed,
            });
        }
    }
    found.sort_by_key(|s| s.epoch);
    Ok(found)
}

/// Result of structurally scanning one segment's bytes.
struct SegmentScan {
    epoch: u64,
    records: u64,
    /// Byte length of the valid prefix (header + complete frames); anything
    /// past it is a torn tail.
    valid_len: u64,
    sealed: bool,
}

/// Scan a segment's frames without decoding payloads.
///
/// `expect_sealed` tightens the rules for sealed files: a missing seal
/// marker or torn tail there is corruption, while the active segment merely
/// ends at its last complete frame.
fn scan_segment(bytes: &[u8], expect_sealed: bool) -> StateResult<SegmentScan> {
    let mut reader = Reader::new(bytes);
    reader.versioned_header(WAL_MAGIC, WAL_VERSION, "WAL segment")?;
    let epoch = reader.u64()?;
    let mut records = 0u64;
    let mut valid_len = (bytes.len() - reader.remaining()) as u64;
    loop {
        if reader.remaining() == 0 {
            break;
        }
        let before_frame = reader.remaining();
        match reader.u8()? {
            FRAME_EVENT => {
                if reader.remaining() < 4 {
                    break; // torn length prefix
                }
                let len = reader.u32()? as usize;
                if reader.remaining() < len {
                    break; // torn payload
                }
                reader.skip(len)?;
                records += 1;
                valid_len += (before_frame - reader.remaining()) as u64;
            }
            FRAME_SEAL => {
                if reader.remaining() < 8 {
                    break; // torn seal marker
                }
                let count = reader.u64()?;
                if count != records {
                    if expect_sealed {
                        return Err(StateError::Corrupted(format!(
                            "WAL seal marker claims {count} records, segment has {records}"
                        )));
                    }
                    break; // garbage at the tail that happens to look like a marker
                }
                if reader.remaining() != 0 {
                    if expect_sealed {
                        return Err(StateError::Corrupted(format!(
                            "{} trailing bytes after WAL seal marker",
                            reader.remaining()
                        )));
                    }
                    break;
                }
                return Ok(SegmentScan {
                    epoch,
                    records,
                    valid_len: bytes.len() as u64,
                    sealed: true,
                });
            }
            tag => {
                if expect_sealed {
                    return Err(StateError::Corrupted(format!(
                        "unknown WAL frame tag {tag:#04x}"
                    )));
                }
                // The active segment's appends are not necessarily fsynced:
                // a machine crash can persist the file size without the data
                // (zero-filled blocks), so arbitrary garbage after the last
                // complete frame is a torn tail, not corruption.
                break;
            }
        }
    }
    if expect_sealed {
        return Err(StateError::Corrupted(
            "sealed WAL segment is missing its seal marker".to_owned(),
        ));
    }
    Ok(SegmentScan {
        epoch,
        records,
        valid_len,
        sealed: false,
    })
}

/// Decode a segment file's events.
///
/// Sealed segments must be structurally perfect; the active segment yields
/// its complete frame prefix (a torn tail frame — the event whose append the
/// crash interrupted, never acknowledged — is dropped).
pub fn read_segment<P: WalPayload>(path: &Path) -> StateResult<DecodedSegment<P>> {
    let bytes = fs::read(path)?;
    let expect_sealed = path.extension().and_then(|e| e.to_str()) == Some(SEGMENT_EXTENSION);
    let scan = scan_segment(&bytes, expect_sealed)?;
    let mut reader = Reader::new(&bytes[..scan.valid_len as usize]);
    reader.versioned_header(WAL_MAGIC, WAL_VERSION, "WAL segment")?;
    let _epoch = reader.u64()?;
    let mut events = Vec::with_capacity(scan.records as usize);
    for _ in 0..scan.records {
        match reader.u8()? {
            FRAME_EVENT => {
                let len = reader.u32()? as usize;
                let before = reader.remaining();
                let event = P::decode_wal(&mut reader)?;
                let consumed = before - reader.remaining();
                if consumed != len {
                    return Err(StateError::Corrupted(format!(
                        "WAL event frame declared {len} payload bytes, decoder consumed {consumed}"
                    )));
                }
                events.push(event);
            }
            tag => {
                return Err(StateError::Corrupted(format!(
                    "expected WAL event frame, found tag {tag:#04x}"
                )));
            }
        }
    }
    Ok(DecodedSegment {
        epoch: scan.epoch,
        events,
        sealed: scan.sealed,
    })
}

struct ActiveSegment {
    file: File,
    path: PathBuf,
    epoch: u64,
    records: u64,
}

/// The writer side of the log: one active segment at a time, sealed at
/// punctuation, plus maintenance (truncation, reopen-after-crash).
///
/// Not internally synchronized — the owner (`DurableLog`) wraps it in a
/// mutex, since appends come from the ingestion thread while truncation
/// comes from the executor leader.
pub struct SegmentedWal {
    directory: PathBuf,
    fsync: FsyncPolicy,
    group: GroupCommitConfig,
    active: Option<ActiveSegment>,
    next_epoch: u64,
    bytes_written: u64,
    /// Reusable frame buffer: appends encode into it in place (no per-event
    /// allocation, no per-event `write` syscall); it drains to the file once
    /// per group-commit window and at seal.
    frame_buf: Vec<u8>,
    /// Events currently sitting in `frame_buf`.
    buffered_records: u64,
    /// Drained window buffer handed back for reuse (ping-pong with
    /// `frame_buf` when windows are written out-of-line).
    spare_buf: Option<Vec<u8>>,
    /// Set when a seal failed mid-way: the tail file may carry a partial
    /// seal marker, so appends are refused until the directory is reopened.
    poisoned: bool,
    /// Cumulative activity counters (see [`WalStats`]).
    stats: WalStats,
}

impl std::fmt::Debug for SegmentedWal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentedWal")
            .field("directory", &self.directory)
            .field("fsync", &self.fsync)
            .field("active_epoch", &self.active.as_ref().map(|a| a.epoch))
            .field("next_epoch", &self.next_epoch)
            .finish()
    }
}

impl SegmentedWal {
    /// Open (or create) the log at `directory`.
    ///
    /// `first_epoch` is the numbering floor: the epoch a checkpoint already
    /// covers, plus one (`0` with no covering checkpoint).  It matters when
    /// a checkpoint has truncated *every* sealed segment — the directory
    /// alone then carries no epoch information, and numbering must resume at
    /// the floor, not restart at zero (a restarted log that re-used low
    /// epochs would label live batches as checkpoint-covered, and the next
    /// recovery would silently truncate them).
    ///
    /// Crash healing happens here: a `.open` file that already ends with a
    /// valid seal marker is renamed into its sealed name (the crash hit
    /// between marker and rename); an unsealed tail segment is truncated to
    /// its last complete frame and reopened for further appends.
    pub fn open(
        directory: impl Into<PathBuf>,
        fsync: FsyncPolicy,
        first_epoch: u64,
    ) -> StateResult<Self> {
        let directory = directory.into();
        fs::create_dir_all(&directory)?;
        let mut sealed_max: Option<u64> = None;
        let mut tail: Option<(u64, PathBuf, SegmentScan)> = None;
        for info in list_segments(&directory)? {
            if info.sealed {
                sealed_max = Some(sealed_max.map_or(info.epoch, |m| m.max(info.epoch)));
                continue;
            }
            let scan = scan_segment(&fs::read(&info.path)?, false)?;
            if scan.epoch != info.epoch {
                return Err(StateError::Corrupted(format!(
                    "WAL segment {} carries epoch {} in its header",
                    info.path.display(),
                    scan.epoch
                )));
            }
            if scan.sealed {
                // Heal a crash between seal marker and rename.
                let sealed_path = directory.join(sealed_name(info.epoch));
                fs::rename(&info.path, &sealed_path)?;
                sealed_max = Some(sealed_max.map_or(info.epoch, |m| m.max(info.epoch)));
                continue;
            }
            if tail.is_some() {
                return Err(StateError::Corrupted(
                    "multiple open WAL segments; refusing to guess the tail".to_owned(),
                ));
            }
            tail = Some((info.epoch, info.path, scan));
        }

        let mut wal = SegmentedWal {
            directory,
            fsync,
            group: GroupCommitConfig::default(),
            active: None,
            next_epoch: sealed_max.map_or(first_epoch, |m| (m + 1).max(first_epoch)),
            bytes_written: 0,
            frame_buf: Vec::new(),
            buffered_records: 0,
            spare_buf: None,
            poisoned: false,
            stats: WalStats::default(),
        };
        if let Some((epoch, path, scan)) = tail {
            if epoch != wal.next_epoch {
                return Err(StateError::Corrupted(format!(
                    "open WAL segment carries epoch {epoch}, expected {} \
                     (sealed segments end at {sealed_max:?}, numbering floor {first_epoch})",
                    wal.next_epoch
                )));
            }
            let file = OpenOptions::new().write(true).open(&path)?;
            file.set_len(scan.valid_len)?; // drop the torn tail frame, if any
            drop(file);
            let file = OpenOptions::new().append(true).open(&path)?;
            wal.active = Some(ActiveSegment {
                file,
                path,
                epoch,
                records: scan.records,
            });
            wal.next_epoch = epoch + 1;
        }
        Ok(wal)
    }

    /// Directory the segments live in.
    pub fn directory(&self) -> &Path {
        &self.directory
    }

    /// Epoch of the active segment, if one is open.
    pub fn active_epoch(&self) -> Option<u64> {
        self.active.as_ref().map(|a| a.epoch)
    }

    /// Events sitting in the active segment.
    pub fn pending_records(&self) -> u64 {
        self.active.as_ref().map_or(0, |a| a.records)
    }

    /// Epoch the next freshly created segment will carry.
    pub fn next_epoch(&self) -> u64 {
        self.next_epoch
    }

    /// Bytes appended through this writer instance (frames + headers).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Cumulative activity counters of this writer instance.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// Fold the sync timing of an out-of-line window commit (reported by
    /// [`PendingWindow::commit`]) back into the counters.
    pub fn note_offline_sync(&mut self, sync_ns: Option<u64>) {
        if let Some(ns) = sync_ns {
            self.stats.fsyncs += 1;
            self.stats.fsync_ns += ns;
        }
    }

    /// Replace the group-commit window bounds (defaults otherwise).
    pub fn set_group_commit(&mut self, group: GroupCommitConfig) {
        self.group = group;
    }

    /// Current group-commit window bounds.
    pub fn group_commit(&self) -> GroupCommitConfig {
        self.group
    }

    /// Append one encoded event to the active segment, creating the segment
    /// if this is the first event since the last seal.  The frame lands in
    /// the reusable in-memory buffer; when the group-commit window fills,
    /// the buffer is flushed (and under [`FsyncPolicy::Always`] synced)
    /// inline.
    pub fn append(&mut self, payload: &[u8]) -> StateResult<()> {
        let full = self.append_deferred(|buf| buf.extend_from_slice(payload))?;
        if full {
            self.flush_window()?;
        }
        Ok(())
    }

    /// Buffer one event frame, encoding the payload directly into the frame
    /// buffer via `encode` (no intermediate allocation).  Returns whether
    /// the group-commit window is now full; the caller then either calls
    /// [`SegmentedWal::flush_window`] inline or hands the window to another
    /// thread via [`SegmentedWal::take_window`].
    pub fn append_deferred(&mut self, encode: impl FnOnce(&mut Vec<u8>)) -> StateResult<bool> {
        if self.poisoned {
            return Err(StateError::Io(
                "WAL poisoned by an earlier failed seal; reopen the directory to recover"
                    .to_owned(),
            ));
        }
        if self.active.is_none() {
            let epoch = self.next_epoch;
            let path = self.directory.join(open_name(epoch));
            let mut header = Vec::with_capacity(16);
            header.extend_from_slice(WAL_MAGIC);
            header.push(b'0' + WAL_VERSION);
            header.extend_from_slice(&epoch.to_le_bytes());
            let mut file = OpenOptions::new()
                .create(true)
                .truncate(true)
                .write(true)
                .open(&path)?;
            file.write_all(&header)?;
            self.bytes_written += header.len() as u64;
            self.active = Some(ActiveSegment {
                file,
                path,
                epoch,
                records: 0,
            });
            self.next_epoch = epoch + 1;
        }
        let active = self.active.as_mut().expect("just ensured");
        let buf = &mut self.frame_buf;
        buf.push(FRAME_EVENT);
        let len_at = buf.len();
        buf.extend_from_slice(&[0u8; 4]);
        encode(buf);
        let payload_len = buf.len() - len_at - 4;
        buf[len_at..len_at + 4].copy_from_slice(&(payload_len as u32).to_le_bytes());
        active.records += 1;
        self.buffered_records += 1;
        self.bytes_written += (5 + payload_len) as u64;
        Ok(self.buffered_records >= self.group.window_events
            || self.frame_buf.len() as u64 >= self.group.window_bytes)
    }

    /// Flush the buffered window to the segment file with one `write`, and
    /// force it to disk under [`FsyncPolicy::Always`].  A failed flush
    /// poisons the writer — the file may hold a torn frame, and appending
    /// behind it would corrupt the tail.
    pub fn flush_window(&mut self) -> StateResult<()> {
        if self.frame_buf.is_empty() {
            return Ok(());
        }
        let Some(active) = self.active.as_mut() else {
            return Ok(());
        };
        let stats = &mut self.stats;
        let fsync = self.fsync;
        let outcome = (|| {
            active.file.write_all(&self.frame_buf)?;
            if fsync == FsyncPolicy::Always {
                let sw = Stopwatch::start();
                active.file.sync_data()?;
                stats.fsyncs += 1;
                stats.fsync_ns += sw.elapsed_ns();
            }
            stats.windows += 1;
            Ok(())
        })();
        self.frame_buf.clear();
        self.buffered_records = 0;
        if outcome.is_err() {
            self.poison();
        }
        outcome
    }

    /// Hand the buffered window off for out-of-line writing: the frames move
    /// out (the spare buffer, if any, slides in so appends keep a warm
    /// allocation) together with a duplicated file handle.  Returns `None`
    /// when nothing is buffered.  The caller owns ordering: no other write
    /// to the segment may happen until [`PendingWindow::commit`] ran.
    pub fn take_window(&mut self) -> StateResult<Option<PendingWindow>> {
        if self.frame_buf.is_empty() {
            return Ok(None);
        }
        let Some(active) = self.active.as_ref() else {
            return Ok(None);
        };
        let file = active.file.try_clone()?;
        let spare = self.spare_buf.take().unwrap_or_default();
        let frames = std::mem::replace(&mut self.frame_buf, spare);
        self.buffered_records = 0;
        self.stats.windows += 1;
        Ok(Some(PendingWindow {
            frames,
            file,
            sync: self.fsync == FsyncPolicy::Always,
        }))
    }

    /// Hand a drained window buffer back for reuse by the next window.
    pub fn recycle_window_buffer(&mut self, mut buf: Vec<u8>) {
        buf.clear();
        self.spare_buf = Some(buf);
    }

    /// Poison the writer: the tail file is in an unknown state (torn frame,
    /// partial seal marker), so appends and seals are refused until the
    /// directory is reopened and healed.
    pub fn poison(&mut self) {
        self.poisoned = true;
        self.active = None;
        self.frame_buf.clear();
        self.buffered_records = 0;
    }

    /// Seal the active segment at a punctuation boundary: flush the buffered
    /// window, write the seal marker, force the file to disk (per policy),
    /// rename it into its sealed name, and fsync the directory so the rename
    /// itself is durable.  Returns the sealed epoch.
    ///
    /// Without the directory sync a crash after `seal` returned could
    /// resurrect the segment under its unsealed name — losing an epoch the
    /// caller was told is durable — so it is skipped only under
    /// [`FsyncPolicy::Never`], mirroring the checkpoint path's file+dir
    /// fsync.
    ///
    /// A failed seal **poisons** the writer: the segment may hold a partial
    /// or un-renamed seal marker, so further appends (which would interleave
    /// event frames behind it and corrupt the tail) are refused until the
    /// directory is reopened — `open` truncates a torn marker back to the
    /// last complete event and heals a fully written one.
    pub fn seal(&mut self) -> StateResult<u64> {
        if self.poisoned {
            return Err(StateError::Io(
                "WAL poisoned by an earlier failed seal; reopen the directory to recover"
                    .to_owned(),
            ));
        }
        let Some(active) = self.active.as_mut() else {
            return Err(StateError::InvalidDefinition(
                "sealing a WAL with no active segment".to_owned(),
            ));
        };
        let mut marker = [0u8; 9];
        marker[0] = FRAME_SEAL;
        marker[1..].copy_from_slice(&active.records.to_le_bytes());
        let directory = &self.directory;
        let frame_buf = &mut self.frame_buf;
        let fsync = self.fsync;
        let stats = &mut self.stats;
        let sealed = (|| {
            if !frame_buf.is_empty() {
                active.file.write_all(frame_buf)?;
                stats.windows += 1;
            }
            active.file.write_all(&marker)?;
            if fsync != FsyncPolicy::Never {
                let sw = Stopwatch::start();
                active.file.sync_data()?;
                stats.fsyncs += 1;
                stats.fsync_ns += sw.elapsed_ns();
            }
            let sealed_path = directory.join(sealed_name(active.epoch));
            fs::rename(&active.path, &sealed_path)?;
            if fsync != FsyncPolicy::Never {
                let sw = Stopwatch::start();
                File::open(directory)?.sync_all()?;
                stats.fsyncs += 1;
                stats.fsync_ns += sw.elapsed_ns();
            }
            stats.seals += 1;
            Ok(active.epoch)
        })();
        self.frame_buf.clear();
        self.buffered_records = 0;
        match sealed {
            Ok(epoch) => {
                self.bytes_written += marker.len() as u64;
                self.active = None;
                Ok(epoch)
            }
            Err(e) => {
                self.poisoned = true;
                self.active = None;
                Err(e)
            }
        }
    }

    /// Delete every sealed segment with epoch `<= epoch` (they are covered
    /// by a durable checkpoint).  The active segment is never touched.
    /// Returns how many segments were removed.
    pub fn truncate_through(&mut self, epoch: u64) -> StateResult<usize> {
        let mut removed = 0;
        for info in list_segments(&self.directory)? {
            if !info.sealed || info.epoch > epoch {
                continue;
            }
            match fs::remove_file(&info.path) {
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                other => other?,
            }
            removed += 1;
        }
        self.stats.truncated_segments += removed as u64;
        Ok(removed)
    }
}

impl Drop for SegmentedWal {
    /// Best-effort flush of a still-buffered window so a clean shutdown
    /// (process exit without seal) leaves the complete frames on the file
    /// for tail replay.  No sync: an unsealed tail was never acked as
    /// durable beyond the policy's per-window guarantee, and erroring in
    /// drop would mask the original failure.
    fn drop(&mut self) {
        if self.poisoned || self.frame_buf.is_empty() {
            return;
        }
        if let Some(active) = self.active.as_mut() {
            let _ = active.file.write_all(&self.frame_buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    impl WalPayload for u64 {
        fn encode_wal(&self, out: &mut Vec<u8>) {
            out.extend_from_slice(&self.to_le_bytes());
        }
        fn decode_wal(reader: &mut Reader<'_>) -> StateResult<Self> {
            reader.u64()
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tstream-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn append_u64(wal: &mut SegmentedWal, value: u64) {
        let mut buf = Vec::new();
        value.encode_wal(&mut buf);
        wal.append(&buf).unwrap();
    }

    #[test]
    fn segments_seal_at_batch_boundaries_and_replay_in_order() {
        let dir = temp_dir("roundtrip");
        let mut wal = SegmentedWal::open(&dir, FsyncPolicy::OnSeal, 0).unwrap();
        for batch in 0..3u64 {
            for i in 0..4u64 {
                append_u64(&mut wal, batch * 10 + i);
            }
            assert_eq!(wal.pending_records(), 4);
            assert_eq!(wal.seal().unwrap(), batch);
        }
        let segments = list_segments(&dir).unwrap();
        assert_eq!(segments.len(), 3);
        assert!(segments.iter().all(|s| s.sealed));
        for (i, info) in segments.iter().enumerate() {
            let decoded = read_segment::<u64>(&info.path).unwrap();
            assert_eq!(decoded.epoch, i as u64);
            assert!(decoded.sealed);
            assert_eq!(
                decoded.events,
                (0..4).map(|j| i as u64 * 10 + j).collect::<Vec<_>>()
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_continues_the_epoch_sequence() {
        let dir = temp_dir("reopen");
        {
            let mut wal = SegmentedWal::open(&dir, FsyncPolicy::Never, 0).unwrap();
            append_u64(&mut wal, 1);
            wal.seal().unwrap();
        }
        let mut wal = SegmentedWal::open(&dir, FsyncPolicy::Never, 0).unwrap();
        assert_eq!(wal.next_epoch(), 1);
        append_u64(&mut wal, 2);
        assert_eq!(wal.seal().unwrap(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unsealed_tail_is_reopened_for_append() {
        let dir = temp_dir("tail");
        {
            let mut wal = SegmentedWal::open(&dir, FsyncPolicy::Never, 0).unwrap();
            append_u64(&mut wal, 7);
            wal.seal().unwrap();
            append_u64(&mut wal, 8);
            append_u64(&mut wal, 9);
            // Dropped without seal: simulates a crash mid-batch.
        }
        let mut wal = SegmentedWal::open(&dir, FsyncPolicy::Never, 0).unwrap();
        assert_eq!(wal.active_epoch(), Some(1));
        assert_eq!(wal.pending_records(), 2);
        append_u64(&mut wal, 10);
        assert_eq!(wal.seal().unwrap(), 1);
        let segments = list_segments(&dir).unwrap();
        let decoded = read_segment::<u64>(&segments[1].path).unwrap();
        assert_eq!(decoded.events, vec![8, 9, 10]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_frames_are_truncated_on_reopen() {
        let dir = temp_dir("torn");
        {
            let mut wal = SegmentedWal::open(&dir, FsyncPolicy::Never, 0).unwrap();
            append_u64(&mut wal, 1);
            append_u64(&mut wal, 2);
        }
        // Corrupt the tail: half an event frame (tag + truncated length).
        let open_path = dir.join(open_name(0));
        let mut bytes = fs::read(&open_path).unwrap();
        bytes.extend_from_slice(&[FRAME_EVENT, 3, 0]);
        fs::write(&open_path, &bytes).unwrap();

        // The torn frame is invisible to readers and dropped on reopen.
        let decoded = read_segment::<u64>(&open_path).unwrap();
        assert_eq!(decoded.events, vec![1, 2]);
        assert!(!decoded.sealed);
        let mut wal = SegmentedWal::open(&dir, FsyncPolicy::Never, 0).unwrap();
        assert_eq!(wal.pending_records(), 2);
        append_u64(&mut wal, 3);
        wal.seal().unwrap();
        let decoded = read_segment::<u64>(&dir.join(sealed_name(0))).unwrap();
        assert_eq!(decoded.events, vec![1, 2, 3]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_filled_tail_garbage_is_truncated_not_fatal() {
        // Appends are not fsynced under OnSeal/Never, so a machine crash can
        // persist the tail file's *size* without its data — ext4 leaves
        // zero-filled blocks.  0x00 is not a frame tag; the tail must still
        // reopen with its complete prefix instead of failing as corrupted.
        let dir = temp_dir("zero-fill");
        {
            let mut wal = SegmentedWal::open(&dir, FsyncPolicy::Never, 0).unwrap();
            append_u64(&mut wal, 1);
            append_u64(&mut wal, 2);
        }
        let open_path = dir.join(open_name(0));
        let mut bytes = fs::read(&open_path).unwrap();
        bytes.extend_from_slice(&[0u8; 512]);
        fs::write(&open_path, &bytes).unwrap();

        let decoded = read_segment::<u64>(&open_path).unwrap();
        assert_eq!(decoded.events, vec![1, 2]);
        let mut wal = SegmentedWal::open(&dir, FsyncPolicy::Never, 0).unwrap();
        assert_eq!(wal.pending_records(), 2);
        append_u64(&mut wal, 3);
        wal.seal().unwrap();
        let decoded = read_segment::<u64>(&dir.join(sealed_name(0))).unwrap();
        assert_eq!(decoded.events, vec![1, 2, 3]);

        // The same garbage in a *sealed* segment stays fatal.
        let sealed_path = dir.join(sealed_name(0));
        let mut bytes = fs::read(&sealed_path).unwrap();
        bytes.extend_from_slice(&[0u8; 16]);
        fs::write(&sealed_path, &bytes).unwrap();
        assert!(matches!(
            read_segment::<u64>(&sealed_path),
            Err(StateError::Corrupted(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_crash_between_seal_marker_and_rename_is_healed() {
        let dir = temp_dir("heal");
        {
            let mut wal = SegmentedWal::open(&dir, FsyncPolicy::Never, 0).unwrap();
            append_u64(&mut wal, 5);
        }
        // Hand-write the seal marker without renaming, as a crash would.
        let open_path = dir.join(open_name(0));
        let mut bytes = fs::read(&open_path).unwrap();
        bytes.push(FRAME_SEAL);
        bytes.extend_from_slice(&1u64.to_le_bytes());
        fs::write(&open_path, &bytes).unwrap();

        let wal = SegmentedWal::open(&dir, FsyncPolicy::Never, 0).unwrap();
        assert_eq!(wal.active_epoch(), None);
        assert_eq!(wal.next_epoch(), 1);
        let decoded = read_segment::<u64>(&dir.join(sealed_name(0))).unwrap();
        assert!(decoded.sealed);
        assert_eq!(decoded.events, vec![5]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_removes_covered_segments_only() {
        let dir = temp_dir("truncate");
        let mut wal = SegmentedWal::open(&dir, FsyncPolicy::Never, 0).unwrap();
        for batch in 0..4u64 {
            append_u64(&mut wal, batch);
            wal.seal().unwrap();
        }
        append_u64(&mut wal, 99); // active tail, epoch 4
        assert_eq!(wal.truncate_through(2).unwrap(), 3);
        let segments = list_segments(&dir).unwrap();
        let epochs: Vec<(u64, bool)> = segments.iter().map(|s| (s.epoch, s.sealed)).collect();
        assert_eq!(epochs, vec![(3, true), (4, false)]);
        // Idempotent: nothing left to remove below 2.
        assert_eq!(wal.truncate_through(2).unwrap(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sealed_segment_corruption_is_rejected() {
        let dir = temp_dir("corrupt");
        let mut wal = SegmentedWal::open(&dir, FsyncPolicy::Never, 0).unwrap();
        append_u64(&mut wal, 1);
        wal.seal().unwrap();
        let path = dir.join(sealed_name(0));
        let bytes = fs::read(&path).unwrap();

        // Truncated sealed file: missing seal marker.
        fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        assert!(matches!(
            read_segment::<u64>(&path),
            Err(StateError::Corrupted(_))
        ));

        // Wrong record count in the seal marker.
        let mut wrong = bytes.clone();
        let len = wrong.len();
        wrong[len - 8..].copy_from_slice(&9u64.to_le_bytes());
        fs::write(&path, &wrong).unwrap();
        assert!(matches!(
            read_segment::<u64>(&path),
            Err(StateError::Corrupted(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn future_wal_versions_are_rejected_with_a_clear_error() {
        let dir = temp_dir("version");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(sealed_name(0));
        let mut bytes = Vec::new();
        bytes.extend_from_slice(WAL_MAGIC);
        bytes.push(b'9');
        bytes.extend_from_slice(&0u64.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_segment::<u64>(&path),
            Err(StateError::UnsupportedVersion {
                artifact: "WAL segment",
                found: 9,
                ..
            })
        ));
        // The writer refuses to adopt the directory too.
        let renamed = dir.join(open_name(0));
        fs::rename(&path, &renamed).unwrap();
        assert!(matches!(
            SegmentedWal::open(&dir, FsyncPolicy::Never, 0),
            Err(StateError::UnsupportedVersion { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn the_numbering_floor_governs_an_emptied_directory() {
        // After a checkpoint truncated every sealed segment the directory is
        // empty; numbering must resume at the floor, not restart at 0.
        let dir = temp_dir("floor");
        {
            let mut wal = SegmentedWal::open(&dir, FsyncPolicy::Never, 7).unwrap();
            assert_eq!(wal.next_epoch(), 7);
            append_u64(&mut wal, 1);
            assert_eq!(wal.seal().unwrap(), 7);
            append_u64(&mut wal, 2); // unsealed tail, epoch 8
        }
        // Reopen after the covering checkpoint advanced to epoch 7: the
        // sealed segment is stale, the tail must still line up.
        let mut wal = SegmentedWal::open(&dir, FsyncPolicy::Never, 8).unwrap();
        assert_eq!(wal.active_epoch(), Some(8));
        wal.truncate_through(7).unwrap();
        append_u64(&mut wal, 3);
        assert_eq!(wal.seal().unwrap(), 8);

        // A floor *below* the on-disk state must not rewind numbering.
        let wal = SegmentedWal::open(&dir, FsyncPolicy::Never, 0).unwrap();
        assert_eq!(wal.next_epoch(), 9);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_tail_segment_below_the_floor_is_rejected() {
        // A tail carrying an epoch the checkpoint already covers means the
        // directory is inconsistent — replaying it would double-apply.
        let dir = temp_dir("floor-reject");
        {
            let mut wal = SegmentedWal::open(&dir, FsyncPolicy::Never, 0).unwrap();
            append_u64(&mut wal, 1); // tail epoch 0
        }
        assert!(matches!(
            SegmentedWal::open(&dir, FsyncPolicy::Never, 5),
            Err(StateError::Corrupted(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sealing_an_empty_wal_is_an_error() {
        let dir = temp_dir("empty-seal");
        let mut wal = SegmentedWal::open(&dir, FsyncPolicy::Never, 0).unwrap();
        assert!(wal.seal().is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_failed_seal_poisons_the_writer_and_reopen_recovers() {
        // Force the seal's rename to fail by stealing the open file from
        // under the writer.  The writer must then refuse further appends
        // (they would land behind a possibly-partial seal marker and corrupt
        // the tail) instead of opening a second `.open` segment.
        let dir = temp_dir("poison");
        let mut wal = SegmentedWal::open(&dir, FsyncPolicy::Never, 0).unwrap();
        append_u64(&mut wal, 1);
        let stolen = dir.join("stolen");
        fs::rename(dir.join(open_name(0)), &stolen).unwrap();
        assert!(wal.seal().is_err(), "rename target vanished");
        let mut buf = Vec::new();
        2u64.encode_wal(&mut buf);
        assert!(matches!(wal.append(&buf), Err(StateError::Io(_))));
        assert!(wal.seal().is_err(), "nothing active either");
        drop(wal);

        // Put the file back, as a crash-and-restart over a surviving tail
        // would see it; reopening recovers the complete prefix (the seal
        // marker was fully written here, so the segment heals to sealed).
        fs::rename(&stolen, dir.join(open_name(0))).unwrap();
        let wal = SegmentedWal::open(&dir, FsyncPolicy::Never, 0).unwrap();
        assert_eq!(wal.next_epoch(), 1, "healed seal marker counts as sealed");
        let decoded = read_segment::<u64>(&dir.join(sealed_name(0))).unwrap();
        assert_eq!(decoded.events, vec![1]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_stats_count_windows_fsyncs_seals_and_truncations() {
        let dir = temp_dir("stats");
        let mut wal = SegmentedWal::open(&dir, FsyncPolicy::OnSeal, 0).unwrap();
        assert_eq!(wal.stats(), WalStats::default());
        for batch in 0..2u64 {
            append_u64(&mut wal, batch);
            wal.seal().unwrap();
        }
        let s = wal.stats();
        assert_eq!(s.seals, 2);
        assert_eq!(s.windows, 2, "the sealed remainder counts as a window");
        // OnSeal: one data sync + one directory sync per seal.
        assert_eq!(s.fsyncs, 4);
        assert!(s.fsync_ns > 0);
        assert_eq!(wal.truncate_through(0).unwrap(), 1);
        assert_eq!(wal.stats().truncated_segments, 1);
        // Deltas compose against a cached snapshot.
        let delta = wal.stats().delta_since(&s);
        assert_eq!(delta.seals, 0);
        assert_eq!(delta.truncated_segments, 1);
        // Out-of-line sync feedback folds in.
        wal.note_offline_sync(Some(1_000));
        wal.note_offline_sync(None);
        assert_eq!(wal.stats().fsyncs, 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_always_appends_are_durable_and_readable() {
        let dir = temp_dir("fsync");
        let mut wal = SegmentedWal::open(&dir, FsyncPolicy::Always, 0).unwrap();
        for i in 0..5u64 {
            append_u64(&mut wal, i);
        }
        wal.seal().unwrap();
        assert!(wal.bytes_written() > 0);
        let decoded = read_segment::<u64>(&dir.join(sealed_name(0))).unwrap();
        assert_eq!(decoded.events, vec![0, 1, 2, 3, 4]);
        let _ = fs::remove_dir_all(&dir);
    }
}
