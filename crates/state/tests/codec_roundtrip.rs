//! Property tests for the durability codec: every encodable artifact —
//! [`Value`], [`StoreSnapshot`], [`Checkpoint`] — must decode back to an
//! equal value, consuming exactly the bytes it produced.  The WAL and the
//! checkpoint files both build on these primitives, so a codec asymmetry
//! here would silently corrupt recovery.

use std::collections::HashSet;

use proptest::prelude::*;
use tstream_state::checkpoint::{Checkpoint, CheckpointManifest, TableSnapshot};
use tstream_state::codec::{decode_value, encode_value, Reader};
use tstream_state::{StoreSnapshot, Value};

fn value_strategy() -> BoxedStrategy<Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Long),
        // Finite doubles only: the codec is bit-exact, but `Value`'s
        // equality (and this test's assertions) follow IEEE, so NaN would
        // fail reflexivity rather than the codec.
        (any::<i32>(), 1u32..1_000).prop_map(|(n, d)| Value::Double(n as f64 / d as f64)),
        proptest::collection::vec(any::<u8>(), 0..40).prop_map(|bytes| Value::Str(
            bytes
                .iter()
                .map(|b| (b % 94 + 32) as char)
                .collect::<String>()
                .into()
        )),
        proptest::collection::hash_set(any::<u64>(), 0..24).prop_map(Value::Set),
        (any::<i64>(), any::<i64>()).prop_map(|(a, b)| Value::Pair(a, b)),
    ]
    .boxed()
}

fn snapshot_strategy() -> BoxedStrategy<StoreSnapshot> {
    proptest::collection::vec(
        (
            proptest::collection::vec(any::<u8>(), 1..12),
            proptest::collection::vec((any::<u64>(), value_strategy()), 0..30),
        ),
        0..4,
    )
    .prop_map(|tables| StoreSnapshot {
        tables: tables
            .into_iter()
            .map(|(name_bytes, entries)| TableSnapshot {
                name: name_bytes.iter().map(|b| (b % 94 + 32) as char).collect(),
                entries,
            })
            .collect(),
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every `Value` round-trips through the codec, consuming exactly its
    /// own bytes (no over- or under-read that would corrupt a neighbour).
    #[test]
    fn value_encode_decode_round_trips(value in value_strategy()) {
        let mut buf = Vec::new();
        encode_value(&mut buf, &value);
        let mut reader = Reader::new(&buf);
        let decoded = decode_value(&mut reader).expect("decodable");
        prop_assert_eq!(reader.remaining(), 0, "every byte must be consumed");
        prop_assert_eq!(&decoded, &value);
        // Deterministic: re-encoding the decoded value is byte-identical
        // (sets are sorted before encoding).
        let mut re_encoded = Vec::new();
        encode_value(&mut re_encoded, &decoded);
        prop_assert_eq!(re_encoded, buf);
    }

    /// Truncating an encoded value anywhere yields `Corrupted`, never a
    /// panic or a bogus success that consumes the wrong byte count.
    #[test]
    fn truncated_values_never_panic(value in value_strategy(), cut in any::<u16>()) {
        let mut buf = Vec::new();
        encode_value(&mut buf, &value);
        if buf.len() > 1 {
            let cut = 1 + (cut as usize % (buf.len() - 1));
            let mut reader = Reader::new(&buf[..cut]);
            match decode_value(&mut reader) {
                // Variable-length payloads may decode a shorter prefix as a
                // (different) valid value; the reader must then still be
                // fully consumed or report corruption, never wander past.
                Ok(_) => prop_assert!(reader.remaining() < cut),
                Err(e) => prop_assert!(e.to_string().contains("corrupted")
                    || e.to_string().contains("unexpected end")
                    || e.to_string().contains("unknown")),
            }
        }
    }

    /// Whole snapshots round-trip: same tables, same order, same entries.
    #[test]
    fn store_snapshot_round_trips(snapshot in snapshot_strategy()) {
        let decoded = StoreSnapshot::decode(&snapshot.encode()).expect("decodable");
        prop_assert_eq!(decoded, snapshot);
    }

    /// Epoch-stamped checkpoints round-trip with their manifests.
    #[test]
    fn checkpoint_round_trips(
        snapshot in snapshot_strategy(),
        epoch in any::<u64>(),
        events in any::<u64>(),
        committed in any::<u64>(),
        rejected in any::<u64>(),
    ) {
        let checkpoint = Checkpoint {
            manifest: Some(CheckpointManifest { epoch, events, committed, rejected }),
            snapshot,
        };
        let decoded = Checkpoint::decode(&checkpoint.encode()).expect("decodable");
        prop_assert_eq!(decoded, checkpoint);
    }

    /// Set encoding is canonical regardless of insertion/iteration order.
    #[test]
    fn set_encoding_is_order_independent(ids in proptest::collection::vec(any::<u64>(), 0..32)) {
        let forward: HashSet<u64> = ids.iter().copied().collect();
        let reverse: HashSet<u64> = ids.iter().rev().copied().collect();
        let mut a = Vec::new();
        let mut b = Vec::new();
        encode_value(&mut a, &Value::Set(forward));
        encode_value(&mut b, &Value::Set(reverse));
        prop_assert_eq!(a, b);
    }
}
