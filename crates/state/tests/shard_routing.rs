//! Property-based tests for the shard layer's routing invariants:
//!
//! * every key maps to exactly one shard — deterministically, in range, and
//!   with the record physically resident in exactly that shard's slice;
//! * changing the shard count never loses or duplicates records — the same
//!   entries built at 1/2/4/8 shards produce identical key-sorted snapshots;
//! * `by_name` lookup agrees with sharded resolution — resolving a table by
//!   name and a record by key yields the same record (same address) the
//!   id-based sharded path yields.

use proptest::prelude::*;
use tstream_state::{ShardRouter, StateStore, TableBuilder, Value};

/// Deduplicate generated entries by key (table keys are unique by contract).
fn dedup_entries(entries: Vec<(u64, i64)>) -> Vec<(u64, Value)> {
    let mut seen = std::collections::HashSet::new();
    entries
        .into_iter()
        .filter(|(k, _)| seen.insert(*k))
        .map(|(k, v)| (k, Value::Long(v)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Routing is a pure function of (key, shard count): stable, in range,
    /// and every key of a built table is resident in exactly the shard the
    /// router names — and in no other.
    #[test]
    fn every_key_maps_to_exactly_one_shard(
        keys in proptest::collection::vec(any::<u64>(), 1..200),
        shards in 1u32..17,
    ) {
        let router = ShardRouter::new(shards).unwrap();
        let entries = dedup_entries(keys.iter().map(|&k| (k, k as i64)).collect());
        let table = TableBuilder::new("t")
            .extend(entries.clone())
            .build_sharded(shards)
            .unwrap();
        for (key, _) in &entries {
            let shard = router.shard_of(*key);
            prop_assert!(shard.0 < shards);
            prop_assert_eq!(shard, router.shard_of(*key));
            prop_assert_eq!(shard, table.shard_of(*key));
            // Resident in the named shard, absent from every other shard.
            let mut owners = 0usize;
            for candidate in router.all() {
                let resident = table.iter_shard(candidate).any(|(k, _)| k == *key);
                if resident {
                    prop_assert_eq!(candidate, shard, "key resident in a foreign shard");
                    owners += 1;
                }
            }
            prop_assert_eq!(owners, 1, "every key lives in exactly one shard");
        }
    }

    /// Re-laying out the same entries over different shard counts never loses
    /// or duplicates a record: total count and key-sorted snapshot agree with
    /// the single-shard layout, and per-shard record counts always sum to the
    /// total.
    #[test]
    fn shard_count_changes_never_lose_or_duplicate_records(
        entries in proptest::collection::vec((any::<u64>(), any::<i64>()), 1..300),
    ) {
        let entries = dedup_entries(entries);
        let reference = TableBuilder::new("t")
            .extend(entries.clone())
            .build_sharded(1)
            .unwrap();
        for shards in [2u32, 4, 8] {
            let table = TableBuilder::new("t")
                .extend(entries.clone())
                .build_sharded(shards)
                .unwrap();
            prop_assert_eq!(table.len(), entries.len());
            prop_assert_eq!(table.snapshot(), reference.snapshot());
            let per_shard: usize = (0..shards)
                .map(|s| table.shard_len(tstream_state::ShardId(s)))
                .sum();
            prop_assert_eq!(per_shard, entries.len());
        }
    }

    /// Name-based resolution and the sharded id/key path always reach the
    /// same record, and the store-level router agrees with each table's.
    #[test]
    fn by_name_lookup_agrees_with_sharded_resolution(
        keys in proptest::collection::vec(any::<u64>(), 1..150),
        shards in 1u32..9,
    ) {
        let entries = dedup_entries(keys.iter().map(|&k| (k, (k as i64).wrapping_mul(3))).collect());
        let table = TableBuilder::new("records").extend(entries.clone()).build().unwrap();
        let store = StateStore::with_shards(vec![table], shards).unwrap();
        prop_assert_eq!(store.num_shards(), shards);
        let id = store.table_id("records").unwrap();
        for (key, value) in &entries {
            let via_name = store.table_by_name("records").unwrap().get(*key).unwrap();
            let via_id = store.record(id, *key).unwrap();
            prop_assert!(
                std::ptr::eq(via_name, via_id),
                "name-based and id-based lookup must resolve to the same record"
            );
            prop_assert_eq!(via_id.read_committed(), value.clone());
            // Slot round trip through the shard-encoded slot space.
            let slot = store.table(id).slot_of(*key).unwrap();
            prop_assert!(std::ptr::eq(store.record_at(id, slot), via_id));
            prop_assert_eq!(store.table(id).key_at(slot), *key);
            // Store-level and table-level routing agree.
            prop_assert_eq!(store.shard_of(*key), store.table(id).shard_of(*key));
        }
    }
}
