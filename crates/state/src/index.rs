//! Sharded hash index mapping keys to record slots.
//!
//! Every state access goes through an index lookup; the paper's No-Lock
//! analysis (Section VI-D) identifies this lookup as the dominant remaining
//! cost once synchronisation is removed, so the reproduction keeps a real
//! index on the access path instead of assuming dense keys.

use std::collections::HashMap;

use parking_lot::RwLock;

use crate::Key;

/// Default number of shards; a power of two so shard selection is a mask.
pub const DEFAULT_SHARDS: usize = 64;

/// A sharded hash index from application key to record slot.
#[derive(Debug)]
pub struct ShardedIndex {
    shards: Vec<RwLock<HashMap<Key, u32>>>,
    mask: u64,
}

impl ShardedIndex {
    /// Creates an index with [`DEFAULT_SHARDS`] shards.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// Creates an index with a caller-chosen shard count (rounded up to a
    /// power of two).
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        ShardedIndex {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            mask: (shards - 1) as u64,
        }
    }

    #[inline]
    fn shard_of(&self, key: Key) -> usize {
        // Cheap avalanche so clustered keys spread across shards.
        let mut h = key;
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        (h & self.mask) as usize
    }

    /// Insert a key → slot mapping. Returns the previous slot if the key was
    /// already present.
    pub fn insert(&self, key: Key, slot: u32) -> Option<u32> {
        self.shards[self.shard_of(key)].write().insert(key, slot)
    }

    /// Look up the slot for `key`.
    pub fn lookup(&self, key: Key) -> Option<u32> {
        self.shards[self.shard_of(key)].read().get(&key).copied()
    }

    /// Whether the key is present.
    pub fn contains(&self, key: Key) -> bool {
        self.lookup(key).is_some()
    }

    /// Total number of indexed keys.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for ShardedIndex {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn insert_and_lookup() {
        let idx = ShardedIndex::new();
        assert!(idx.is_empty());
        for k in 0..1000u64 {
            assert_eq!(idx.insert(k, k as u32), None);
        }
        assert_eq!(idx.len(), 1000);
        for k in 0..1000u64 {
            assert_eq!(idx.lookup(k), Some(k as u32));
        }
        assert_eq!(idx.lookup(5000), None);
    }

    #[test]
    fn reinsert_returns_previous_slot() {
        let idx = ShardedIndex::with_shards(4);
        assert_eq!(idx.insert(7, 1), None);
        assert_eq!(idx.insert(7, 2), Some(1));
        assert_eq!(idx.lookup(7), Some(2));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let idx = ShardedIndex::with_shards(3);
        // 3 rounds up to 4 shards; behaviour must still be correct.
        for k in 0..100u64 {
            idx.insert(k, (k * 2) as u32);
        }
        for k in 0..100u64 {
            assert_eq!(idx.lookup(k), Some((k * 2) as u32));
        }
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let idx = Arc::new(ShardedIndex::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let idx = idx.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    let key = t * 1000 + i;
                    idx.insert(key, key as u32);
                    assert_eq!(idx.lookup(key), Some(key as u32));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(idx.len(), 8000);
    }
}
