//! Dynamically typed state values.

use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

use crate::error::{StateError, StateResult};

/// A single state cell.
///
/// The four benchmark applications of the paper only need a handful of value
/// shapes:
///
/// * GS — fixed-size string-ish records interpreted as numbers (we store a
///   64-bit integer plus padding bytes so record size matches the paper);
/// * SL — 64-bit account / asset balances;
/// * OB — price (long) and quantity (long) pairs;
/// * TP — average road speed (double) and a `HashSet` of vehicle ids.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum Value {
    /// Absent / uninitialised.
    #[default]
    Null,
    /// 64-bit signed integer (balances, quantities, prices, counters).
    Long(i64),
    /// 64-bit float (average road speed).
    Double(f64),
    /// Short string (GS payloads).  Reference-counted so that cloning a
    /// value — into an event blotter, a temporary version, or an undo
    /// record — is a refcount bump instead of a heap allocation; record
    /// payloads are immutable once constructed, so sharing is safe.
    Str(Arc<str>),
    /// Set of 64-bit ids (unique vehicles per segment in TP).
    Set(HashSet<u64>),
    /// A pair of longs, used by OB items (price, quantity) so a single record
    /// keeps both fields like the paper's 50-byte bidding item.
    Pair(i64, i64),
}

impl Value {
    /// Static name of the variant, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Long(_) => "long",
            Value::Double(_) => "double",
            Value::Str(_) => "str",
            Value::Set(_) => "set",
            Value::Pair(..) => "pair",
        }
    }

    /// Interpret as a long.
    pub fn as_long(&self) -> StateResult<i64> {
        match self {
            Value::Long(v) => Ok(*v),
            other => Err(StateError::TypeMismatch {
                expected: "long",
                found: other.type_name(),
            }),
        }
    }

    /// Interpret as a double (longs are widened).
    pub fn as_double(&self) -> StateResult<f64> {
        match self {
            Value::Double(v) => Ok(*v),
            Value::Long(v) => Ok(*v as f64),
            other => Err(StateError::TypeMismatch {
                expected: "double",
                found: other.type_name(),
            }),
        }
    }

    /// Interpret as a string slice.
    pub fn as_str(&self) -> StateResult<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(StateError::TypeMismatch {
                expected: "str",
                found: other.type_name(),
            }),
        }
    }

    /// Interpret as a set of ids.
    pub fn as_set(&self) -> StateResult<&HashSet<u64>> {
        match self {
            Value::Set(s) => Ok(s),
            other => Err(StateError::TypeMismatch {
                expected: "set",
                found: other.type_name(),
            }),
        }
    }

    /// Interpret as a (price, quantity)-style pair.
    pub fn as_pair(&self) -> StateResult<(i64, i64)> {
        match self {
            Value::Pair(a, b) => Ok((*a, *b)),
            other => Err(StateError::TypeMismatch {
                expected: "pair",
                found: other.type_name(),
            }),
        }
    }

    /// Approximate in-memory footprint in bytes, used to size workloads so the
    /// record sizes quoted in Section VI-A are honoured.
    pub fn approx_size(&self) -> usize {
        match self {
            Value::Null => 0,
            Value::Long(_) => 8,
            Value::Double(_) => 8,
            Value::Str(s) => s.len(),
            Value::Set(s) => 32 * (2 + s.len()),
            Value::Pair(..) => 16,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Long(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Set(s) => write!(f, "{{{} ids}}", s.len()),
            Value::Pair(a, b) => write!(f, "({a}, {b})"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Long(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(Arc::from(v))
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Value::from(7i64).as_long().unwrap(), 7);
        assert_eq!(Value::from(2.5f64).as_double().unwrap(), 2.5);
        assert_eq!(Value::from("abc").as_str().unwrap(), "abc");
        assert_eq!(Value::Pair(3, 4).as_pair().unwrap(), (3, 4));
    }

    #[test]
    fn long_widens_to_double() {
        assert_eq!(Value::Long(3).as_double().unwrap(), 3.0);
    }

    #[test]
    fn type_mismatch_is_reported() {
        let err = Value::Long(1).as_set().unwrap_err();
        match err {
            StateError::TypeMismatch { expected, found } => {
                assert_eq!(expected, "set");
                assert_eq!(found, "long");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn approx_sizes_match_paper_formulas() {
        // TP vehicle-count records: ~32 * (2 + |items|) bytes.
        let mut ids = HashSet::new();
        ids.insert(1);
        ids.insert(2);
        ids.insert(3);
        assert_eq!(Value::Set(ids).approx_size(), 32 * 5);
        assert_eq!(Value::Str("x".repeat(32).into()).approx_size(), 32);
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(Value::Long(5).to_string(), "5");
        assert_eq!(Value::Pair(1, 2).to_string(), "(1, 2)");
        assert_eq!(Value::Null.to_string(), "null");
    }
}
