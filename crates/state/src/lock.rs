//! Record-level locking primitives used by the baseline schemes.
//!
//! Two building blocks live here:
//!
//! * [`RecordLock`] — a queued shared/exclusive lock whose wait queue is
//!   ordered by transaction timestamp.  LOCK (S2PL) and PAT insert lock
//!   requests in timestamp order (their lockAhead / partition counters
//!   guarantee the insertion order) and later block on the grant;
//! * [`SeqGate`] — a monotonically increasing counter that threads can wait
//!   on.  It implements the paper's "monotonically increasing counters": the
//!   global lockAhead counter of LOCK, the per-partition counters of PAT and
//!   the per-state `lwm` counters of MVLK are all `SeqGate`s.

use std::collections::{BTreeMap, BTreeSet};

use parking_lot::{Condvar, Mutex};

use crate::Timestamp;

/// Locking mode requested by an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (read) access.
    Shared,
    /// Exclusive (write) access.
    Exclusive,
}

#[derive(Debug, Default)]
struct LockState {
    /// Timestamp currently holding the exclusive lock, if any.
    exclusive: Option<Timestamp>,
    /// Timestamps currently holding shared locks.
    shared: BTreeSet<Timestamp>,
    /// Requests not yet granted, ordered by timestamp.
    waiting: BTreeMap<Timestamp, LockMode>,
}

impl LockState {
    /// Grant every waiting request that is now compatible, in timestamp
    /// order, stopping at the first incompatible one (so grants never jump
    /// over an earlier conflicting request).
    fn promote(&mut self) {
        while let Some((&ts, &mode)) = self.waiting.iter().next() {
            match mode {
                LockMode::Shared => {
                    if self.exclusive.is_some() {
                        break;
                    }
                    self.shared.insert(ts);
                    self.waiting.remove(&ts);
                }
                LockMode::Exclusive => {
                    if self.exclusive.is_some() || !self.shared.is_empty() {
                        break;
                    }
                    self.exclusive = Some(ts);
                    self.waiting.remove(&ts);
                }
            }
        }
    }

    fn holds(&self, ts: Timestamp) -> bool {
        self.exclusive == Some(ts) || self.shared.contains(&ts)
    }
}

/// A queued shared/exclusive record lock granting requests in timestamp
/// order.
#[derive(Debug, Default)]
pub struct RecordLock {
    state: Mutex<LockState>,
    granted: Condvar,
}

impl RecordLock {
    /// Creates an unheld lock.
    pub fn new() -> Self {
        RecordLock {
            state: Mutex::new(LockState::default()),
            granted: Condvar::new(),
        }
    }

    /// Insert a lock request for transaction `ts` without blocking.
    ///
    /// The request may be granted immediately; either way, the caller later
    /// blocks in [`RecordLock::wait_granted`] before touching the record.
    /// Duplicate requests by the same transaction are upgraded: an exclusive
    /// request wins over a shared one.
    pub fn request(&self, ts: Timestamp, mode: LockMode) {
        let mut state = self.state.lock();
        if state.holds(ts) {
            // Upgrade a held shared lock to an exclusive request if needed.
            if mode == LockMode::Exclusive && state.exclusive != Some(ts) {
                state.shared.remove(&ts);
                state.waiting.insert(ts, LockMode::Exclusive);
            }
        } else {
            match state.waiting.get(&ts) {
                Some(LockMode::Exclusive) => {}
                _ => {
                    let existing = state.waiting.get(&ts).copied();
                    let mode = match (existing, mode) {
                        (Some(LockMode::Shared), LockMode::Exclusive) => LockMode::Exclusive,
                        (Some(existing), _) => existing,
                        (None, m) => m,
                    };
                    state.waiting.insert(ts, mode);
                }
            }
        }
        state.promote();
        if state.holds(ts) {
            self.granted.notify_all();
        }
    }

    /// Block until transaction `ts`'s request has been granted.
    pub fn wait_granted(&self, ts: Timestamp) {
        let mut state = self.state.lock();
        while !state.holds(ts) {
            self.granted.wait(&mut state);
        }
    }

    /// Returns `true` if transaction `ts` currently holds this lock.
    pub fn is_held_by(&self, ts: Timestamp) -> bool {
        self.state.lock().holds(ts)
    }

    /// Convenience: request and wait in one call.
    pub fn acquire(&self, ts: Timestamp, mode: LockMode) {
        self.request(ts, mode);
        self.wait_granted(ts);
    }

    /// Release whatever lock transaction `ts` holds (or cancel its pending
    /// request) and wake up waiters.
    pub fn release(&self, ts: Timestamp) {
        let mut state = self.state.lock();
        if state.exclusive == Some(ts) {
            state.exclusive = None;
        }
        state.shared.remove(&ts);
        state.waiting.remove(&ts);
        state.promote();
        drop(state);
        self.granted.notify_all();
    }
}

/// A monotonically increasing counter threads can wait on.
///
/// This is the "monotonically increasing counter" every prior scheme in the
/// paper synchronises on; waiting on it is exactly the *Sync* component of the
/// paper's time breakdown (Figure 9).
#[derive(Debug)]
pub struct SeqGate {
    value: Mutex<u64>,
    changed: Condvar,
}

impl Default for SeqGate {
    fn default() -> Self {
        Self::new(0)
    }
}

impl SeqGate {
    /// Creates a gate with the given initial value.
    pub fn new(initial: u64) -> Self {
        SeqGate {
            value: Mutex::new(initial),
            changed: Condvar::new(),
        }
    }

    /// Current value.
    pub fn current(&self) -> u64 {
        *self.value.lock()
    }

    /// Block until the gate value is `>= target`.
    pub fn wait_at_least(&self, target: u64) {
        let mut v = self.value.lock();
        while *v < target {
            self.changed.wait(&mut v);
        }
    }

    /// Block until the gate value equals `target` exactly.
    ///
    /// Used by LOCK's lockAhead process: the transaction with timestamp `t`
    /// may insert its locks only when the counter reaches `t`.
    pub fn wait_exact(&self, target: u64) {
        let mut v = self.value.lock();
        while *v != target {
            self.changed.wait(&mut v);
        }
    }

    /// Set the gate to `target` if it is larger than the current value and
    /// wake all waiters.
    pub fn advance_to(&self, target: u64) {
        let mut v = self.value.lock();
        if target > *v {
            *v = target;
        }
        drop(v);
        self.changed.notify_all();
    }

    /// Increment the gate by one and wake all waiters; returns the new value.
    pub fn advance(&self) -> u64 {
        let mut v = self.value.lock();
        *v += 1;
        let new = *v;
        drop(v);
        self.changed.notify_all();
        new
    }

    /// Reset to a specific value (used between batches / runs).
    pub fn reset(&self, value: u64) {
        let mut v = self.value.lock();
        *v = value;
        drop(v);
        self.changed.notify_all();
    }
}

#[cfg(test)]
mod tests {
    // These tests probe real timing (blocked-thread interleavings), so
    // they sleep deliberately; the workspace-wide sleep ban targets
    // production code.
    #![allow(clippy::disallowed_methods)]
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn shared_locks_coexist() {
        let lock = RecordLock::new();
        lock.acquire(1, LockMode::Shared);
        lock.acquire(2, LockMode::Shared);
        assert!(lock.is_held_by(1));
        assert!(lock.is_held_by(2));
        lock.release(1);
        lock.release(2);
    }

    #[test]
    fn exclusive_excludes_everyone() {
        let lock = Arc::new(RecordLock::new());
        lock.acquire(1, LockMode::Exclusive);
        assert!(lock.is_held_by(1));

        let l2 = lock.clone();
        let acquired = Arc::new(AtomicUsize::new(0));
        let a2 = acquired.clone();
        let handle = thread::spawn(move || {
            l2.acquire(2, LockMode::Exclusive);
            a2.store(1, Ordering::SeqCst);
            l2.release(2);
        });
        thread::sleep(Duration::from_millis(30));
        assert_eq!(acquired.load(Ordering::SeqCst), 0, "must still be blocked");
        lock.release(1);
        handle.join().unwrap();
        assert_eq!(acquired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn grants_respect_timestamp_order_for_conflicts() {
        // ts=1 holds exclusive; ts=2 (write) and ts=3 (read) wait.
        // When 1 releases, 2 must be granted before 3.
        let lock = Arc::new(RecordLock::new());
        lock.acquire(1, LockMode::Exclusive);
        lock.request(2, LockMode::Exclusive);
        lock.request(3, LockMode::Shared);

        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for (ts, mode) in [(2u64, LockMode::Exclusive), (3u64, LockMode::Shared)] {
            let lock = lock.clone();
            let order = order.clone();
            handles.push(thread::spawn(move || {
                lock.wait_granted(ts);
                order.lock().push(ts);
                thread::sleep(Duration::from_millis(10));
                lock.release(ts);
            }));
            let _ = mode;
        }
        thread::sleep(Duration::from_millis(20));
        lock.release(1);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock(), vec![2, 3]);
    }

    #[test]
    fn shared_then_exclusive_upgrade() {
        let lock = RecordLock::new();
        lock.acquire(5, LockMode::Shared);
        // Upgrade request from the same transaction.
        lock.request(5, LockMode::Exclusive);
        lock.wait_granted(5);
        assert!(lock.is_held_by(5));
        lock.release(5);
        assert!(!lock.is_held_by(5));
    }

    #[test]
    fn seq_gate_exact_and_at_least() {
        let gate = Arc::new(SeqGate::new(0));
        let g = gate.clone();
        let handle = thread::spawn(move || {
            g.wait_exact(3);
            g.advance(); // 4
        });
        gate.advance(); // 1
        gate.advance(); // 2
        gate.advance(); // 3
        handle.join().unwrap();
        gate.wait_at_least(4);
        assert_eq!(gate.current(), 4);
        gate.reset(0);
        assert_eq!(gate.current(), 0);
    }

    #[test]
    fn seq_gate_advance_to_is_monotone() {
        let gate = SeqGate::new(10);
        gate.advance_to(5);
        assert_eq!(gate.current(), 10);
        gate.advance_to(12);
        assert_eq!(gate.current(), 12);
    }
}
