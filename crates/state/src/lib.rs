//! # tstream-state
//!
//! The in-memory state store TStream runs on top of.  It plays the role the
//! Cavalia database plays in the paper's implementation (Section V): it owns
//! the shared mutable application state (tables of keyed records) and provides
//! the low-level machinery every concurrency-control scheme builds on:
//!
//! * [`Value`] — dynamically typed cell values (64-bit integers, doubles,
//!   short strings and hash sets, covering the state layouts of the four
//!   benchmark applications GS / SL / OB / TP);
//! * [`Record`] — one keyed state: the committed value, an optional committed
//!   multi-version chain (for MVLK), a temporary per-batch version list (for
//!   TStream's dynamic restructuring), a queued timestamp-ordered
//!   [`lock::RecordLock`], and a write watermark;
//! * [`Table`] / [`StateStore`] — collections of records reachable through a
//!   sharded hash [`index`], mirroring the index-lookup cost the paper calls
//!   out in its No-Lock analysis (Section VI-D);
//! * [`shard`] — the shard layer: a [`shard::ShardRouter`] maps every key to
//!   exactly one of `N` hash partitions, tables allocate their records
//!   per shard (each slice with its own key index and maintenance lock, so
//!   shard-level operations on unrelated shards never contend), and the chain
//!   pools / stream layer reuse the same router for shard-affine executor
//!   assignment.  `StateStore::with_shards` selects the shard count and
//!   rejects a zero count; snapshots are key-sorted so results compare equal
//!   across shard layouts;
//! * [`partition`] — hash partitioning of records used by the PAT scheme and,
//!   through [`shard::ShardRouter`], by the store's shard layer;
//! * [`codec`] / [`checkpoint`] — the durability layer of Section IV-D:
//!   binary snapshots of the committed state, written to disk at punctuation
//!   boundaries and recoverable after a crash.
//!
//! The store is deliberately scheme-agnostic: LOCK, MVLK, PAT and TStream all
//! drive it through the same handful of primitives, which is what lets the
//! engine swap schemes for the paper's comparisons.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod codec;
pub mod error;
pub mod index;
pub mod lock;
pub mod partition;
pub mod record;
pub mod root;
pub mod shard;
pub mod store;
pub mod table;
pub mod value;
pub mod version;

pub use checkpoint::{Checkpoint, CheckpointManifest, Checkpointer, StoreSnapshot, TableSnapshot};
pub use error::{StateError, StateResult};
pub use record::Record;
pub use root::state_root;
pub use shard::{ShardId, ShardRouter, MAX_SHARDS};
pub use store::{StateStore, TableId};
pub use table::{Table, TableBuilder};
pub use value::Value;
pub use version::VersionChain;

/// Keys are 64-bit identifiers. Applications with string keys hash them into
/// this space (see `tstream-apps`); the sharded index resolves them to record
/// slots.
pub type Key = u64;

/// Transaction / event timestamps. Dense, monotonically increasing per batch,
/// assigned by the progress controller (`tstream-stream`).
pub type Timestamp = u64;
