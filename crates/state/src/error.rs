//! Error types for state access.

use std::fmt;

/// Errors raised by the state store and by state accesses executed on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateError {
    /// The requested table does not exist.
    UnknownTable(String),
    /// The requested key is not present in the table.
    KeyNotFound {
        /// Table the lookup targeted.
        table: String,
        /// Missing key.
        key: u64,
    },
    /// A value of an unexpected type was found (e.g. asked for a long, found
    /// a set).
    TypeMismatch {
        /// What the caller expected.
        expected: &'static str,
        /// What was stored.
        found: &'static str,
    },
    /// A consistency condition failed (e.g. negative road speed, insufficient
    /// balance); the enclosing transaction must abort.
    ConsistencyViolation(String),
    /// The transaction was aborted (by itself or by the scheme).
    Aborted {
        /// Timestamp of the aborted transaction.
        timestamp: u64,
        /// Human-readable reason.
        reason: String,
    },
    /// A table was declared twice or records were inserted after sealing.
    InvalidDefinition(String),
    /// A filesystem operation of the durability layer failed.  The original
    /// `std::io::Error` is stringified so the error type stays cloneable and
    /// comparable.
    Io(String),
    /// A checkpoint file could not be decoded (truncated, wrong magic,
    /// unknown value tag...).
    Corrupted(String),
    /// A durability artifact (checkpoint, WAL segment) was written by a newer
    /// format version than this build understands.  Distinguished from
    /// [`StateError::Corrupted`] so operators see "upgrade the binary", not
    /// "the file is broken".
    UnsupportedVersion {
        /// What kind of artifact carried the version (e.g. "checkpoint",
        /// "WAL segment").
        artifact: &'static str,
        /// Version found in the file header.
        found: u8,
        /// Newest version this build can decode.
        supported: u8,
    },
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::UnknownTable(name) => write!(f, "unknown table `{name}`"),
            StateError::KeyNotFound { table, key } => {
                write!(f, "key {key} not found in table `{table}`")
            }
            StateError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            StateError::ConsistencyViolation(msg) => {
                write!(f, "consistency violation: {msg}")
            }
            StateError::Aborted { timestamp, reason } => {
                write!(f, "transaction {timestamp} aborted: {reason}")
            }
            StateError::InvalidDefinition(msg) => write!(f, "invalid definition: {msg}"),
            StateError::Io(msg) => write!(f, "durability I/O error: {msg}"),
            StateError::Corrupted(msg) => write!(f, "corrupted checkpoint: {msg}"),
            StateError::UnsupportedVersion {
                artifact,
                found,
                supported,
            } => write!(
                f,
                "{artifact} format version {found} is newer than the newest supported \
                 version {supported}; upgrade this binary to read it"
            ),
        }
    }
}

impl From<std::io::Error> for StateError {
    fn from(e: std::io::Error) -> Self {
        StateError::Io(e.to_string())
    }
}

impl std::error::Error for StateError {}

/// Convenient result alias used throughout the state crate.
pub type StateResult<T> = Result<T, StateError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = StateError::KeyNotFound {
            table: "accounts".into(),
            key: 99,
        };
        assert!(e.to_string().contains("accounts"));
        assert!(e.to_string().contains("99"));

        let e = StateError::TypeMismatch {
            expected: "long",
            found: "set",
        };
        assert!(e.to_string().contains("expected long"));

        let e = StateError::Aborted {
            timestamp: 7,
            reason: "insufficient balance".into(),
        };
        assert!(e.to_string().contains("7"));
        assert!(e.to_string().contains("insufficient balance"));
    }
}
