//! Multi-version value chains.
//!
//! Two of the schemes keep more than one version of a state value:
//!
//! * **MVLK** keeps committed versions so reads with a timestamp larger than
//!   the state's `lwm` can proceed without blocking on concurrent writers
//!   (Section II-C.2);
//! * **TStream** keeps *temporary* versions during a batch whenever other
//!   operation chains depend on a state, so dependent reads obtain the value
//!   "as of" their timestamp even if the producing chain has already run ahead
//!   (Section IV-C.2).
//!
//! Both uses share this `VersionChain`: an append-mostly list of
//! `(write-timestamp, value)` entries plus a base value that represents the
//! state before the oldest retained version.

use crate::value::Value;
use crate::Timestamp;

/// A chain of versions for a single record.
#[derive(Debug, Clone, Default)]
pub struct VersionChain {
    /// Versions sorted by ascending write timestamp.
    versions: Vec<(Timestamp, Value)>,
}

impl VersionChain {
    /// Creates an empty chain.
    pub fn new() -> Self {
        VersionChain {
            versions: Vec::new(),
        }
    }

    /// Number of retained versions.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// Whether any versions are retained.
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// Install a version written at `ts`.
    ///
    /// Timestamps normally arrive in increasing order per record (the writer
    /// of a record processes its chain in timestamp order), but out-of-order
    /// installs are tolerated and kept sorted so the structure is robust to
    /// scheme-specific quirks.
    pub fn install(&mut self, ts: Timestamp, value: Value) {
        match self.versions.last() {
            Some((last, _)) if *last <= ts => self.versions.push((ts, value)),
            _ => {
                let pos = self.versions.partition_point(|(t, _)| *t <= ts);
                self.versions.insert(pos, (ts, value));
            }
        }
    }

    /// The value visible to a reader with timestamp `ts`: the version with the
    /// largest write timestamp strictly smaller than `ts`, or `None` if every
    /// retained version is newer (the caller then falls back to the committed
    /// base value).
    pub fn visible_before(&self, ts: Timestamp) -> Option<&Value> {
        let pos = self.versions.partition_point(|(t, _)| *t < ts);
        if pos == 0 {
            None
        } else {
            Some(&self.versions[pos - 1].1)
        }
    }

    /// The newest version, if any.
    pub fn latest(&self) -> Option<(Timestamp, &Value)> {
        self.versions.last().map(|(t, v)| (*t, v))
    }

    /// Remove a version previously installed at exactly `ts` (used when a
    /// transaction aborts after some of its writes were applied).
    pub fn remove_at(&mut self, ts: Timestamp) -> Option<Value> {
        let pos = self.versions.iter().position(|(t, _)| *t == ts)?;
        Some(self.versions.remove(pos).1)
    }

    /// Garbage-collect everything but the newest version and return it.
    ///
    /// TStream calls this when switching back to compute mode: "all versions
    /// of a state except the latest are expired and can be safely garbage
    /// collected" (Section IV-C.2).
    pub fn collapse(&mut self) -> Option<(Timestamp, Value)> {
        let last = self.versions.pop();
        self.versions.clear();
        last
    }

    /// Drop every retained version.
    pub fn clear(&mut self) {
        self.versions.clear();
    }

    /// Iterate over `(timestamp, value)` pairs in ascending timestamp order.
    pub fn iter(&self) -> impl Iterator<Item = (Timestamp, &Value)> {
        self.versions.iter().map(|(t, v)| (*t, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visibility_picks_largest_smaller_timestamp() {
        let mut chain = VersionChain::new();
        chain.install(10, Value::Long(100));
        chain.install(20, Value::Long(200));
        chain.install(30, Value::Long(300));

        assert_eq!(chain.visible_before(5), None);
        assert_eq!(chain.visible_before(11), Some(&Value::Long(100)));
        assert_eq!(chain.visible_before(20), Some(&Value::Long(100)));
        assert_eq!(chain.visible_before(25), Some(&Value::Long(200)));
        assert_eq!(chain.visible_before(1000), Some(&Value::Long(300)));
    }

    #[test]
    fn out_of_order_installs_stay_sorted() {
        let mut chain = VersionChain::new();
        chain.install(30, Value::Long(3));
        chain.install(10, Value::Long(1));
        chain.install(20, Value::Long(2));
        let ts: Vec<u64> = chain.iter().map(|(t, _)| t).collect();
        assert_eq!(ts, vec![10, 20, 30]);
    }

    #[test]
    fn collapse_keeps_only_latest() {
        let mut chain = VersionChain::new();
        chain.install(1, Value::Long(1));
        chain.install(2, Value::Long(2));
        let latest = chain.collapse().unwrap();
        assert_eq!(latest, (2, Value::Long(2)));
        assert!(chain.is_empty());
    }

    #[test]
    fn remove_at_supports_abort_rollback() {
        let mut chain = VersionChain::new();
        chain.install(1, Value::Long(1));
        chain.install(2, Value::Long(2));
        chain.install(3, Value::Long(3));
        assert_eq!(chain.remove_at(2), Some(Value::Long(2)));
        assert_eq!(chain.remove_at(2), None);
        assert_eq!(chain.len(), 2);
        assert_eq!(chain.visible_before(3), Some(&Value::Long(1)));
    }

    #[test]
    fn latest_and_clear() {
        let mut chain = VersionChain::new();
        assert!(chain.latest().is_none());
        chain.install(7, Value::Long(70));
        assert_eq!(chain.latest().unwrap().0, 7);
        chain.clear();
        assert!(chain.is_empty());
    }
}
