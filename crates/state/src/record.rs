//! A single keyed state record.

use parking_lot::{Mutex, RwLock};

use crate::lock::{RecordLock, SeqGate};
use crate::value::Value;
use crate::version::VersionChain;
use crate::Timestamp;

/// One application state (e.g. the average speed of one road segment, one
/// account balance, one bidding item).
///
/// A record bundles everything any of the five schemes needs:
///
/// * the committed value (`RwLock<Value>`), the single-version "truth";
/// * a [`VersionChain`] for committed versions (MVLK) or temporary in-batch
///   versions (TStream's dependency handling);
/// * a queued, timestamp-ordered [`RecordLock`] (LOCK / PAT);
/// * a [`SeqGate`] write watermark: the number of writes applied to this
///   record so far — MVLK's `lwm`, and the fine-grained dependency watermark
///   TStream's restructured execution waits on.
#[derive(Debug)]
pub struct Record {
    value: RwLock<Value>,
    versions: Mutex<VersionChain>,
    lock: RecordLock,
    write_gate: SeqGate,
}

impl Record {
    /// Creates a record with an initial committed value.
    pub fn new(value: Value) -> Self {
        Record {
            value: RwLock::new(value),
            versions: Mutex::new(VersionChain::new()),
            lock: RecordLock::new(),
            write_gate: SeqGate::new(0),
        }
    }

    /// Clone of the committed value.
    pub fn read_committed(&self) -> Value {
        self.value.read().clone()
    }

    /// Apply a closure to the committed value without cloning.
    pub fn with_committed<R>(&self, f: impl FnOnce(&Value) -> R) -> R {
        f(&self.value.read())
    }

    /// Overwrite the committed value, returning the previous one.
    pub fn write_committed(&self, value: Value) -> Value {
        std::mem::replace(&mut *self.value.write(), value)
    }

    /// Mutate the committed value in place.
    pub fn update_committed<R>(&self, f: impl FnOnce(&mut Value) -> R) -> R {
        f(&mut self.value.write())
    }

    /// Read the value visible to a transaction with timestamp `ts`:
    /// the newest retained version strictly older than `ts` if one exists,
    /// otherwise the committed value.
    pub fn read_visible(&self, ts: Timestamp) -> Value {
        let versions = self.versions.lock();
        match versions.visible_before(ts) {
            Some(v) => v.clone(),
            None => {
                drop(versions);
                self.read_committed()
            }
        }
    }

    /// Install a version written by the transaction with timestamp `ts`.
    pub fn install_version(&self, ts: Timestamp, value: Value) {
        self.versions.lock().install(ts, value);
    }

    /// Remove the version installed at exactly `ts` (abort rollback).
    pub fn remove_version(&self, ts: Timestamp) -> Option<Value> {
        self.versions.lock().remove_at(ts)
    }

    /// Number of retained (uncollapsed) versions.
    pub fn version_count(&self) -> usize {
        self.versions.lock().len()
    }

    /// Fold the newest retained version into the committed value and drop the
    /// rest (end-of-batch garbage collection in TStream / commit in MVLK).
    ///
    /// Returns `true` if a version was promoted.
    pub fn collapse_versions(&self) -> bool {
        let latest = self.versions.lock().collapse();
        match latest {
            Some((_, v)) => {
                *self.value.write() = v;
                true
            }
            None => false,
        }
    }

    /// Drop all retained versions without promoting any of them.
    pub fn discard_versions(&self) {
        self.versions.lock().clear();
    }

    /// The record's queued lock (LOCK / PAT schemes).
    pub fn lock(&self) -> &RecordLock {
        &self.lock
    }

    /// The record's write watermark (MVLK `lwm` / TStream dependency gate).
    pub fn write_gate(&self) -> &SeqGate {
        &self.write_gate
    }

    /// Reset per-run synchronisation state (watermark); used between
    /// benchmark runs so a `StateStore` can be reused.
    pub fn reset_sync(&self) {
        self.write_gate.reset(0);
        self.discard_versions();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn committed_read_write_roundtrip() {
        let rec = Record::new(Value::Long(5));
        assert_eq!(rec.read_committed(), Value::Long(5));
        let prev = rec.write_committed(Value::Long(9));
        assert_eq!(prev, Value::Long(5));
        assert_eq!(rec.read_committed(), Value::Long(9));
        rec.update_committed(|v| {
            if let Value::Long(x) = v {
                *x += 1;
            }
        });
        assert_eq!(rec.read_committed(), Value::Long(10));
    }

    #[test]
    fn visible_read_prefers_versions() {
        let rec = Record::new(Value::Long(0));
        rec.install_version(10, Value::Long(100));
        rec.install_version(20, Value::Long(200));
        assert_eq!(rec.read_visible(5), Value::Long(0), "before all versions");
        assert_eq!(rec.read_visible(15), Value::Long(100));
        assert_eq!(rec.read_visible(25), Value::Long(200));
    }

    #[test]
    fn collapse_promotes_latest_version() {
        let rec = Record::new(Value::Long(0));
        rec.install_version(1, Value::Long(1));
        rec.install_version(2, Value::Long(2));
        assert!(rec.collapse_versions());
        assert_eq!(rec.read_committed(), Value::Long(2));
        assert_eq!(rec.version_count(), 0);
        assert!(!rec.collapse_versions(), "nothing left to promote");
    }

    #[test]
    fn abort_rollback_removes_version() {
        let rec = Record::new(Value::Long(0));
        rec.install_version(3, Value::Long(30));
        assert_eq!(rec.remove_version(3), Some(Value::Long(30)));
        assert_eq!(rec.read_visible(10), Value::Long(0));
    }

    #[test]
    fn reset_sync_clears_gate_and_versions() {
        let rec = Record::new(Value::Long(0));
        rec.write_gate().advance();
        rec.install_version(1, Value::Long(1));
        rec.reset_sync();
        assert_eq!(rec.write_gate().current(), 0);
        assert_eq!(rec.version_count(), 0);
    }
}
