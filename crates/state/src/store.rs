//! The state store: a set of named tables shared by all executors.

use std::collections::HashMap;
use std::sync::Arc;

use crate::error::{StateError, StateResult};
use crate::record::Record;
use crate::table::Table;
use crate::value::Value;
use crate::Key;

/// Identifier of a table inside a [`StateStore`]; cheap to copy and embed in
/// decomposed operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

impl TableId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A collection of named tables, shared (via `Arc`) among all executors.
///
/// In the paper's terms this is the set of "shared mutable application
/// states" (e.g. TP's speed table and vehicle-count table).  All concurrent
/// access control happens *above* this layer in the scheme implementations;
/// the store itself only offers resolution from `(table, key)` to a
/// [`Record`].
#[derive(Debug)]
pub struct StateStore {
    tables: Vec<Table>,
    by_name: HashMap<String, TableId>,
}

impl StateStore {
    /// Builds a store from already-built tables.
    pub fn new(tables: Vec<Table>) -> StateResult<Arc<Self>> {
        let mut by_name = HashMap::new();
        for (i, t) in tables.iter().enumerate() {
            if by_name
                .insert(t.name().to_owned(), TableId(i as u32))
                .is_some()
            {
                return Err(StateError::InvalidDefinition(format!(
                    "duplicate table name `{}`",
                    t.name()
                )));
            }
        }
        Ok(Arc::new(StateStore { tables, by_name }))
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Resolve a table name.
    pub fn table_id(&self, name: &str) -> StateResult<TableId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| StateError::UnknownTable(name.to_owned()))
    }

    /// Access a table by id.
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.index()]
    }

    /// Access a table by name.
    pub fn table_by_name(&self, name: &str) -> StateResult<&Table> {
        Ok(self.table(self.table_id(name)?))
    }

    /// Resolve `(table, key)` to a record.
    pub fn record(&self, table: TableId, key: Key) -> StateResult<&Record> {
        self.table(table).get(key)
    }

    /// Resolve `(table, slot)` to a record without an index lookup.
    pub fn record_at(&self, table: TableId, slot: u32) -> &Record {
        self.table(table).get_slot(slot)
    }

    /// Snapshot every table's committed values: `(table name, key, value)`.
    pub fn snapshot(&self) -> Vec<(String, Key, Value)> {
        let mut out = Vec::new();
        for t in &self.tables {
            for (k, v) in t.snapshot() {
                out.push((t.name().to_owned(), k, v));
            }
        }
        out
    }

    /// Reset per-run synchronisation state in every table.
    pub fn reset_sync(&self) {
        for t in &self.tables {
            t.reset_sync();
        }
    }

    /// Iterate over `(id, table)` pairs.
    pub fn tables(&self) -> impl Iterator<Item = (TableId, &Table)> {
        self.tables
            .iter()
            .enumerate()
            .map(|(i, t)| (TableId(i as u32), t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;

    fn store() -> Arc<StateStore> {
        let speed = TableBuilder::new("speed")
            .extend((0..10u64).map(|k| (k, Value::Double(60.0))))
            .build()
            .unwrap();
        let count = TableBuilder::new("count")
            .extend((0..10u64).map(|k| (k, Value::Set(Default::default()))))
            .build()
            .unwrap();
        StateStore::new(vec![speed, count]).unwrap()
    }

    #[test]
    fn name_resolution() {
        let s = store();
        assert_eq!(s.table_count(), 2);
        let speed = s.table_id("speed").unwrap();
        let count = s.table_id("count").unwrap();
        assert_ne!(speed, count);
        assert!(matches!(
            s.table_id("nope"),
            Err(StateError::UnknownTable(_))
        ));
        assert_eq!(s.table(speed).name(), "speed");
        assert_eq!(s.table_by_name("count").unwrap().name(), "count");
    }

    #[test]
    fn duplicate_table_names_rejected() {
        let a = TableBuilder::new("t").build().unwrap();
        let b = TableBuilder::new("t").build().unwrap();
        assert!(StateStore::new(vec![a, b]).is_err());
    }

    #[test]
    fn record_resolution_and_snapshot() {
        let s = store();
        let speed = s.table_id("speed").unwrap();
        s.record(speed, 3)
            .unwrap()
            .write_committed(Value::Double(12.5));
        let snap = s.snapshot();
        assert_eq!(snap.len(), 20);
        let entry = snap
            .iter()
            .find(|(t, k, _)| t == "speed" && *k == 3)
            .unwrap();
        assert_eq!(entry.2, Value::Double(12.5));
    }

    #[test]
    fn record_at_bypasses_index() {
        let s = store();
        let speed = s.table_id("speed").unwrap();
        let slot = s.table(speed).slot_of(7).unwrap();
        assert_eq!(
            s.record_at(speed, slot).read_committed(),
            Value::Double(60.0)
        );
    }
}
