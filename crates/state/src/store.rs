//! The state store: a set of named tables shared by all executors, split
//! into hash-partitioned shards behind a routing layer.

use std::collections::HashMap;
use std::sync::Arc;

use crate::error::{StateError, StateResult};
use crate::record::Record;
use crate::shard::{ShardId, ShardRouter};
use crate::table::Table;
use crate::value::Value;
use crate::Key;

/// Identifier of a table inside a [`StateStore`]; cheap to copy and embed in
/// decomposed operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

impl TableId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A collection of named tables, shared (via `Arc`) among all executors.
///
/// In the paper's terms this is the set of "shared mutable application
/// states" (e.g. TP's speed table and vehicle-count table).  All concurrent
/// access control happens *above* this layer in the scheme implementations;
/// the store itself offers resolution from `(table, key)` to a [`Record`]
/// plus the shard layer: every key is owned by exactly one shard (decided by
/// the store's [`ShardRouter`]), every table allocates its records per
/// shard, and the same router is reused by the chain pools and the stream
/// layer so shard affinity is a whole-system property.
#[derive(Debug)]
pub struct StateStore {
    tables: Vec<Table>,
    by_name: HashMap<String, TableId>,
    router: ShardRouter,
}

impl StateStore {
    /// Builds a store from already-built tables.
    ///
    /// The store's shard count is taken from the tables (the largest shard
    /// count found, or one for an empty store); tables built with a different
    /// shard count are resharded to match, so every table of a store always
    /// shares one shard layout.  Fails on duplicate table names.
    pub fn new(tables: Vec<Table>) -> StateResult<Arc<Self>> {
        let num_shards = tables.iter().map(Table::shard_count).max().unwrap_or(1);
        Self::with_shards(tables, num_shards)
    }

    /// Builds a store whose tables are split over exactly `num_shards` hash
    /// partitions.
    ///
    /// Rejects `num_shards == 0` (a store without shards could route no key)
    /// and duplicate table names; tables built with a different shard count
    /// are resharded to the requested layout.
    pub fn with_shards(tables: Vec<Table>, num_shards: u32) -> StateResult<Arc<Self>> {
        let router = ShardRouter::new(num_shards)?;
        let mut resharded = Vec::with_capacity(tables.len());
        let mut by_name = HashMap::new();
        for table in tables {
            let table = if table.shard_count() == num_shards {
                table
            } else {
                table.reshard(num_shards)?
            };
            let id = TableId(resharded.len() as u32);
            if by_name.insert(table.name().to_owned(), id).is_some() {
                return Err(StateError::InvalidDefinition(format!(
                    "duplicate table name `{}`",
                    table.name()
                )));
            }
            resharded.push(table);
        }
        Ok(Arc::new(StateStore {
            tables: resharded,
            by_name,
            router,
        }))
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Number of shards every table of this store is split over.
    pub fn num_shards(&self) -> u32 {
        self.router.shards()
    }

    /// The store's shard router.  Chain pools and event routing reuse it so
    /// every layer agrees on which shard owns a key.
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    /// The shard owning `key` (identical for every table of the store).
    pub fn shard_of(&self, key: Key) -> ShardId {
        self.router.shard_of(key)
    }

    /// Resolve a table name.
    pub fn table_id(&self, name: &str) -> StateResult<TableId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| StateError::UnknownTable(name.to_owned()))
    }

    /// Access a table by id.
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.index()]
    }

    /// Access a table by name.
    pub fn table_by_name(&self, name: &str) -> StateResult<&Table> {
        Ok(self.table(self.table_id(name)?))
    }

    /// Resolve `(table, key)` to a record.
    pub fn record(&self, table: TableId, key: Key) -> StateResult<&Record> {
        self.table(table).get(key)
    }

    /// Resolve `(table, key)` to its record slot without panicking on an
    /// out-of-range table id: `None` when the table or the key is unknown.
    /// This is the routing-time side of slot resolution (feature F2): the
    /// ingestion thread resolves the determined read/write set once, and the
    /// executors then use [`StateStore::record_at`] per operation.
    pub fn try_slot_of(&self, table: TableId, key: Key) -> Option<u32> {
        self.tables
            .get(table.index())
            .and_then(|t| t.slot_of(key).ok())
    }

    /// Resolve `(table, slot)` to a record without an index lookup.
    pub fn record_at(&self, table: TableId, slot: u32) -> &Record {
        self.table(table).get_slot(slot)
    }

    /// Snapshot every table's committed values: `(table name, key, value)`,
    /// each table's entries sorted by key so snapshots compare equal across
    /// shard counts.
    pub fn snapshot(&self) -> Vec<(String, Key, Value)> {
        let mut out = Vec::new();
        for t in &self.tables {
            for (k, v) in t.snapshot() {
                out.push((t.name().to_owned(), k, v));
            }
        }
        out
    }

    /// Snapshot the committed values resident in one shard across every
    /// table: `(table name, key, value)`.
    pub fn snapshot_shard(&self, shard: ShardId) -> Vec<(String, Key, Value)> {
        let mut out = Vec::new();
        for t in &self.tables {
            for (k, v) in t.snapshot_shard(shard) {
                out.push((t.name().to_owned(), k, v));
            }
        }
        out
    }

    /// Number of records resident in each shard, summed over all tables.
    /// The figure harnesses report this to show real placement balance.
    pub fn shard_record_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_shards() as usize];
        for t in &self.tables {
            for shard in self.router.all() {
                counts[shard.index()] += t.shard_len(shard);
            }
        }
        counts
    }

    /// Reset per-run synchronisation state in every table, shard by shard.
    pub fn reset_sync(&self) {
        for t in &self.tables {
            t.reset_sync();
        }
    }

    /// Iterate over `(id, table)` pairs.
    pub fn tables(&self) -> impl Iterator<Item = (TableId, &Table)> {
        self.tables
            .iter()
            .enumerate()
            .map(|(i, t)| (TableId(i as u32), t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;

    fn store() -> Arc<StateStore> {
        store_with_shards(1)
    }

    fn store_with_shards(shards: u32) -> Arc<StateStore> {
        let speed = TableBuilder::new("speed")
            .extend((0..10u64).map(|k| (k, Value::Double(60.0))))
            .build()
            .unwrap();
        let count = TableBuilder::new("count")
            .extend((0..10u64).map(|k| (k, Value::Set(Default::default()))))
            .build()
            .unwrap();
        StateStore::with_shards(vec![speed, count], shards).unwrap()
    }

    #[test]
    fn name_resolution() {
        let s = store();
        assert_eq!(s.table_count(), 2);
        let speed = s.table_id("speed").unwrap();
        let count = s.table_id("count").unwrap();
        assert_ne!(speed, count);
        assert!(matches!(
            s.table_id("nope"),
            Err(StateError::UnknownTable(_))
        ));
        assert_eq!(s.table(speed).name(), "speed");
        assert_eq!(s.table_by_name("count").unwrap().name(), "count");
    }

    #[test]
    fn duplicate_table_names_rejected() {
        let a = TableBuilder::new("t").build().unwrap();
        let b = TableBuilder::new("t").build().unwrap();
        assert!(StateStore::new(vec![a, b]).is_err());
        // Sharding must not weaken the check: the duplicate is rejected no
        // matter how many shards the store splits the tables over.
        let a = TableBuilder::new("t").build().unwrap();
        let b = TableBuilder::new("t").build().unwrap();
        assert!(matches!(
            StateStore::with_shards(vec![a, b], 4),
            Err(StateError::InvalidDefinition(_))
        ));
    }

    #[test]
    fn zero_shards_rejected() {
        let t = TableBuilder::new("t").build().unwrap();
        assert!(matches!(
            StateStore::with_shards(vec![t], 0),
            Err(StateError::InvalidDefinition(_))
        ));
    }

    #[test]
    fn record_resolution_and_snapshot() {
        let s = store();
        let speed = s.table_id("speed").unwrap();
        s.record(speed, 3)
            .unwrap()
            .write_committed(Value::Double(12.5));
        let snap = s.snapshot();
        assert_eq!(snap.len(), 20);
        let entry = snap
            .iter()
            .find(|(t, k, _)| t == "speed" && *k == 3)
            .unwrap();
        assert_eq!(entry.2, Value::Double(12.5));
    }

    #[test]
    fn record_at_bypasses_index() {
        let s = store();
        let speed = s.table_id("speed").unwrap();
        let slot = s.table(speed).slot_of(7).unwrap();
        assert_eq!(
            s.record_at(speed, slot).read_committed(),
            Value::Double(60.0)
        );
    }

    #[test]
    fn sharded_store_routes_and_counts_records() {
        let s = store_with_shards(4);
        assert_eq!(s.num_shards(), 4);
        let counts = s.shard_record_counts();
        assert_eq!(counts.len(), 4);
        assert_eq!(counts.iter().sum::<usize>(), 20);
        // Every record is reachable and lives in the shard the router names.
        let speed = s.table_id("speed").unwrap();
        for key in 0..10u64 {
            let shard = s.shard_of(key);
            assert_eq!(s.table(speed).shard_of(key), shard);
            assert!(s.table(speed).iter_shard(shard).any(|(k, _)| k == key));
            s.record(speed, key).unwrap();
        }
        // Per-shard snapshots partition the full snapshot.
        let mut merged: Vec<(String, Key, Value)> =
            (0..4).flat_map(|i| s.snapshot_shard(ShardId(i))).collect();
        merged.sort_by(|a, b| (&a.0, a.1).cmp(&(&b.0, b.1)));
        let mut full = s.snapshot();
        full.sort_by(|a, b| (&a.0, a.1).cmp(&(&b.0, b.1)));
        assert_eq!(merged, full);
    }

    #[test]
    fn new_reshards_mismatched_tables_to_one_layout() {
        let a = TableBuilder::new("a")
            .extend((0..16u64).map(|k| (k, Value::Long(k as i64))))
            .build_sharded(4)
            .unwrap();
        let b = TableBuilder::new("b")
            .extend((0..16u64).map(|k| (k, Value::Long(-(k as i64)))))
            .build()
            .unwrap();
        let s = StateStore::new(vec![a, b]).unwrap();
        assert_eq!(s.num_shards(), 4, "store adopts the largest shard count");
        for (_, table) in s.tables() {
            assert_eq!(table.shard_count(), 4);
        }
        assert_eq!(s.snapshot().len(), 32);
    }

    #[test]
    fn snapshots_agree_across_shard_counts() {
        let reference = store_with_shards(1);
        reference
            .record(TableId(0), 3)
            .unwrap()
            .write_committed(Value::Double(1.25));
        for shards in [2u32, 4, 8] {
            let s = store_with_shards(shards);
            s.record(TableId(0), 3)
                .unwrap()
                .write_committed(Value::Double(1.25));
            assert_eq!(s.snapshot(), reference.snapshot(), "{shards} shards");
        }
    }
}
