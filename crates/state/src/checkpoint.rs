//! Durability: store snapshots and on-disk checkpoints.
//!
//! Section IV-D of the paper: "*Durability requires modification to state are
//! durable.  TStream can replicate states stored in memory to disk before
//! resuming to compute mode to satisfy durability.*"  The punctuation
//! boundary is a natural quiescent point — every transaction of the batch has
//! either committed or aborted, and no version chains are live — so a
//! consistent snapshot can be taken without any coordination beyond the
//! barriers dual-mode scheduling already uses.
//!
//! Three pieces live here:
//!
//! * [`StoreSnapshot`] — an owned, order-stable copy of every committed value
//!   of a [`StateStore`], encodable with the [`crate::codec`] format and
//!   restorable onto a store with the same schema;
//! * [`CheckpointManifest`] / [`Checkpoint`] — an epoch-stamped snapshot:
//!   the manifest records which punctuation epoch the snapshot covers and the
//!   cumulative progress counters at that boundary, which is what lets the
//!   recovery subsystem truncate write-ahead-log segments the checkpoint
//!   already covers and resume result counting after a restart;
//! * [`Checkpointer`] — writes numbered snapshot files into a directory,
//!   retains the most recent `retain` checkpoints, and can recover the latest
//!   one after a crash.
//!
//! Checkpoints are written atomically (write to a temporary file, then
//! rename) so a crash mid-write never leaves a truncated "latest" checkpoint.
//! Several `Checkpointer` instances (engine clones, concurrent processes in
//! one address space) may target the same directory: sequence allocation and
//! retention pruning serialize on a process-wide per-directory lock, so a
//! `retain` race never double-deletes or interleaves with a write.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use parking_lot::Mutex;
use std::sync::Arc;

use crate::codec::{self, Reader};
use crate::error::{StateError, StateResult};
use crate::store::StateStore;
use crate::value::Value;
use crate::Key;

/// File extension of checkpoint files.
pub const CHECKPOINT_EXTENSION: &str = "tsnap";

/// Process-wide lock per checkpoint directory: held across the sequence
/// allocation + write and across the list+delete window of retention, so
/// concurrent [`Checkpointer`] instances over one directory never race.
fn directory_lock(directory: &Path) -> Arc<Mutex<()>> {
    static LOCKS: OnceLock<Mutex<HashMap<PathBuf, Arc<Mutex<()>>>>> = OnceLock::new();
    // Canonicalize so `dir` and `./dir` share a lock; the directory exists by
    // the time this is called (created in `Checkpointer::new`).
    let key = fs::canonicalize(directory).unwrap_or_else(|_| directory.to_path_buf());
    LOCKS
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .entry(key)
        .or_default()
        .clone()
}

/// Progress counters a [`Checkpoint`] carries: which punctuation epoch the
/// snapshot covers and the cumulative result counts at that boundary.
///
/// The epoch is the durable batch number (0-based, monotonically increasing
/// across restarts).  After a checkpoint for epoch `e` is on disk, every
/// write-ahead-log segment with epoch `<= e` is redundant and may be
/// truncated; recovery restores the snapshot and replays only segments
/// `> e`.  The counts let a recovered run report totals identical to an
/// uninterrupted run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CheckpointManifest {
    /// Punctuation epoch (durable batch number) this checkpoint covers.
    pub epoch: u64,
    /// Cumulative input events processed through `epoch`.
    pub events: u64,
    /// Cumulative committed transactions through `epoch`.
    pub committed: u64,
    /// Cumulative rejected (aborted) transactions through `epoch`.
    pub rejected: u64,
}

/// A snapshot plus the manifest describing what it covers.
///
/// Encoded as snapshot format version 2 (`TSNAP2`); decoding also accepts
/// the bare version-1 layout, which simply has no manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Epoch manifest; `None` for a version-1 file (plain snapshot).
    pub manifest: Option<CheckpointManifest>,
    /// The committed state.
    pub snapshot: StoreSnapshot,
}

impl Checkpoint {
    /// Encode: version 2 when a manifest is present, version 1 otherwise.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.snapshot.record_count() * 24);
        match &self.manifest {
            None => codec::put_snapshot_header(&mut out, codec::SNAPSHOT_VERSION_PLAIN),
            Some(manifest) => {
                codec::put_snapshot_header(&mut out, codec::SNAPSHOT_VERSION_MANIFEST);
                out.extend_from_slice(&manifest.epoch.to_le_bytes());
                out.extend_from_slice(&manifest.events.to_le_bytes());
                out.extend_from_slice(&manifest.committed.to_le_bytes());
                out.extend_from_slice(&manifest.rejected.to_le_bytes());
            }
        }
        self.snapshot.encode_body(&mut out);
        out
    }

    /// Decode either snapshot format version.
    pub fn decode(bytes: &[u8]) -> StateResult<Self> {
        let mut reader = Reader::new(bytes);
        let version = reader.snapshot_version()?;
        let manifest = if version >= codec::SNAPSHOT_VERSION_MANIFEST {
            Some(CheckpointManifest {
                epoch: reader.u64()?,
                events: reader.u64()?,
                committed: reader.u64()?,
                rejected: reader.u64()?,
            })
        } else {
            None
        };
        let snapshot = StoreSnapshot::decode_body(&mut reader)?;
        Ok(Checkpoint { manifest, snapshot })
    }
}

/// Snapshot of one table: its name and every `(key, committed value)` pair in
/// slot order.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSnapshot {
    /// Table name.
    pub name: String,
    /// Committed values in slot order.
    pub entries: Vec<(Key, Value)>,
}

/// A consistent snapshot of every committed value of a store.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StoreSnapshot {
    /// Per-table snapshots in table-id order.
    pub tables: Vec<TableSnapshot>,
}

impl StoreSnapshot {
    /// Capture the committed values of every table.
    ///
    /// The caller must ensure the store is quiescent (no concurrent writers);
    /// the engine takes snapshots at the end-of-batch barrier where that holds
    /// by construction.
    pub fn capture(store: &StateStore) -> Self {
        let tables = store
            .tables()
            .map(|(_, table)| TableSnapshot {
                name: table.name().to_owned(),
                entries: table.snapshot(),
            })
            .collect();
        StoreSnapshot { tables }
    }

    /// Total number of records across all tables.
    pub fn record_count(&self) -> usize {
        self.tables.iter().map(|t| t.entries.len()).sum()
    }

    /// Encode into the version-1 (`TSNAP1`, tables only) binary format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.record_count() * 24);
        codec::put_snapshot_header(&mut out, codec::SNAPSHOT_VERSION_PLAIN);
        self.encode_body(&mut out);
        out
    }

    /// Encode the table section (shared by every format version).
    pub(crate) fn encode_body(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.tables.len() as u32).to_le_bytes());
        for table in &self.tables {
            codec::put_string(out, &table.name);
            out.extend_from_slice(&(table.entries.len() as u64).to_le_bytes());
            for (key, value) in &table.entries {
                out.extend_from_slice(&key.to_le_bytes());
                codec::encode_value(out, value);
            }
        }
    }

    /// Decode a snapshot file of any supported format version, discarding
    /// the manifest of a version-2 file (use [`Checkpoint::decode`] to keep
    /// it).
    pub fn decode(bytes: &[u8]) -> StateResult<Self> {
        Ok(Checkpoint::decode(bytes)?.snapshot)
    }

    /// Decode the table section (shared by every format version); the reader
    /// must be positioned right after the header/manifest and is required to
    /// be fully consumed.
    pub(crate) fn decode_body(reader: &mut Reader<'_>) -> StateResult<Self> {
        let table_count = reader.u32()? as usize;
        let mut tables = Vec::with_capacity(table_count);
        for _ in 0..table_count {
            let name = reader.string()?;
            let record_count = reader.u64()? as usize;
            let mut entries = Vec::with_capacity(record_count);
            for _ in 0..record_count {
                let key = reader.u64()?;
                let value = codec::decode_value(reader)?;
                entries.push((key, value));
            }
            tables.push(TableSnapshot { name, entries });
        }
        if reader.remaining() != 0 {
            return Err(StateError::Corrupted(format!(
                "{} trailing bytes after snapshot",
                reader.remaining()
            )));
        }
        Ok(StoreSnapshot { tables })
    }

    /// Restore every value of this snapshot into `store`.
    ///
    /// The store must have the same schema (table names and keys); restoring
    /// onto a mismatched store fails without applying a partial state.
    pub fn restore(&self, store: &StateStore) -> StateResult<()> {
        // Validate first so restore is all-or-nothing.
        for table in &self.tables {
            let id = store.table_id(&table.name)?;
            for (key, _) in &table.entries {
                store.record(id, *key)?;
                // Route stability across snapshot/restore: the store-level
                // router (reused by chain pools and event routing) and the
                // table's own router must agree on every restored key, or a
                // recovered record would live on a different shard than the
                // one live routing consults.
                debug_assert_eq!(
                    store.shard_of(*key),
                    store.table(id).shard_of(*key),
                    "shard routing diverged between store and table {} for key {key}",
                    table.name
                );
            }
        }
        for table in &self.tables {
            let id = store.table_id(&table.name)?;
            for (key, value) in &table.entries {
                store.record(id, *key)?.write_committed(value.clone());
            }
        }
        Ok(())
    }
}

/// Writes and recovers on-disk checkpoints of a store.
#[derive(Debug)]
pub struct Checkpointer {
    directory: PathBuf,
    retain: usize,
    sequence: AtomicU64,
    /// Shared per-directory lock (see [`directory_lock`]).
    lock: Arc<Mutex<()>>,
}

impl Checkpointer {
    /// Create a checkpointer writing into `directory`, keeping the most
    /// recent `retain` checkpoints (older ones are pruned after every write).
    ///
    /// The directory is created if missing.  If it already contains
    /// checkpoints, numbering continues after the largest existing sequence
    /// number so recovery and further checkpointing compose.
    pub fn new(directory: impl Into<PathBuf>, retain: usize) -> StateResult<Self> {
        let directory = directory.into();
        fs::create_dir_all(&directory)?;
        let lock = directory_lock(&directory);
        let next = Self::existing_sequences(&directory)?
            .last()
            .map(|&(seq, _)| seq + 1)
            .unwrap_or(0);
        Ok(Checkpointer {
            directory,
            retain: retain.max(1),
            sequence: AtomicU64::new(next),
            lock,
        })
    }

    /// Directory the checkpoints are written to.
    pub fn directory(&self) -> &Path {
        &self.directory
    }

    /// Number of checkpoints retained.
    pub fn retain(&self) -> usize {
        self.retain
    }

    /// Sequence number the next checkpoint will use.
    pub fn next_sequence(&self) -> u64 {
        self.sequence.load(Ordering::SeqCst)
    }

    /// Existing checkpoint files, sorted by sequence number.
    fn existing_sequences(directory: &Path) -> StateResult<Vec<(u64, PathBuf)>> {
        let mut found = Vec::new();
        if !directory.exists() {
            return Ok(found);
        }
        for entry in fs::read_dir(directory)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some(CHECKPOINT_EXTENSION) {
                continue;
            }
            let stem = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or_default();
            if let Some(seq) = stem
                .strip_prefix("checkpoint-")
                .and_then(|s| s.parse::<u64>().ok())
            {
                found.push((seq, path));
            }
        }
        found.sort_by_key(|&(seq, _)| seq);
        Ok(found)
    }

    /// Paths of all checkpoints currently on disk, oldest first.
    pub fn list(&self) -> StateResult<Vec<PathBuf>> {
        Ok(Self::existing_sequences(&self.directory)?
            .into_iter()
            .map(|(_, p)| p)
            .collect())
    }

    fn path_for(&self, sequence: u64) -> PathBuf {
        self.directory
            .join(format!("checkpoint-{sequence:012}.{CHECKPOINT_EXTENSION}"))
    }

    /// Write a snapshot of `store` as the next checkpoint and prune old ones.
    ///
    /// Returns the path of the new checkpoint file.
    pub fn checkpoint(&self, store: &StateStore) -> StateResult<PathBuf> {
        self.write_snapshot(&StoreSnapshot::capture(store))
    }

    /// Write an already-captured snapshot as the next checkpoint (format
    /// version 1, no manifest).
    pub fn write_snapshot(&self, snapshot: &StoreSnapshot) -> StateResult<PathBuf> {
        self.write_bytes(snapshot.encode())
    }

    /// Write an epoch-stamped checkpoint as the next numbered file and prune
    /// old ones.
    pub fn write_checkpoint(&self, checkpoint: &Checkpoint) -> StateResult<PathBuf> {
        self.write_bytes(checkpoint.encode())
    }

    /// Write an encoded checkpoint as the next numbered file, durably, and
    /// prune old ones.
    ///
    /// The per-directory lock is held across sequence allocation, write and
    /// pruning, so concurrent checkpointers over one directory (engine
    /// clones) serialize instead of racing on file names or the retention
    /// window.  The file is fsynced before the rename and the directory
    /// fsynced after it: callers delete the WAL segments a checkpoint covers
    /// as soon as this returns, so the checkpoint must actually be on stable
    /// storage — not just in the page cache — by then.
    fn write_bytes(&self, encoded: Vec<u8>) -> StateResult<PathBuf> {
        use std::io::Write as _;

        let _guard = self.lock.lock();
        // Another instance over the same directory may have advanced the
        // on-disk numbering past our local counter; never reuse a live name.
        let on_disk_next = Self::existing_sequences(&self.directory)?
            .last()
            .map(|&(seq, _)| seq + 1)
            .unwrap_or(0);
        let sequence = self.sequence.load(Ordering::SeqCst).max(on_disk_next);
        self.sequence.store(sequence + 1, Ordering::SeqCst);
        let path = self.path_for(sequence);
        let tmp = path.with_extension("tmp");
        let mut file = fs::File::create(&tmp)?;
        file.write_all(&encoded)?;
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp, &path)?;
        #[cfg(unix)]
        fs::File::open(&self.directory)?.sync_all()?;
        self.prune_locked()?;
        Ok(path)
    }

    /// Remove all but the newest `retain` checkpoints.  The caller must hold
    /// the per-directory lock; a file already removed by a checkpointer in a
    /// *different process* is tolerated.
    fn prune_locked(&self) -> StateResult<()> {
        let existing = Self::existing_sequences(&self.directory)?;
        if existing.len() <= self.retain {
            return Ok(());
        }
        for (_, path) in &existing[..existing.len() - self.retain] {
            match fs::remove_file(path) {
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                other => other?,
            }
        }
        Ok(())
    }

    /// Load the most recent checkpoint's snapshot, if any exists.
    pub fn latest_snapshot(&self) -> StateResult<Option<StoreSnapshot>> {
        Ok(self.latest_checkpoint()?.map(|cp| cp.snapshot))
    }

    /// Load the most recent checkpoint (manifest included), if any exists.
    pub fn latest_checkpoint(&self) -> StateResult<Option<Checkpoint>> {
        match Self::existing_sequences(&self.directory)?.last() {
            None => Ok(None),
            Some((_, path)) => {
                let bytes = fs::read(path)?;
                Ok(Some(Checkpoint::decode(&bytes)?))
            }
        }
    }

    /// Load the newest checkpoint whose manifest covers an epoch `<= epoch`
    /// — the restore base of a point-in-time recovery.
    ///
    /// Scans newest-first and stops at the first qualifying file, so the
    /// common case (recovering near the present) decodes one checkpoint.
    /// Manifest-less (version-1) files never qualify: without an epoch they
    /// cannot anchor a point-in-time restore.
    pub fn checkpoint_at_or_before(&self, epoch: u64) -> StateResult<Option<Checkpoint>> {
        for (_, path) in Self::existing_sequences(&self.directory)?.iter().rev() {
            let bytes = fs::read(path)?;
            let checkpoint = Checkpoint::decode(&bytes)?;
            if checkpoint.manifest.is_some_and(|m| m.epoch <= epoch) {
                return Ok(Some(checkpoint));
            }
        }
        Ok(None)
    }

    /// Convenience: restore the most recent checkpoint onto `store`.
    ///
    /// Returns `true` if a checkpoint was found and applied.
    pub fn recover_into(&self, store: &StateStore) -> StateResult<bool> {
        match self.latest_snapshot()? {
            None => Ok(false),
            Some(snapshot) => {
                snapshot.restore(store)?;
                Ok(true)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;
    use std::sync::Arc;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tstream-checkpoint-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_store() -> Arc<StateStore> {
        let accounts = TableBuilder::new("accounts")
            .extend((0..32u64).map(|k| (k, Value::Long(k as i64 * 100))))
            .build()
            .unwrap();
        let speeds = TableBuilder::new("speeds")
            .extend((0..8u64).map(|k| (k, Value::Double(60.0 + k as f64))))
            .build()
            .unwrap();
        StateStore::new(vec![accounts, speeds]).unwrap()
    }

    #[test]
    fn snapshot_encode_decode_round_trip() {
        let store = sample_store();
        store
            .record(crate::TableId(0), 3)
            .unwrap()
            .write_committed(Value::Long(-7));
        let snapshot = StoreSnapshot::capture(&store);
        assert_eq!(snapshot.record_count(), 40);
        let decoded = StoreSnapshot::decode(&snapshot.encode()).unwrap();
        assert_eq!(decoded, snapshot);
    }

    #[test]
    fn restore_reproduces_the_captured_state() {
        let source = sample_store();
        source
            .record(crate::TableId(0), 5)
            .unwrap()
            .write_committed(Value::Long(555));
        source
            .record(crate::TableId(1), 2)
            .unwrap()
            .write_committed(Value::Double(12.5));
        let snapshot = StoreSnapshot::capture(&source);

        let target = sample_store();
        snapshot.restore(&target).unwrap();
        assert_eq!(target.snapshot(), source.snapshot());
    }

    #[test]
    fn restore_onto_mismatched_schema_fails_without_partial_apply() {
        let source = sample_store();
        let snapshot = StoreSnapshot::capture(&source);

        let other = StateStore::new(vec![TableBuilder::new("other")
            .insert(0, Value::Long(1))
            .build()
            .unwrap()])
        .unwrap();
        let before = other.snapshot();
        assert!(matches!(
            snapshot.restore(&other),
            Err(StateError::UnknownTable(_))
        ));
        assert_eq!(
            other.snapshot(),
            before,
            "nothing may be applied on failure"
        );
    }

    #[test]
    fn corrupted_bytes_are_rejected() {
        let store = sample_store();
        let mut bytes = StoreSnapshot::capture(&store).encode();
        bytes.truncate(bytes.len() / 2);
        assert!(matches!(
            StoreSnapshot::decode(&bytes),
            Err(StateError::Corrupted(_))
        ));
        assert!(matches!(
            StoreSnapshot::decode(b"garbage"),
            Err(StateError::Corrupted(_))
        ));
        let mut trailing = StoreSnapshot::capture(&store).encode();
        trailing.push(0);
        assert!(matches!(
            StoreSnapshot::decode(&trailing),
            Err(StateError::Corrupted(_))
        ));
    }

    #[test]
    fn checkpointer_writes_numbered_files_and_prunes() {
        let dir = temp_dir("prune");
        let store = sample_store();
        let cp = Checkpointer::new(&dir, 2).unwrap();
        for i in 0..5i64 {
            store
                .record(crate::TableId(0), 0)
                .unwrap()
                .write_committed(Value::Long(i));
            cp.checkpoint(&store).unwrap();
        }
        let files = cp.list().unwrap();
        assert_eq!(files.len(), 2, "only the two newest checkpoints remain");
        // The latest checkpoint holds the latest value.
        let latest = cp.latest_snapshot().unwrap().unwrap();
        assert_eq!(latest.tables[0].entries[0].1, Value::Long(4));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_restores_the_latest_checkpoint() {
        let dir = temp_dir("recover");
        let store = sample_store();
        {
            let cp = Checkpointer::new(&dir, 4).unwrap();
            store
                .record(crate::TableId(0), 7)
                .unwrap()
                .write_committed(Value::Long(777));
            cp.checkpoint(&store).unwrap();
        }
        // "Crash": a brand-new store and a brand-new checkpointer over the
        // same directory.
        let recovered = sample_store();
        let cp = Checkpointer::new(&dir, 4).unwrap();
        assert!(cp.recover_into(&recovered).unwrap());
        assert_eq!(recovered.snapshot(), store.snapshot());
        // Sequence numbering continues after the recovered checkpoint.
        assert_eq!(cp.next_sequence(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_with_no_checkpoints_is_a_noop() {
        let dir = temp_dir("empty");
        let cp = Checkpointer::new(&dir, 1).unwrap();
        let store = sample_store();
        let before = store.snapshot();
        assert!(!cp.recover_into(&store).unwrap());
        assert_eq!(store.snapshot(), before);
        assert!(cp.latest_snapshot().unwrap().is_none());
        assert!(cp.list().unwrap().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_checkpoints_round_trip_and_plain_files_stay_readable() {
        let store = sample_store();
        let manifest = CheckpointManifest {
            epoch: 41,
            events: 4_200,
            committed: 4_100,
            rejected: 100,
        };
        let checkpoint = Checkpoint {
            manifest: Some(manifest),
            snapshot: StoreSnapshot::capture(&store),
        };
        let bytes = checkpoint.encode();
        assert_eq!(&bytes[..6], b"TSNAP2");
        let decoded = Checkpoint::decode(&bytes).unwrap();
        assert_eq!(decoded, checkpoint);
        // StoreSnapshot::decode also accepts version 2 (manifest discarded).
        assert_eq!(StoreSnapshot::decode(&bytes).unwrap(), checkpoint.snapshot);

        // A version-1 file decodes with no manifest.
        let plain = checkpoint.snapshot.encode();
        assert_eq!(&plain[..6], b"TSNAP1");
        let decoded = Checkpoint::decode(&plain).unwrap();
        assert_eq!(decoded.manifest, None);
        assert_eq!(decoded.snapshot, checkpoint.snapshot);
    }

    #[test]
    fn checkpointer_persists_and_recovers_manifests() {
        let dir = temp_dir("manifest");
        let store = sample_store();
        let cp = Checkpointer::new(&dir, 2).unwrap();
        for epoch in 0..3u64 {
            cp.write_checkpoint(&Checkpoint {
                manifest: Some(CheckpointManifest {
                    epoch,
                    events: (epoch + 1) * 100,
                    committed: (epoch + 1) * 90,
                    rejected: (epoch + 1) * 10,
                }),
                snapshot: StoreSnapshot::capture(&store),
            })
            .unwrap();
        }
        let latest = cp.latest_checkpoint().unwrap().unwrap();
        let manifest = latest.manifest.unwrap();
        assert_eq!(manifest.epoch, 2);
        assert_eq!(manifest.events, 300);
        assert_eq!(manifest.committed, 270);
        assert_eq!(manifest.rejected, 30);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn future_format_versions_are_rejected_not_misparsed() {
        let mut bytes = sample_store_encoded();
        bytes[5] = b'7'; // pretend version 7
        assert!(matches!(
            Checkpoint::decode(&bytes),
            Err(StateError::UnsupportedVersion { found: 7, .. })
        ));
    }

    fn sample_store_encoded() -> Vec<u8> {
        StoreSnapshot::capture(&sample_store()).encode()
    }

    #[test]
    fn concurrent_checkpointers_over_one_directory_do_not_race_on_retention() {
        // Regression: two engine clones (separate `Checkpointer` instances)
        // pruning the same directory used to race in the list+delete window —
        // both would list the same victim and the loser died on NotFound.
        // The per-directory lock serializes the whole write+prune.
        let dir = temp_dir("race");
        fs::create_dir_all(&dir).unwrap();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let dir = dir.clone();
                std::thread::spawn(move || {
                    let store = sample_store();
                    let cp = Checkpointer::new(&dir, 2).unwrap();
                    for i in 0..8i64 {
                        store
                            .record(crate::TableId(0), 0)
                            .unwrap()
                            .write_committed(Value::Long(t * 100 + i));
                        cp.checkpoint(&store).expect("no retention race");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("no thread may panic");
        }
        // One more write from a fresh instance settles the directory at
        // exactly the retention limit, and the latest file is decodable.
        let cp = Checkpointer::new(&dir, 2).unwrap();
        cp.checkpoint(&sample_store()).unwrap();
        assert_eq!(cp.list().unwrap().len(), 2);
        assert!(cp.latest_snapshot().unwrap().is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn configuration_accessors() {
        let dir = temp_dir("config");
        let cp = Checkpointer::new(&dir, 0).unwrap();
        assert_eq!(cp.retain(), 1, "retention is clamped to at least one");
        assert_eq!(cp.directory(), dir.as_path());
        assert_eq!(cp.next_sequence(), 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
