//! Durability: store snapshots and on-disk checkpoints.
//!
//! Section IV-D of the paper: "*Durability requires modification to state are
//! durable.  TStream can replicate states stored in memory to disk before
//! resuming to compute mode to satisfy durability.*"  The punctuation
//! boundary is a natural quiescent point — every transaction of the batch has
//! either committed or aborted, and no version chains are live — so a
//! consistent snapshot can be taken without any coordination beyond the
//! barriers dual-mode scheduling already uses.
//!
//! Two pieces live here:
//!
//! * [`StoreSnapshot`] — an owned, order-stable copy of every committed value
//!   of a [`StateStore`], encodable with the [`crate::codec`] format and
//!   restorable onto a store with the same schema;
//! * [`Checkpointer`] — writes numbered snapshot files into a directory,
//!   retains the most recent `retain` checkpoints, and can recover the latest
//!   one after a crash.
//!
//! Checkpoints are written atomically (write to a temporary file, then
//! rename) so a crash mid-write never leaves a truncated "latest" checkpoint.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::codec::{self, Reader};
use crate::error::{StateError, StateResult};
use crate::store::StateStore;
use crate::value::Value;
use crate::Key;

/// File extension of checkpoint files.
pub const CHECKPOINT_EXTENSION: &str = "tsnap";

/// Snapshot of one table: its name and every `(key, committed value)` pair in
/// slot order.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSnapshot {
    /// Table name.
    pub name: String,
    /// Committed values in slot order.
    pub entries: Vec<(Key, Value)>,
}

/// A consistent snapshot of every committed value of a store.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StoreSnapshot {
    /// Per-table snapshots in table-id order.
    pub tables: Vec<TableSnapshot>,
}

impl StoreSnapshot {
    /// Capture the committed values of every table.
    ///
    /// The caller must ensure the store is quiescent (no concurrent writers);
    /// the engine takes snapshots at the end-of-batch barrier where that holds
    /// by construction.
    pub fn capture(store: &StateStore) -> Self {
        let tables = store
            .tables()
            .map(|(_, table)| TableSnapshot {
                name: table.name().to_owned(),
                entries: table.snapshot(),
            })
            .collect();
        StoreSnapshot { tables }
    }

    /// Total number of records across all tables.
    pub fn record_count(&self) -> usize {
        self.tables.iter().map(|t| t.entries.len()).sum()
    }

    /// Encode into the `TSNAP1` binary format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.record_count() * 24);
        out.extend_from_slice(codec::MAGIC);
        out.extend_from_slice(&(self.tables.len() as u32).to_le_bytes());
        for table in &self.tables {
            codec::put_string(&mut out, &table.name);
            out.extend_from_slice(&(table.entries.len() as u64).to_le_bytes());
            for (key, value) in &table.entries {
                out.extend_from_slice(&key.to_le_bytes());
                codec::encode_value(&mut out, value);
            }
        }
        out
    }

    /// Decode from the `TSNAP1` binary format.
    pub fn decode(bytes: &[u8]) -> StateResult<Self> {
        let mut reader = Reader::new(bytes);
        reader.expect_magic()?;
        let table_count = reader.u32()? as usize;
        let mut tables = Vec::with_capacity(table_count);
        for _ in 0..table_count {
            let name = reader.string()?;
            let record_count = reader.u64()? as usize;
            let mut entries = Vec::with_capacity(record_count);
            for _ in 0..record_count {
                let key = reader.u64()?;
                let value = codec::decode_value(&mut reader)?;
                entries.push((key, value));
            }
            tables.push(TableSnapshot { name, entries });
        }
        if reader.remaining() != 0 {
            return Err(StateError::Corrupted(format!(
                "{} trailing bytes after snapshot",
                reader.remaining()
            )));
        }
        Ok(StoreSnapshot { tables })
    }

    /// Restore every value of this snapshot into `store`.
    ///
    /// The store must have the same schema (table names and keys); restoring
    /// onto a mismatched store fails without applying a partial state.
    pub fn restore(&self, store: &StateStore) -> StateResult<()> {
        // Validate first so restore is all-or-nothing.
        for table in &self.tables {
            let id = store.table_id(&table.name)?;
            for (key, _) in &table.entries {
                store.record(id, *key)?;
            }
        }
        for table in &self.tables {
            let id = store.table_id(&table.name)?;
            for (key, value) in &table.entries {
                store.record(id, *key)?.write_committed(value.clone());
            }
        }
        Ok(())
    }
}

/// Writes and recovers on-disk checkpoints of a store.
#[derive(Debug)]
pub struct Checkpointer {
    directory: PathBuf,
    retain: usize,
    sequence: AtomicU64,
}

impl Checkpointer {
    /// Create a checkpointer writing into `directory`, keeping the most
    /// recent `retain` checkpoints (older ones are pruned after every write).
    ///
    /// The directory is created if missing.  If it already contains
    /// checkpoints, numbering continues after the largest existing sequence
    /// number so recovery and further checkpointing compose.
    pub fn new(directory: impl Into<PathBuf>, retain: usize) -> StateResult<Self> {
        let directory = directory.into();
        fs::create_dir_all(&directory)?;
        let next = Self::existing_sequences(&directory)?
            .last()
            .map(|&(seq, _)| seq + 1)
            .unwrap_or(0);
        Ok(Checkpointer {
            directory,
            retain: retain.max(1),
            sequence: AtomicU64::new(next),
        })
    }

    /// Directory the checkpoints are written to.
    pub fn directory(&self) -> &Path {
        &self.directory
    }

    /// Number of checkpoints retained.
    pub fn retain(&self) -> usize {
        self.retain
    }

    /// Sequence number the next checkpoint will use.
    pub fn next_sequence(&self) -> u64 {
        self.sequence.load(Ordering::SeqCst)
    }

    /// Existing checkpoint files, sorted by sequence number.
    fn existing_sequences(directory: &Path) -> StateResult<Vec<(u64, PathBuf)>> {
        let mut found = Vec::new();
        if !directory.exists() {
            return Ok(found);
        }
        for entry in fs::read_dir(directory)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some(CHECKPOINT_EXTENSION) {
                continue;
            }
            let stem = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or_default();
            if let Some(seq) = stem
                .strip_prefix("checkpoint-")
                .and_then(|s| s.parse::<u64>().ok())
            {
                found.push((seq, path));
            }
        }
        found.sort_by_key(|&(seq, _)| seq);
        Ok(found)
    }

    /// Paths of all checkpoints currently on disk, oldest first.
    pub fn list(&self) -> StateResult<Vec<PathBuf>> {
        Ok(Self::existing_sequences(&self.directory)?
            .into_iter()
            .map(|(_, p)| p)
            .collect())
    }

    fn path_for(&self, sequence: u64) -> PathBuf {
        self.directory
            .join(format!("checkpoint-{sequence:012}.{CHECKPOINT_EXTENSION}"))
    }

    /// Write a snapshot of `store` as the next checkpoint and prune old ones.
    ///
    /// Returns the path of the new checkpoint file.
    pub fn checkpoint(&self, store: &StateStore) -> StateResult<PathBuf> {
        self.write_snapshot(&StoreSnapshot::capture(store))
    }

    /// Write an already-captured snapshot as the next checkpoint.
    pub fn write_snapshot(&self, snapshot: &StoreSnapshot) -> StateResult<PathBuf> {
        let sequence = self.sequence.fetch_add(1, Ordering::SeqCst);
        let path = self.path_for(sequence);
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, snapshot.encode())?;
        fs::rename(&tmp, &path)?;
        self.prune()?;
        Ok(path)
    }

    /// Remove all but the newest `retain` checkpoints.
    fn prune(&self) -> StateResult<()> {
        let existing = Self::existing_sequences(&self.directory)?;
        if existing.len() <= self.retain {
            return Ok(());
        }
        for (_, path) in &existing[..existing.len() - self.retain] {
            fs::remove_file(path)?;
        }
        Ok(())
    }

    /// Load the most recent checkpoint, if any exists.
    pub fn latest_snapshot(&self) -> StateResult<Option<StoreSnapshot>> {
        match Self::existing_sequences(&self.directory)?.last() {
            None => Ok(None),
            Some((_, path)) => {
                let bytes = fs::read(path)?;
                Ok(Some(StoreSnapshot::decode(&bytes)?))
            }
        }
    }

    /// Convenience: restore the most recent checkpoint onto `store`.
    ///
    /// Returns `true` if a checkpoint was found and applied.
    pub fn recover_into(&self, store: &StateStore) -> StateResult<bool> {
        match self.latest_snapshot()? {
            None => Ok(false),
            Some(snapshot) => {
                snapshot.restore(store)?;
                Ok(true)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;
    use std::sync::Arc;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tstream-checkpoint-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_store() -> Arc<StateStore> {
        let accounts = TableBuilder::new("accounts")
            .extend((0..32u64).map(|k| (k, Value::Long(k as i64 * 100))))
            .build()
            .unwrap();
        let speeds = TableBuilder::new("speeds")
            .extend((0..8u64).map(|k| (k, Value::Double(60.0 + k as f64))))
            .build()
            .unwrap();
        StateStore::new(vec![accounts, speeds]).unwrap()
    }

    #[test]
    fn snapshot_encode_decode_round_trip() {
        let store = sample_store();
        store
            .record(crate::TableId(0), 3)
            .unwrap()
            .write_committed(Value::Long(-7));
        let snapshot = StoreSnapshot::capture(&store);
        assert_eq!(snapshot.record_count(), 40);
        let decoded = StoreSnapshot::decode(&snapshot.encode()).unwrap();
        assert_eq!(decoded, snapshot);
    }

    #[test]
    fn restore_reproduces_the_captured_state() {
        let source = sample_store();
        source
            .record(crate::TableId(0), 5)
            .unwrap()
            .write_committed(Value::Long(555));
        source
            .record(crate::TableId(1), 2)
            .unwrap()
            .write_committed(Value::Double(12.5));
        let snapshot = StoreSnapshot::capture(&source);

        let target = sample_store();
        snapshot.restore(&target).unwrap();
        assert_eq!(target.snapshot(), source.snapshot());
    }

    #[test]
    fn restore_onto_mismatched_schema_fails_without_partial_apply() {
        let source = sample_store();
        let snapshot = StoreSnapshot::capture(&source);

        let other = StateStore::new(vec![TableBuilder::new("other")
            .insert(0, Value::Long(1))
            .build()
            .unwrap()])
        .unwrap();
        let before = other.snapshot();
        assert!(matches!(
            snapshot.restore(&other),
            Err(StateError::UnknownTable(_))
        ));
        assert_eq!(
            other.snapshot(),
            before,
            "nothing may be applied on failure"
        );
    }

    #[test]
    fn corrupted_bytes_are_rejected() {
        let store = sample_store();
        let mut bytes = StoreSnapshot::capture(&store).encode();
        bytes.truncate(bytes.len() / 2);
        assert!(matches!(
            StoreSnapshot::decode(&bytes),
            Err(StateError::Corrupted(_))
        ));
        assert!(matches!(
            StoreSnapshot::decode(b"garbage"),
            Err(StateError::Corrupted(_))
        ));
        let mut trailing = StoreSnapshot::capture(&store).encode();
        trailing.push(0);
        assert!(matches!(
            StoreSnapshot::decode(&trailing),
            Err(StateError::Corrupted(_))
        ));
    }

    #[test]
    fn checkpointer_writes_numbered_files_and_prunes() {
        let dir = temp_dir("prune");
        let store = sample_store();
        let cp = Checkpointer::new(&dir, 2).unwrap();
        for i in 0..5i64 {
            store
                .record(crate::TableId(0), 0)
                .unwrap()
                .write_committed(Value::Long(i));
            cp.checkpoint(&store).unwrap();
        }
        let files = cp.list().unwrap();
        assert_eq!(files.len(), 2, "only the two newest checkpoints remain");
        // The latest checkpoint holds the latest value.
        let latest = cp.latest_snapshot().unwrap().unwrap();
        assert_eq!(latest.tables[0].entries[0].1, Value::Long(4));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_restores_the_latest_checkpoint() {
        let dir = temp_dir("recover");
        let store = sample_store();
        {
            let cp = Checkpointer::new(&dir, 4).unwrap();
            store
                .record(crate::TableId(0), 7)
                .unwrap()
                .write_committed(Value::Long(777));
            cp.checkpoint(&store).unwrap();
        }
        // "Crash": a brand-new store and a brand-new checkpointer over the
        // same directory.
        let recovered = sample_store();
        let cp = Checkpointer::new(&dir, 4).unwrap();
        assert!(cp.recover_into(&recovered).unwrap());
        assert_eq!(recovered.snapshot(), store.snapshot());
        // Sequence numbering continues after the recovered checkpoint.
        assert_eq!(cp.next_sequence(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_with_no_checkpoints_is_a_noop() {
        let dir = temp_dir("empty");
        let cp = Checkpointer::new(&dir, 1).unwrap();
        let store = sample_store();
        let before = store.snapshot();
        assert!(!cp.recover_into(&store).unwrap());
        assert_eq!(store.snapshot(), before);
        assert!(cp.latest_snapshot().unwrap().is_none());
        assert!(cp.list().unwrap().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn configuration_accessors() {
        let dir = temp_dir("config");
        let cp = Checkpointer::new(&dir, 0).unwrap();
        assert_eq!(cp.retain(), 1, "retention is clamped to at least one");
        assert_eq!(cp.directory(), dir.as_path());
        assert_eq!(cp.next_sequence(), 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
