//! The shard layer: hash-partitioned ownership of application state.
//!
//! The seed implementation kept every table as one flat record array behind a
//! single name index, so "partitioning" in the multi-partition experiments was
//! simulated by the workload generator instead of being a property of the
//! store.  This module makes partitioning physical: a [`ShardRouter`] maps
//! every application key to exactly one shard, tables allocate one record
//! slice per shard, and every layer above (chain pools, event routing, the
//! figure harnesses) routes through the *same* function, so a key's shard is
//! a single global fact rather than a per-layer convention.
//!
//! Routing is **key-only** on purpose: records of different tables that share
//! a key (e.g. TP's `road_speed` and `vehicle_cnt` entries of one road
//! segment, or SL's account/asset pair) land on the same shard, which is what
//! makes shard-affine executor assignment cut cross-shard traffic for the
//! paper's applications.

use crate::error::{StateError, StateResult};
use crate::partition::Partitioner;
use crate::Key;

/// Hard upper bound on the shard count.
///
/// The shard index is packed into the top bits of a table slot
/// (see [`crate::table::Table`]), which reserves 8 bits for it.
pub const MAX_SHARDS: u32 = 256;

/// Identifier of one shard of the state store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShardId(pub u32);

impl ShardId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Deterministic mapping from application keys to shards.
///
/// A thin wrapper over the multiplicative-hash [`Partitioner`]: the router
/// exists so that the state store, the chain pools and the stream layer all
/// agree on one routing function (and so the shard count is validated in one
/// place).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    partitioner: Partitioner,
}

impl ShardRouter {
    /// Creates a router over `shards` shards.
    ///
    /// Fails with [`StateError::InvalidDefinition`] when `shards` is zero or
    /// exceeds [`MAX_SHARDS`].
    pub fn new(shards: u32) -> StateResult<Self> {
        if shards == 0 {
            return Err(StateError::InvalidDefinition(
                "a state store needs at least one shard (num_shards == 0)".into(),
            ));
        }
        if shards > MAX_SHARDS {
            return Err(StateError::InvalidDefinition(format!(
                "shard count {shards} exceeds the maximum of {MAX_SHARDS}"
            )));
        }
        Ok(ShardRouter {
            partitioner: Partitioner::new(shards),
        })
    }

    /// The trivial single-shard router (the unsharded seed behaviour).
    pub fn single() -> Self {
        ShardRouter {
            partitioner: Partitioner::new(1),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.partitioner.partitions()
    }

    /// Shard owning `key`.  Every key maps to exactly one shard, and the
    /// mapping depends only on `(key, shard count)`.
    #[inline]
    pub fn shard_of(&self, key: Key) -> ShardId {
        ShardId(self.partitioner.partition_of(key))
    }

    /// Iterate over all shard ids.
    pub fn all(&self) -> impl Iterator<Item = ShardId> {
        (0..self.shards()).map(ShardId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_shards_is_rejected() {
        assert!(matches!(
            ShardRouter::new(0),
            Err(StateError::InvalidDefinition(_))
        ));
    }

    #[test]
    fn oversized_shard_count_is_rejected() {
        assert!(ShardRouter::new(MAX_SHARDS).is_ok());
        assert!(matches!(
            ShardRouter::new(MAX_SHARDS + 1),
            Err(StateError::InvalidDefinition(_))
        ));
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        for shards in [1u32, 2, 4, 8, 256] {
            let router = ShardRouter::new(shards).unwrap();
            assert_eq!(router.shards(), shards);
            for key in 0..2_000u64 {
                let s = router.shard_of(key);
                assert_eq!(s, router.shard_of(key), "routing must be deterministic");
                assert!(s.0 < shards);
            }
        }
    }

    #[test]
    fn single_router_maps_everything_to_shard_zero() {
        let router = ShardRouter::single();
        assert_eq!(router.shards(), 1);
        for key in [0u64, 17, u64::MAX] {
            assert_eq!(router.shard_of(key), ShardId(0));
        }
        assert_eq!(router.all().count(), 1);
    }

    #[test]
    fn multi_shard_distribution_uses_every_shard() {
        let router = ShardRouter::new(8).unwrap();
        let mut seen = [false; 8];
        for key in 0..10_000u64 {
            seen[router.shard_of(key).index()] = true;
        }
        assert!(seen.iter().all(|&s| s), "all shards must receive keys");
    }
}
