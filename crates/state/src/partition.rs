//! Hash partitioning of application state.
//!
//! The PAT scheme (S-Store style, Section II-C.3) splits application state
//! into disjoint partitions by hashing primary keys; a transaction touching
//! several partitions is a *multi-partition transaction* and has to
//! synchronise on every one of them.  The same partitioner is also used by
//! TStream's shared-nothing chain placement (Section IV-E) to route operation
//! chains to executors, and — through [`crate::shard::ShardRouter`] — by the
//! store's physical shard layer, so the PAT partitions, the record shards and
//! the chain-pool routing all derive from one hash function.

use crate::Key;

/// Maps keys to a fixed number of partitions by hashing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partitioner {
    partitions: u32,
}

impl Partitioner {
    /// Creates a partitioner over `partitions` partitions (at least one).
    pub fn new(partitions: u32) -> Self {
        Partitioner {
            partitions: partitions.max(1),
        }
    }

    /// Number of partitions.
    pub fn partitions(&self) -> u32 {
        self.partitions
    }

    /// Partition of a key: a simple multiplicative hash followed by a modulo,
    /// the "simple hashing strategy" of Section VI-E.
    #[inline]
    pub fn partition_of(&self, key: Key) -> u32 {
        let mut h = key;
        h ^= h >> 31;
        h = h.wrapping_mul(0x7FB5_D329_728E_A185);
        h ^= h >> 27;
        (h % self.partitions as u64) as u32
    }

    /// Partition of a key within a specific table (tables are partitioned
    /// independently; mixing the table id into the hash keeps same-key records
    /// of different tables from always landing together).
    #[inline]
    pub fn partition_of_in_table(&self, table: u32, key: Key) -> u32 {
        self.partition_of(key ^ ((table as u64) << 56 | (table as u64)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_stable_and_in_range() {
        let p = Partitioner::new(16);
        for key in 0..10_000u64 {
            let a = p.partition_of(key);
            let b = p.partition_of(key);
            assert_eq!(a, b);
            assert!(a < 16);
        }
    }

    #[test]
    fn zero_partitions_clamped_to_one() {
        let p = Partitioner::new(0);
        assert_eq!(p.partitions(), 1);
        assert_eq!(p.partition_of(123), 0);
    }

    #[test]
    fn distribution_is_roughly_balanced() {
        let parts = 8u32;
        let p = Partitioner::new(parts);
        let mut counts = vec![0usize; parts as usize];
        let n = 80_000u64;
        for key in 0..n {
            counts[p.partition_of(key) as usize] += 1;
        }
        let expected = (n / parts as u64) as f64;
        for c in counts {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.15, "partition skew too high: {c} vs {expected}");
        }
    }

    #[test]
    fn table_id_changes_placement_for_some_keys() {
        let p = Partitioner::new(8);
        let different = (0..1000u64)
            .filter(|&k| p.partition_of_in_table(0, k) != p.partition_of_in_table(1, k))
            .count();
        assert!(different > 0, "table id must influence partitioning");
    }
}
