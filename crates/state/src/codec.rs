//! Binary encoding of state values and store snapshots.
//!
//! The durability guarantee of Section IV-D ("TStream can replicate states
//! stored in memory to disk before resuming to compute mode") needs a way to
//! serialise the committed contents of a [`crate::StateStore`].  The format is
//! a small hand-rolled binary codec rather than a third-party serialisation
//! framework: the value space is tiny (six variants), the format must stay
//! stable across runs for the checkpoint/restore tests, and keeping it in-tree
//! avoids pulling `serde` into every downstream crate.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! snapshot   := header [manifest] u32:table_count table*
//! header     := "TSNAP" version_digit     (version 1 = tables only,
//!                                          version 2 = manifest + tables)
//! manifest   := u64:epoch u64:events u64:committed u64:rejected
//! table      := u32:name_len name_bytes u64:record_count record*
//! record     := u64:key value
//! value      := u8:tag payload
//!   tag 0 = Null                      (no payload)
//!   tag 1 = Long   i64
//!   tag 2 = Double f64 bit pattern
//!   tag 3 = Str    u32:len bytes (UTF-8)
//!   tag 4 = Set    u32:len u64*   (ids sorted ascending so encoding is
//!                                  deterministic)
//!   tag 5 = Pair   i64 i64
//! ```

use std::collections::HashSet;

use crate::error::{StateError, StateResult};
use crate::value::Value;

/// Magic prefix of every snapshot file; a single ASCII-digit version byte
/// follows it (`TSNAP1`, `TSNAP2`, ...).
pub const SNAPSHOT_MAGIC: &[u8; 5] = b"TSNAP";

/// Format version of a bare store snapshot (tables only).
pub const SNAPSHOT_VERSION_PLAIN: u8 = 1;

/// Format version of an epoch-stamped checkpoint: a
/// [`crate::checkpoint::CheckpointManifest`] section precedes the tables.
pub const SNAPSHOT_VERSION_MANIFEST: u8 = 2;

/// Newest snapshot format version this build can decode.  Files carrying a
/// larger version are rejected with [`StateError::UnsupportedVersion`] so a
/// downgrade never mis-parses a newer layout as garbage.
pub const SNAPSHOT_VERSION_MAX: u8 = SNAPSHOT_VERSION_MANIFEST;

/// Append a snapshot header (`TSNAP` + ASCII version digit).
pub fn put_snapshot_header(out: &mut Vec<u8>, version: u8) {
    debug_assert!((1..=9).contains(&version));
    out.extend_from_slice(SNAPSHOT_MAGIC);
    out.push(b'0' + version);
}

/// A cursor over an encoded byte buffer.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> StateResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(StateError::Corrupted(format!(
                "unexpected end of input: needed {n} bytes, {} left",
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> StateResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Skip `n` bytes without interpreting them.
    pub fn skip(&mut self, n: usize) -> StateResult<()> {
        self.take(n).map(|_| ())
    }

    /// Read a little-endian u32.
    pub fn u32(&mut self) -> StateResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian u64.
    pub fn u64(&mut self) -> StateResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian i64.
    pub fn i64(&mut self) -> StateResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian f64.
    pub fn f64(&mut self) -> StateResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> StateResult<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| StateError::Corrupted(format!("invalid UTF-8 in string: {e}")))
    }

    /// Check and consume a versioned header: `magic` followed by one ASCII
    /// version digit.  Returns the version; a version newer than
    /// `max_supported` is rejected with [`StateError::UnsupportedVersion`]
    /// (naming `artifact`), a malformed header with
    /// [`StateError::Corrupted`].
    pub fn versioned_header(
        &mut self,
        magic: &[u8],
        max_supported: u8,
        artifact: &'static str,
    ) -> StateResult<u8> {
        let got = self.take(magic.len())?;
        if got != magic {
            return Err(StateError::Corrupted(format!(
                "missing {} magic prefix",
                String::from_utf8_lossy(magic)
            )));
        }
        let byte = self.u8()?;
        if !byte.is_ascii_digit() || byte == b'0' {
            return Err(StateError::Corrupted(format!(
                "malformed {artifact} version byte {byte:#04x}"
            )));
        }
        let version = byte - b'0';
        if version > max_supported {
            return Err(StateError::UnsupportedVersion {
                artifact,
                found: version,
                supported: max_supported,
            });
        }
        Ok(version)
    }

    /// Check and consume a snapshot header; returns the format version.
    pub fn snapshot_version(&mut self) -> StateResult<u8> {
        self.versioned_header(SNAPSHOT_MAGIC, SNAPSHOT_VERSION_MAX, "checkpoint")
    }
}

/// Append a length-prefixed UTF-8 string.
pub fn put_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Encode one value onto the end of `out`.
pub fn encode_value(out: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Null => out.push(0),
        Value::Long(v) => {
            out.push(1);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Value::Double(v) => {
            out.push(2);
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(3);
            put_string(out, s);
        }
        Value::Set(set) => {
            out.push(4);
            out.extend_from_slice(&(set.len() as u32).to_le_bytes());
            let mut ids: Vec<u64> = set.iter().copied().collect();
            ids.sort_unstable();
            for id in ids {
                out.extend_from_slice(&id.to_le_bytes());
            }
        }
        Value::Pair(a, b) => {
            out.push(5);
            out.extend_from_slice(&a.to_le_bytes());
            out.extend_from_slice(&b.to_le_bytes());
        }
    }
}

/// Decode one value from the reader.
pub fn decode_value(reader: &mut Reader<'_>) -> StateResult<Value> {
    match reader.u8()? {
        0 => Ok(Value::Null),
        1 => Ok(Value::Long(reader.i64()?)),
        2 => Ok(Value::Double(reader.f64()?)),
        3 => Ok(Value::Str(reader.string()?.into())),
        4 => {
            let len = reader.u32()? as usize;
            let mut set = HashSet::with_capacity(len);
            for _ in 0..len {
                set.insert(reader.u64()?);
            }
            Ok(Value::Set(set))
        }
        5 => Ok(Value::Pair(reader.i64()?, reader.i64()?)),
        tag => Err(StateError::Corrupted(format!("unknown value tag {tag}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(value: &Value) -> Value {
        let mut buf = Vec::new();
        encode_value(&mut buf, value);
        let mut reader = Reader::new(&buf);
        let decoded = decode_value(&mut reader).unwrap();
        assert_eq!(reader.remaining(), 0, "every byte must be consumed");
        decoded
    }

    #[test]
    fn every_variant_round_trips() {
        let samples = [
            Value::Null,
            Value::Long(-42),
            Value::Long(i64::MAX),
            Value::Double(3.25),
            Value::Double(f64::MIN_POSITIVE),
            Value::Str("".into()),
            Value::Str("hello tstream".into()),
            Value::Set([1u64, 9, 100_000].into_iter().collect()),
            Value::Set(HashSet::new()),
            Value::Pair(-1, 77),
        ];
        for v in &samples {
            assert_eq!(&round_trip(v), v);
        }
    }

    #[test]
    fn set_encoding_is_deterministic() {
        let a: Value = Value::Set([5u64, 1, 3].into_iter().collect());
        let b: Value = Value::Set([3u64, 5, 1].into_iter().collect());
        let mut ea = Vec::new();
        let mut eb = Vec::new();
        encode_value(&mut ea, &a);
        encode_value(&mut eb, &b);
        assert_eq!(ea, eb);
    }

    #[test]
    fn truncated_input_is_reported_as_corrupted() {
        let mut buf = Vec::new();
        encode_value(&mut buf, &Value::Long(7));
        buf.truncate(buf.len() - 1);
        let mut reader = Reader::new(&buf);
        assert!(matches!(
            decode_value(&mut reader),
            Err(StateError::Corrupted(_))
        ));
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let mut reader = Reader::new(&[250u8]);
        assert!(matches!(
            decode_value(&mut reader),
            Err(StateError::Corrupted(_))
        ));
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut buf = vec![3u8];
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&[0xFF, 0xFE]);
        let mut reader = Reader::new(&buf);
        assert!(matches!(
            decode_value(&mut reader),
            Err(StateError::Corrupted(_))
        ));
    }

    #[test]
    fn magic_is_checked() {
        let mut reader = Reader::new(b"NOTSNAP...");
        assert!(matches!(
            reader.snapshot_version(),
            Err(StateError::Corrupted(_))
        ));
        let mut ok = Vec::new();
        put_snapshot_header(&mut ok, SNAPSHOT_VERSION_PLAIN);
        let mut reader = Reader::new(&ok);
        assert_eq!(reader.snapshot_version().unwrap(), 1);
        // The version-1 header is byte-identical to the seed's `TSNAP1`
        // magic, so existing checkpoint files stay readable.
        assert_eq!(ok, b"TSNAP1");
    }

    #[test]
    fn newer_versions_are_rejected_with_a_clear_error() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(SNAPSHOT_MAGIC);
        bytes.push(b'9');
        let mut reader = Reader::new(&bytes);
        match reader.snapshot_version() {
            Err(StateError::UnsupportedVersion {
                artifact,
                found,
                supported,
            }) => {
                assert_eq!(artifact, "checkpoint");
                assert_eq!(found, 9);
                assert_eq!(supported, SNAPSHOT_VERSION_MAX);
                let msg = StateError::UnsupportedVersion {
                    artifact,
                    found,
                    supported,
                }
                .to_string();
                assert!(msg.contains("upgrade"), "actionable message: {msg}");
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn malformed_version_bytes_are_corrupted_not_unsupported() {
        for bad in [b'0', b'x', 0xFF] {
            let mut bytes = Vec::new();
            bytes.extend_from_slice(SNAPSHOT_MAGIC);
            bytes.push(bad);
            let mut reader = Reader::new(&bytes);
            assert!(matches!(
                reader.snapshot_version(),
                Err(StateError::Corrupted(_))
            ));
        }
    }

    #[test]
    fn strings_round_trip_through_helpers() {
        let mut buf = Vec::new();
        put_string(&mut buf, "road_speed");
        let mut reader = Reader::new(&buf);
        assert_eq!(reader.string().unwrap(), "road_speed");
    }
}
