//! Binary encoding of state values and store snapshots.
//!
//! The durability guarantee of Section IV-D ("TStream can replicate states
//! stored in memory to disk before resuming to compute mode") needs a way to
//! serialise the committed contents of a [`crate::StateStore`].  The format is
//! a small hand-rolled binary codec rather than a third-party serialisation
//! framework: the value space is tiny (six variants), the format must stay
//! stable across runs for the checkpoint/restore tests, and keeping it in-tree
//! avoids pulling `serde` into every downstream crate.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! snapshot   := MAGIC u32:table_count table*
//! table      := u32:name_len name_bytes u64:record_count record*
//! record     := u64:key value
//! value      := u8:tag payload
//!   tag 0 = Null                      (no payload)
//!   tag 1 = Long   i64
//!   tag 2 = Double f64 bit pattern
//!   tag 3 = Str    u32:len bytes (UTF-8)
//!   tag 4 = Set    u32:len u64*   (ids sorted ascending so encoding is
//!                                  deterministic)
//!   tag 5 = Pair   i64 i64
//! ```

use std::collections::HashSet;

use crate::error::{StateError, StateResult};
use crate::value::Value;

/// Magic prefix of every snapshot file (`TSNAP` + format version 1).
pub const MAGIC: &[u8; 6] = b"TSNAP1";

/// A cursor over an encoded byte buffer.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> StateResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(StateError::Corrupted(format!(
                "unexpected end of input: needed {n} bytes, {} left",
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> StateResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian u32.
    pub fn u32(&mut self) -> StateResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian u64.
    pub fn u64(&mut self) -> StateResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian i64.
    pub fn i64(&mut self) -> StateResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian f64.
    pub fn f64(&mut self) -> StateResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> StateResult<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| StateError::Corrupted(format!("invalid UTF-8 in string: {e}")))
    }

    /// Check and consume the snapshot magic.
    pub fn expect_magic(&mut self) -> StateResult<()> {
        let got = self.take(MAGIC.len())?;
        if got != MAGIC {
            return Err(StateError::Corrupted(
                "missing TSNAP1 magic prefix".to_owned(),
            ));
        }
        Ok(())
    }
}

/// Append a length-prefixed UTF-8 string.
pub fn put_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Encode one value onto the end of `out`.
pub fn encode_value(out: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Null => out.push(0),
        Value::Long(v) => {
            out.push(1);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Value::Double(v) => {
            out.push(2);
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(3);
            put_string(out, s);
        }
        Value::Set(set) => {
            out.push(4);
            out.extend_from_slice(&(set.len() as u32).to_le_bytes());
            let mut ids: Vec<u64> = set.iter().copied().collect();
            ids.sort_unstable();
            for id in ids {
                out.extend_from_slice(&id.to_le_bytes());
            }
        }
        Value::Pair(a, b) => {
            out.push(5);
            out.extend_from_slice(&a.to_le_bytes());
            out.extend_from_slice(&b.to_le_bytes());
        }
    }
}

/// Decode one value from the reader.
pub fn decode_value(reader: &mut Reader<'_>) -> StateResult<Value> {
    match reader.u8()? {
        0 => Ok(Value::Null),
        1 => Ok(Value::Long(reader.i64()?)),
        2 => Ok(Value::Double(reader.f64()?)),
        3 => Ok(Value::Str(reader.string()?)),
        4 => {
            let len = reader.u32()? as usize;
            let mut set = HashSet::with_capacity(len);
            for _ in 0..len {
                set.insert(reader.u64()?);
            }
            Ok(Value::Set(set))
        }
        5 => Ok(Value::Pair(reader.i64()?, reader.i64()?)),
        tag => Err(StateError::Corrupted(format!("unknown value tag {tag}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(value: &Value) -> Value {
        let mut buf = Vec::new();
        encode_value(&mut buf, value);
        let mut reader = Reader::new(&buf);
        let decoded = decode_value(&mut reader).unwrap();
        assert_eq!(reader.remaining(), 0, "every byte must be consumed");
        decoded
    }

    #[test]
    fn every_variant_round_trips() {
        let samples = [
            Value::Null,
            Value::Long(-42),
            Value::Long(i64::MAX),
            Value::Double(3.25),
            Value::Double(f64::MIN_POSITIVE),
            Value::Str(String::new()),
            Value::Str("hello tstream".into()),
            Value::Set([1u64, 9, 100_000].into_iter().collect()),
            Value::Set(HashSet::new()),
            Value::Pair(-1, 77),
        ];
        for v in &samples {
            assert_eq!(&round_trip(v), v);
        }
    }

    #[test]
    fn set_encoding_is_deterministic() {
        let a: Value = Value::Set([5u64, 1, 3].into_iter().collect());
        let b: Value = Value::Set([3u64, 5, 1].into_iter().collect());
        let mut ea = Vec::new();
        let mut eb = Vec::new();
        encode_value(&mut ea, &a);
        encode_value(&mut eb, &b);
        assert_eq!(ea, eb);
    }

    #[test]
    fn truncated_input_is_reported_as_corrupted() {
        let mut buf = Vec::new();
        encode_value(&mut buf, &Value::Long(7));
        buf.truncate(buf.len() - 1);
        let mut reader = Reader::new(&buf);
        assert!(matches!(
            decode_value(&mut reader),
            Err(StateError::Corrupted(_))
        ));
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let mut reader = Reader::new(&[250u8]);
        assert!(matches!(
            decode_value(&mut reader),
            Err(StateError::Corrupted(_))
        ));
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut buf = vec![3u8];
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&[0xFF, 0xFE]);
        let mut reader = Reader::new(&buf);
        assert!(matches!(
            decode_value(&mut reader),
            Err(StateError::Corrupted(_))
        ));
    }

    #[test]
    fn magic_is_checked() {
        let mut reader = Reader::new(b"NOTSNAP...");
        assert!(matches!(
            reader.expect_magic(),
            Err(StateError::Corrupted(_))
        ));
        let mut ok = Vec::new();
        ok.extend_from_slice(MAGIC);
        let mut reader = Reader::new(&ok);
        assert!(reader.expect_magic().is_ok());
    }

    #[test]
    fn strings_round_trip_through_helpers() {
        let mut buf = Vec::new();
        put_string(&mut buf, "road_speed");
        let mut reader = Reader::new(&buf);
        assert_eq!(reader.string().unwrap(), "road_speed");
    }
}
