//! Tables: named collections of keyed records, physically grouped by shard.
//!
//! Since the sharding rework a table is no longer one flat record array: its
//! records are bucketed by the store's [`ShardRouter`] into per-shard slices,
//! each with its own key index and its own maintenance lock, so shard-level
//! operations (sync resets, per-shard snapshots) on different shards never
//! contend.  A *slot* still identifies a record in O(1), but now encodes the
//! owning shard in its top bits (see [`SHARD_SHIFT`]).

use parking_lot::RwLock;

use crate::error::{StateError, StateResult};
use crate::index::ShardedIndex;
use crate::record::Record;
use crate::shard::{ShardId, ShardRouter};
use crate::value::Value;
use crate::Key;

/// Bits of a slot reserved for the local (within-shard) record index.
pub const SHARD_SHIFT: u32 = 24;

/// Mask extracting the local record index from a slot.
pub const LOCAL_SLOT_MASK: u32 = (1 << SHARD_SHIFT) - 1;

/// One shard's slice of a table: contiguous records plus a local key index
/// and a maintenance lock guarding shard-level operations.
#[derive(Debug)]
struct TableShard {
    records: Box<[Record]>,
    keys: Box<[Key]>,
    index: ShardedIndex,
    /// Guards shard-level maintenance: [`Table::reset_sync`] (writer) and
    /// [`Table::snapshot`] / [`Table::snapshot_shard`] (readers) exclude each
    /// other per shard, while maintenance of unrelated shards never contends.
    /// Record *values* are synchronised per record and the hot access paths
    /// ([`Table::get`], [`Table::iter`]) never take this lock — they are only
    /// valid at quiescent points, as in the seed.
    maintenance: RwLock<()>,
}

/// A named table of records.
///
/// Tables are built once before execution (the paper populates all application
/// state up front, Section VI-B) and are immutable in *shape* afterwards:
/// record values change constantly, but no records are added or removed while
/// executors run.  This lets every scheme hold plain `&Record` references
/// without any table-level locking.
#[derive(Debug)]
pub struct Table {
    name: String,
    router: ShardRouter,
    shards: Box<[TableShard]>,
}

impl Table {
    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of records across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.records.len()).sum()
    }

    /// Whether the table has no records.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.records.is_empty())
    }

    /// Number of shards the table is split over.
    pub fn shard_count(&self) -> u32 {
        self.router.shards()
    }

    /// The shard owning `key` (a pure function of the key and shard count).
    pub fn shard_of(&self, key: Key) -> ShardId {
        self.router.shard_of(key)
    }

    /// Number of records resident in one shard.
    pub fn shard_len(&self, shard: ShardId) -> usize {
        self.shards[shard.index()].records.len()
    }

    /// Resolve a key to its slot: shard routing + local index lookup.  The
    /// returned slot encodes the shard in its top bits.
    pub fn slot_of(&self, key: Key) -> StateResult<u32> {
        let shard = self.router.shard_of(key);
        self.shards[shard.index()]
            .index
            .lookup(key)
            .map(|local| (shard.0 << SHARD_SHIFT) | local)
            .ok_or_else(|| StateError::KeyNotFound {
                table: self.name.clone(),
                key,
            })
    }

    /// Access a record by key (shard routing + index lookup + slot access).
    pub fn get(&self, key: Key) -> StateResult<&Record> {
        Ok(self.get_slot(self.slot_of(key)?))
    }

    /// Access a record directly by slot (used by schemes that pre-resolve
    /// read/write sets, feature F2 of the paper).
    pub fn get_slot(&self, slot: u32) -> &Record {
        let shard = (slot >> SHARD_SHIFT) as usize;
        &self.shards[shard].records[(slot & LOCAL_SLOT_MASK) as usize]
    }

    /// The application key stored at `slot`.
    pub fn key_at(&self, slot: u32) -> Key {
        let shard = (slot >> SHARD_SHIFT) as usize;
        self.shards[shard].keys[(slot & LOCAL_SLOT_MASK) as usize]
    }

    /// Iterate over `(key, record)` pairs, shard by shard in local slot order.
    pub fn iter(&self) -> impl Iterator<Item = (Key, &Record)> {
        self.shards
            .iter()
            .flat_map(|s| s.keys.iter().copied().zip(s.records.iter()))
    }

    /// Iterate over the `(key, record)` pairs resident in one shard.
    pub fn iter_shard(&self, shard: ShardId) -> impl Iterator<Item = (Key, &Record)> {
        let s = &self.shards[shard.index()];
        s.keys.iter().copied().zip(s.records.iter())
    }

    /// Snapshot of committed values keyed by application key, **sorted by
    /// key** so snapshots of stores built with different shard counts (and
    /// therefore different physical record orders) compare equal.  Used by
    /// result comparison in tests and the schedule-equivalence harness.
    /// Reads shard by shard under each shard's maintenance lock.
    pub fn snapshot(&self) -> Vec<(Key, Value)> {
        let mut out: Vec<(Key, Value)> = Vec::with_capacity(self.len());
        for shard in self.router.all() {
            out.extend(self.snapshot_shard(shard));
        }
        out.sort_unstable_by_key(|(k, _)| *k);
        out
    }

    /// Snapshot of one shard's committed values, sorted by key.  Takes the
    /// shard's maintenance lock (shared), so concurrent snapshots of
    /// different shards never contend with each other.
    pub fn snapshot_shard(&self, shard: ShardId) -> Vec<(Key, Value)> {
        let s = &self.shards[shard.index()];
        let _guard = s.maintenance.read();
        let mut out: Vec<(Key, Value)> = s
            .keys
            .iter()
            .copied()
            .zip(s.records.iter())
            .map(|(k, r)| (k, r.read_committed()))
            .collect();
        out.sort_unstable_by_key(|(k, _)| *k);
        out
    }

    /// Reset per-run synchronisation state on every record, shard by shard
    /// under each shard's maintenance lock.
    pub fn reset_sync(&self) {
        for shard in self.shards.iter() {
            let _guard = shard.maintenance.write();
            for record in shard.records.iter() {
                record.reset_sync();
            }
        }
    }

    /// Rebuild this table's committed contents over a different shard count.
    ///
    /// Only valid at construction time (before executors run): per-record
    /// synchronisation state and version chains are reset, exactly as a fresh
    /// [`TableBuilder::build_sharded`] would produce.
    pub fn reshard(&self, shards: u32) -> StateResult<Table> {
        let mut builder = TableBuilder::new(self.name.clone());
        for (key, record) in self.iter() {
            builder = builder.insert(key, record.read_committed());
        }
        builder.build_sharded(shards)
    }
}

/// Builder used to populate a table before execution.
#[derive(Debug, Default)]
pub struct TableBuilder {
    name: String,
    entries: Vec<(Key, Value)>,
}

impl TableBuilder {
    /// Starts building a table with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        TableBuilder {
            name: name.into(),
            entries: Vec::new(),
        }
    }

    /// Adds one record.
    pub fn insert(mut self, key: Key, value: Value) -> Self {
        self.entries.push((key, value));
        self
    }

    /// Adds many records from an iterator.
    pub fn extend(mut self, entries: impl IntoIterator<Item = (Key, Value)>) -> Self {
        self.entries.extend(entries);
        self
    }

    /// Number of records added so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no records were added yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Finalise the table as a single shard (the unsharded seed behaviour).
    /// Fails if a key occurs twice.
    pub fn build(self) -> StateResult<Table> {
        self.build_with_router(ShardRouter::single())
    }

    /// Finalise the table over `shards` hash partitions.  Fails if a key
    /// occurs twice, if `shards` is zero or exceeds
    /// [`crate::shard::MAX_SHARDS`], or if one shard would overflow the
    /// [`LOCAL_SLOT_MASK`] local-slot space.
    pub fn build_sharded(self, shards: u32) -> StateResult<Table> {
        let router = ShardRouter::new(shards)?;
        self.build_with_router(router)
    }

    /// Finalise the table using an already-validated router.
    pub fn build_with_router(self, router: ShardRouter) -> StateResult<Table> {
        let shard_count = router.shards() as usize;
        let mut records: Vec<Vec<Record>> = (0..shard_count).map(|_| Vec::new()).collect();
        let mut keys: Vec<Vec<Key>> = (0..shard_count).map(|_| Vec::new()).collect();
        let indexes: Vec<ShardedIndex> = (0..shard_count).map(|_| ShardedIndex::new()).collect();
        for (key, value) in self.entries {
            let shard = router.shard_of(key).index();
            let local = records[shard].len() as u32;
            if local > LOCAL_SLOT_MASK {
                return Err(StateError::InvalidDefinition(format!(
                    "shard {shard} of table `{}` overflows the local slot space",
                    self.name
                )));
            }
            if indexes[shard].insert(key, local).is_some() {
                return Err(StateError::InvalidDefinition(format!(
                    "duplicate key {key} in table `{}`",
                    self.name
                )));
            }
            keys[shard].push(key);
            records[shard].push(Record::new(value));
        }
        let shards = records
            .into_iter()
            .zip(keys)
            .zip(indexes)
            .map(|((records, keys), index)| TableShard {
                records: records.into_boxed_slice(),
                keys: keys.into_boxed_slice(),
                index,
                maintenance: RwLock::new(()),
            })
            .collect();
        Ok(Table {
            name: self.name,
            router,
            shards,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        TableBuilder::new("accounts")
            .extend((0..100u64).map(|k| (k, Value::Long(k as i64 * 10))))
            .build()
            .unwrap()
    }

    fn sample_sharded(shards: u32) -> Table {
        TableBuilder::new("accounts")
            .extend((0..100u64).map(|k| (k, Value::Long(k as i64 * 10))))
            .build_sharded(shards)
            .unwrap()
    }

    #[test]
    fn build_and_lookup() {
        let t = sample_table();
        assert_eq!(t.name(), "accounts");
        assert_eq!(t.len(), 100);
        assert_eq!(t.shard_count(), 1);
        assert_eq!(t.get(42).unwrap().read_committed(), Value::Long(420));
        assert!(matches!(t.get(1000), Err(StateError::KeyNotFound { .. })));
    }

    #[test]
    fn duplicate_keys_rejected() {
        let err = TableBuilder::new("t")
            .insert(1, Value::Long(1))
            .insert(1, Value::Long(2))
            .build()
            .unwrap_err();
        assert!(matches!(err, StateError::InvalidDefinition(_)));
        // The same key always routes to the same shard, so the duplicate is
        // caught under any shard count.
        let err = TableBuilder::new("t")
            .insert(1, Value::Long(1))
            .insert(1, Value::Long(2))
            .build_sharded(8)
            .unwrap_err();
        assert!(matches!(err, StateError::InvalidDefinition(_)));
    }

    #[test]
    fn slots_and_keys_are_consistent() {
        for shards in [1u32, 2, 4, 8] {
            let t = sample_sharded(shards);
            for key in 0..100u64 {
                let slot = t.slot_of(key).unwrap();
                assert_eq!(t.key_at(slot), key);
                assert_eq!((slot >> SHARD_SHIFT), t.shard_of(key).0);
                assert_eq!(
                    t.get_slot(slot).read_committed(),
                    Value::Long(key as i64 * 10)
                );
            }
        }
    }

    #[test]
    fn snapshot_reflects_mutations() {
        let t = sample_table();
        t.get(3).unwrap().write_committed(Value::Long(-1));
        let snap = t.snapshot();
        let (_, v) = snap.iter().find(|(k, _)| *k == 3).unwrap();
        assert_eq!(*v, Value::Long(-1));
    }

    #[test]
    fn snapshots_are_identical_across_shard_counts() {
        let reference = sample_sharded(1).snapshot();
        for shards in [2u32, 4, 8, 64] {
            let t = sample_sharded(shards);
            assert_eq!(t.len(), 100);
            assert_eq!(
                t.snapshot(),
                reference,
                "{shards}-shard snapshot must match the single-shard layout"
            );
        }
    }

    #[test]
    fn shard_slices_partition_the_table() {
        let t = sample_sharded(4);
        let mut seen: Vec<u64> = Vec::new();
        let mut total = 0usize;
        for shard in [0u32, 1, 2, 3].map(ShardId) {
            total += t.shard_len(shard);
            for (key, record) in t.iter_shard(shard) {
                assert_eq!(t.shard_of(key), shard, "key {key} resident in wrong shard");
                assert_eq!(record.read_committed(), Value::Long(key as i64 * 10));
                seen.push(key);
            }
            let snap = t.snapshot_shard(shard);
            assert_eq!(snap.len(), t.shard_len(shard));
        }
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 100, "no key may be lost or duplicated");
        assert_eq!(total, 100);
    }

    #[test]
    fn reshard_preserves_committed_contents() {
        let t = sample_sharded(2);
        t.get(7).unwrap().write_committed(Value::Long(777));
        let resharded = t.reshard(8).unwrap();
        assert_eq!(resharded.shard_count(), 8);
        assert_eq!(resharded.snapshot(), t.snapshot());
    }

    #[test]
    fn empty_table_is_fine() {
        let t = TableBuilder::new("empty").build_sharded(4).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.iter().count(), 0);
        assert_eq!(t.shard_count(), 4);
    }

    #[test]
    fn zero_shards_rejected_at_build() {
        let err = TableBuilder::new("t").build_sharded(0).unwrap_err();
        assert!(matches!(err, StateError::InvalidDefinition(_)));
    }
}
