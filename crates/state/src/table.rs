//! Tables: named collections of keyed records.

use crate::error::{StateError, StateResult};
use crate::index::ShardedIndex;
use crate::record::Record;
use crate::value::Value;
use crate::Key;

/// A named table of records.
///
/// Tables are built once before execution (the paper populates all application
/// state up front, Section VI-B) and are immutable in *shape* afterwards:
/// record values change constantly, but no records are added or removed while
/// executors run.  This lets every scheme hold plain `&Record` references
/// without any table-level locking.
#[derive(Debug)]
pub struct Table {
    name: String,
    records: Box<[Record]>,
    keys: Box<[Key]>,
    index: ShardedIndex,
}

impl Table {
    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the table has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Resolve a key to its slot through the sharded index.
    pub fn slot_of(&self, key: Key) -> StateResult<u32> {
        self.index
            .lookup(key)
            .ok_or_else(|| StateError::KeyNotFound {
                table: self.name.clone(),
                key,
            })
    }

    /// Access a record by key (index lookup + slot access).
    pub fn get(&self, key: Key) -> StateResult<&Record> {
        let slot = self.slot_of(key)?;
        Ok(&self.records[slot as usize])
    }

    /// Access a record directly by slot (used by schemes that pre-resolve
    /// read/write sets, feature F2 of the paper).
    pub fn get_slot(&self, slot: u32) -> &Record {
        &self.records[slot as usize]
    }

    /// The application key stored at `slot`.
    pub fn key_at(&self, slot: u32) -> Key {
        self.keys[slot as usize]
    }

    /// Iterate over `(key, record)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (Key, &Record)> {
        self.keys.iter().copied().zip(self.records.iter())
    }

    /// Snapshot of committed values keyed by application key, useful for
    /// result comparison in tests and the schedule-equivalence harness.
    pub fn snapshot(&self) -> Vec<(Key, Value)> {
        self.iter().map(|(k, r)| (k, r.read_committed())).collect()
    }

    /// Reset per-run synchronisation state on every record.
    pub fn reset_sync(&self) {
        for record in self.records.iter() {
            record.reset_sync();
        }
    }
}

/// Builder used to populate a table before execution.
#[derive(Debug, Default)]
pub struct TableBuilder {
    name: String,
    entries: Vec<(Key, Value)>,
}

impl TableBuilder {
    /// Starts building a table with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        TableBuilder {
            name: name.into(),
            entries: Vec::new(),
        }
    }

    /// Adds one record.
    pub fn insert(mut self, key: Key, value: Value) -> Self {
        self.entries.push((key, value));
        self
    }

    /// Adds many records from an iterator.
    pub fn extend(mut self, entries: impl IntoIterator<Item = (Key, Value)>) -> Self {
        self.entries.extend(entries);
        self
    }

    /// Number of records added so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no records were added yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Finalise the table. Fails if a key occurs twice.
    pub fn build(self) -> StateResult<Table> {
        let index = ShardedIndex::new();
        let mut records = Vec::with_capacity(self.entries.len());
        let mut keys = Vec::with_capacity(self.entries.len());
        for (slot, (key, value)) in self.entries.into_iter().enumerate() {
            if index.insert(key, slot as u32).is_some() {
                return Err(StateError::InvalidDefinition(format!(
                    "duplicate key {key} in table `{}`",
                    self.name
                )));
            }
            keys.push(key);
            records.push(Record::new(value));
        }
        Ok(Table {
            name: self.name,
            records: records.into_boxed_slice(),
            keys: keys.into_boxed_slice(),
            index,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        TableBuilder::new("accounts")
            .extend((0..100u64).map(|k| (k, Value::Long(k as i64 * 10))))
            .build()
            .unwrap()
    }

    #[test]
    fn build_and_lookup() {
        let t = sample_table();
        assert_eq!(t.name(), "accounts");
        assert_eq!(t.len(), 100);
        assert_eq!(t.get(42).unwrap().read_committed(), Value::Long(420));
        assert!(matches!(t.get(1000), Err(StateError::KeyNotFound { .. })));
    }

    #[test]
    fn duplicate_keys_rejected() {
        let err = TableBuilder::new("t")
            .insert(1, Value::Long(1))
            .insert(1, Value::Long(2))
            .build()
            .unwrap_err();
        assert!(matches!(err, StateError::InvalidDefinition(_)));
    }

    #[test]
    fn slots_and_keys_are_consistent() {
        let t = sample_table();
        for key in 0..100u64 {
            let slot = t.slot_of(key).unwrap();
            assert_eq!(t.key_at(slot), key);
            assert_eq!(
                t.get_slot(slot).read_committed(),
                Value::Long(key as i64 * 10)
            );
        }
    }

    #[test]
    fn snapshot_reflects_mutations() {
        let t = sample_table();
        t.get(3).unwrap().write_committed(Value::Long(-1));
        let snap = t.snapshot();
        let (_, v) = snap.iter().find(|(k, _)| *k == 3).unwrap();
        assert_eq!(*v, Value::Long(-1));
    }

    #[test]
    fn empty_table_is_fine() {
        let t = TableBuilder::new("empty").build().unwrap();
        assert!(t.is_empty());
        assert_eq!(t.iter().count(), 0);
    }
}
