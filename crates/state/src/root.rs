//! Deterministic state roots: an order-independent hash of a store's
//! committed state.
//!
//! Replication needs a cheap way for two engines to agree that they hold the
//! same state after the same epoch without shipping a full snapshot in each
//! direction.  A *state root* is a 64-bit digest of every committed
//! `(table, key, value)` triple: each entry is hashed independently (a
//! strong word-at-a-time mix over its fields) and the entry
//! digests are merged with wrapping addition.  Addition commutes, so the
//! root is independent of iteration order, table layout **and shard count**
//! — a 1-shard primary and a 4-shard standby that hold the same values
//! produce the same root, which is exactly the comparison the divergence
//! detector performs on every ship-ack.
//!
//! The caller must ensure the store is quiescent; the engine computes roots
//! at the end-of-batch barrier where that holds by construction.

use crate::store::StateStore;
use crate::value::Value;

/// Multiplier of the per-entry word mix (the 64-bit golden-ratio constant).
const MIX_MULT: u64 = 0x9e37_79b9_7f4a_7c15;

/// Fold one 64-bit word into a running entry digest.
#[inline]
fn mix(h: u64, word: u64) -> u64 {
    (h.rotate_left(29) ^ word).wrapping_mul(MIX_MULT)
}

/// Fold a byte slice into a running entry digest, eight bytes per serial
/// multiply.  The leading length word keeps a zero-padded tail from
/// colliding with explicit zero bytes.
#[inline]
fn mix_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    h = mix(h, bytes.len() as u64);
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        h = mix(
            h,
            u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")),
        );
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h = mix(h, u64::from_le_bytes(tail));
    }
    h
}

/// Fold a committed value into a running entry digest: one tag word per
/// variant, then the payload as whole words.  Values are hashed field by
/// field rather than through the codec — the root never leaves memory, so
/// it does not need the codec's byte layout, and skipping the intermediate
/// encode buffer roughly halves the hashing cost per record.
fn mix_value(h: u64, value: &Value, ids: &mut Vec<u64>) -> u64 {
    match value {
        Value::Null => mix(h, 0),
        Value::Long(v) => mix(mix(h, 1), *v as u64),
        Value::Double(v) => mix(mix(h, 2), v.to_bits()),
        Value::Str(s) => mix_bytes(mix(h, 3), s.as_bytes()),
        Value::Set(set) => {
            // Sets iterate in hash order; sort into the reusable scratch so
            // equal sets digest equally on every engine.
            ids.clear();
            ids.extend(set.iter().copied());
            ids.sort_unstable();
            let mut h = mix(mix(h, 4), ids.len() as u64);
            for id in ids.iter() {
                h = mix(h, *id);
            }
            h
        }
        Value::Pair(a, b) => mix(mix(mix(h, 5), *a as u64), *b as u64),
    }
}

/// splitmix64 avalanche: spreads single-bit entry differences across the
/// whole digest before the commutative merge (un-finalized digests are too
/// correlated for wrapping addition to be collision-safe on near-identical
/// entries).
#[inline]
fn finish(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    h
}

/// Compute the state root of `store`: the wrapping sum of the digests of
/// every committed `(table name, key, value)` entry.
///
/// Independent of shard count and iteration order; sensitive to any single
/// changed, added or removed entry.  The store must be quiescent.
pub fn state_root(store: &StateStore) -> u64 {
    // Streams over the records in physical order — no snapshot vector, no
    // value clones, no sort and no per-record encode buffer (the
    // commutative merge makes ordering irrelevant, and values hash field by
    // field).  The root runs on the engine's epoch hook while the executors
    // wait at the barrier, so it must stay O(n) with the smallest constant
    // we can manage; the remaining cost is one record-lock acquire plus a
    // handful of serial multiplies per entry.
    let mut ids: Vec<u64> = Vec::new();
    let mut root = 0u64;
    for (_, table) in store.tables() {
        let name_seed = mix_bytes(0, table.name().as_bytes());
        for (key, record) in table.iter() {
            let seeded = mix(name_seed, key);
            let h = record.with_committed(|value| mix_value(seeded, value, &mut ids));
            root = root.wrapping_add(finish(h));
        }
    }
    root
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;
    use crate::value::Value;
    use crate::TableId;
    use std::sync::Arc;

    fn store_with_shards(shards: u32) -> Arc<StateStore> {
        let accounts = TableBuilder::new("accounts")
            .extend((0..64u64).map(|k| (k, Value::Long(k as i64 * 3))))
            .build()
            .unwrap();
        let speeds = TableBuilder::new("speeds")
            .extend((0..16u64).map(|k| (k, Value::Double(55.0 + k as f64))))
            .build()
            .unwrap();
        StateStore::with_shards(vec![accounts, speeds], shards).unwrap()
    }

    #[test]
    fn root_is_shard_count_independent() {
        let roots: Vec<u64> = [1, 2, 4, 8]
            .iter()
            .map(|&s| state_root(&store_with_shards(s)))
            .collect();
        assert!(roots.windows(2).all(|w| w[0] == w[1]), "{roots:?}");
    }

    #[test]
    fn root_changes_when_any_single_value_changes() {
        let base = state_root(&store_with_shards(4));
        for key in [0u64, 17, 63] {
            let store = store_with_shards(4);
            store
                .record(TableId(0), key)
                .unwrap()
                .write_committed(Value::Long(-1));
            assert_ne!(state_root(&store), base, "flip of accounts[{key}] unseen");
        }
        let store = store_with_shards(4);
        store
            .record(TableId(1), 3)
            .unwrap()
            .write_committed(Value::Double(0.0));
        assert_ne!(state_root(&store), base, "flip of speeds[3] unseen");
    }

    #[test]
    fn root_distinguishes_table_membership() {
        // Same (key, value) under a different table name must not collide:
        // the table name is part of every entry digest.
        let a = TableBuilder::new("a")
            .extend([(1u64, Value::Long(7))])
            .build()
            .unwrap();
        let b = TableBuilder::new("b")
            .extend([(1u64, Value::Long(7))])
            .build()
            .unwrap();
        let only_a = StateStore::new(vec![a]).unwrap();
        let only_b = StateStore::new(vec![b]).unwrap();
        assert_ne!(state_root(&only_a), state_root(&only_b));
    }

    #[test]
    fn swapped_values_do_not_cancel() {
        // Commutative merges are prone to "swap" collisions; the per-entry
        // avalanche must keep value-exchanged stores distinguishable.
        let store = store_with_shards(2);
        let swapped = store_with_shards(2);
        swapped
            .record(TableId(0), 0)
            .unwrap()
            .write_committed(Value::Long(3));
        swapped
            .record(TableId(0), 1)
            .unwrap()
            .write_committed(Value::Long(0));
        assert_ne!(state_root(&store), state_root(&swapped));
    }
}
