//! The sink: throughput and end-to-end latency measurement.
//!
//! Following the paper (Section VI-F, after its reference \[37\]), end-to-end processing
//! latency is the duration between the time an input event enters the system
//! and the time its result is generated.  Each executor records completions
//! into its own [`Sink`] shard (no shared counters on the hot path); shards
//! are merged into [`LatencyStats`] when the run finishes.
//!
//! Latencies are held in a log-bucketed
//! [`tstream_obs::LatencyHistogram`] rather than a vector
//! of raw samples: recording is O(1) without allocation, merging is a
//! bucket-wise sum, and every sample contributes to the distribution — so
//! p50/p99/p99.9 are exact to the bucket resolution (≤ 1.6 % relative
//! error) instead of being biased by sampling, while min, max and mean stay
//! exact.  Replayed batches are still excluded via [`Sink::emit_unsampled`].

use std::time::{Duration, Instant};

use tstream_obs::LatencyHistogram;

/// Per-executor completion recorder.
#[derive(Debug, Default)]
pub struct Sink {
    hist: LatencyHistogram,
    emitted: u64,
    rejected: u64,
}

impl Sink {
    /// Creates an empty sink shard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a sink shard.  The histogram's footprint is fixed, so
    /// `capacity` is only kept for API compatibility with the old
    /// Vec-of-samples sink.
    pub fn with_capacity(_capacity: usize) -> Self {
        Self::default()
    }

    /// Record a successfully processed event whose arrival instant is known.
    pub fn emit(&mut self, arrival: Instant) {
        self.hist.record(arrival.elapsed());
        self.emitted += 1;
    }

    /// Record a successfully processed event with an explicit latency (used
    /// by tests and by replayed traces).
    pub fn emit_with_latency(&mut self, latency: Duration) {
        self.hist.record(latency);
        self.emitted += 1;
    }

    /// Record a successfully processed event *without* a latency sample.
    ///
    /// Recovery replay uses this: a replayed event's "arrival" is its
    /// re-ingestion instant, not the original arrival, so sampling it would
    /// pollute the live latency distribution (and anything observing it,
    /// like adaptive punctuation).  The event still counts as emitted.
    pub fn emit_unsampled(&mut self) {
        self.emitted += 1;
    }

    /// Record a rejected event (aborted transaction surfaced to the user,
    /// Section IV-C.2 "Handling Transaction Abort").
    pub fn reject(&mut self) {
        self.rejected += 1;
    }

    /// Number of emitted results.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Number of rejected events.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Latency percentile over the samples recorded so far, without
    /// consuming the sink (adaptive punctuation observes this between
    /// batches).  A bucket scan — no sort, no copy — so it is cheap enough
    /// to sample at batch granularity.
    pub fn percentile_so_far(&self, pct: f64) -> Option<Duration> {
        self.hist.percentile(pct)
    }

    /// Merge several per-executor shards into aggregate statistics.
    pub fn merge(shards: impl IntoIterator<Item = Sink>) -> LatencyStats {
        let mut hist = LatencyHistogram::new();
        let mut emitted = 0;
        let mut rejected = 0;
        for shard in shards {
            emitted += shard.emitted;
            rejected += shard.rejected;
            hist.merge(&shard.hist);
        }
        LatencyStats {
            hist,
            emitted,
            rejected,
        }
    }
}

/// Aggregated latency statistics for a run.
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    hist: LatencyHistogram,
    emitted: u64,
    rejected: u64,
}

impl LatencyStats {
    /// Total results emitted.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Total events rejected (aborted).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Number of recorded latency samples.
    pub fn samples(&self) -> usize {
        self.hist.count() as usize
    }

    /// Latency percentile in `0.0 ..= 100.0` (e.g. `99.0` for p99).  The
    /// endpoints are exact; interior quantiles are within the histogram's
    /// 1.6 % bucket resolution.
    pub fn percentile(&self, pct: f64) -> Option<Duration> {
        self.hist.percentile(pct)
    }

    /// Arithmetic mean latency (exact: the histogram tracks the exact sum).
    pub fn mean(&self) -> Option<Duration> {
        self.hist.mean()
    }

    /// Maximum observed latency (exact).
    pub fn max(&self) -> Option<Duration> {
        self.hist.max()
    }

    /// The underlying latency distribution.
    pub fn histogram(&self) -> &LatencyHistogram {
        &self.hist
    }
}

#[cfg(test)]
mod tests {
    // These tests probe real timing (blocked-thread interleavings), so
    // they sleep deliberately; the workspace-wide sleep ban targets
    // production code.
    #![allow(clippy::disallowed_methods)]
    use super::*;

    #[test]
    fn merge_and_percentiles() {
        let mut a = Sink::new();
        let mut b = Sink::new();
        for ms in 1..=50u64 {
            a.emit_with_latency(Duration::from_millis(ms));
        }
        for ms in 51..=100u64 {
            b.emit_with_latency(Duration::from_millis(ms));
        }
        b.reject();
        let stats = Sink::merge([a, b]);
        assert_eq!(stats.emitted(), 100);
        assert_eq!(stats.rejected(), 1);
        assert_eq!(stats.samples(), 100);
        // Endpoints and max are exact even on the bucketed histogram.
        assert_eq!(stats.percentile(0.0), Some(Duration::from_millis(1)));
        assert_eq!(stats.percentile(100.0), Some(Duration::from_millis(100)));
        assert_eq!(stats.max(), Some(Duration::from_millis(100)));
        // Interior quantiles carry the 1.6 % bucket resolution.
        let p99 = stats.percentile(99.0).unwrap().as_secs_f64();
        assert!((p99 - 0.099).abs() / 0.099 < 0.02, "p99={p99}");
        let mean = stats.mean().unwrap();
        assert!(mean > Duration::from_millis(49) && mean < Duration::from_millis(52));
    }

    #[test]
    fn unsampled_emissions_count_but_leave_no_latency_trace() {
        let mut sink = Sink::new();
        sink.emit_with_latency(Duration::from_millis(3));
        sink.emit_unsampled();
        sink.emit_unsampled();
        assert_eq!(sink.emitted(), 3);
        assert_eq!(
            sink.percentile_so_far(99.0),
            Some(Duration::from_millis(3)),
            "unsampled events must not perturb the percentile scan"
        );
        let stats = Sink::merge([sink]);
        assert_eq!(stats.emitted(), 3);
        assert_eq!(stats.samples(), 1);
    }

    #[test]
    fn empty_stats_return_none() {
        let stats = Sink::merge([]);
        assert_eq!(stats.percentile(99.0), None);
        assert_eq!(stats.mean(), None);
        assert_eq!(stats.max(), None);
        assert_eq!(stats.samples(), 0);
    }

    #[test]
    fn emit_uses_wall_clock() {
        let mut sink = Sink::with_capacity(1);
        let arrival = Instant::now();
        std::thread::sleep(Duration::from_millis(2));
        sink.emit(arrival);
        let stats = Sink::merge([sink]);
        assert!(stats.max().unwrap() >= Duration::from_millis(1));
    }

    #[test]
    fn percentile_is_clamped() {
        let mut sink = Sink::new();
        sink.emit_with_latency(Duration::from_millis(5));
        let stats = Sink::merge([sink]);
        assert_eq!(stats.percentile(150.0), Some(Duration::from_millis(5)));
        assert_eq!(stats.percentile(-3.0), Some(Duration::from_millis(5)));
    }

    #[test]
    fn large_distributions_stay_bias_free() {
        // 100k samples: the old sampled sink would have had to cap or sort
        // all of these; the histogram keeps every one at fixed memory.
        let mut sink = Sink::new();
        for i in 1..=100_000u64 {
            sink.emit_with_latency(Duration::from_micros(i));
        }
        let stats = Sink::merge([sink]);
        assert_eq!(stats.samples(), 100_000);
        let p999 = stats.percentile(99.9).unwrap().as_secs_f64();
        assert!((p999 - 0.0999).abs() / 0.0999 < 0.02, "p99.9={p999}");
        assert_eq!(stats.max(), Some(Duration::from_micros(100_000)));
    }
}
