//! Per-transaction time breakdown.
//!
//! Figures 1 and 9 of the paper attribute transaction-processing time to five
//! components.  Every scheme implementation charges its work to these same
//! buckets so the breakdown harness can compare them directly:
//!
//! * **Useful** — time spent actually reading / writing state values;
//! * **Sync** — time blocked waiting to be *allowed* to proceed: spinning on
//!   lockAhead / partition / `lwm` counters in the prior schemes, or waiting
//!   on the mode-switching barriers in TStream;
//! * **Lock** — time spent inserting/acquiring record locks once permitted;
//! * **RMA** — time spent on (modelled) remote memory accesses: accesses to
//!   states or operation chains owned by a different synthetic socket;
//! * **Others** — everything else (index lookup, decomposition bookkeeping,
//!   context switching, ...).

use std::ops::AddAssign;
use std::time::{Duration, Instant};

/// The five breakdown components.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// Actual state access work.
    Useful,
    /// Waiting to be permitted to proceed (counters, barriers).
    Sync,
    /// Inserting / acquiring record locks.
    Lock,
    /// Modelled remote memory access.
    Rma,
    /// Everything else.
    Others,
}

impl Component {
    /// All components in presentation order (matches the paper's legend).
    pub const ALL: [Component; 5] = [
        Component::Others,
        Component::Sync,
        Component::Rma,
        Component::Lock,
        Component::Useful,
    ];

    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            Component::Useful => "Useful",
            Component::Sync => "Sync",
            Component::Lock => "Lock",
            Component::Rma => "RMA",
            Component::Others => "Others",
        }
    }
}

/// Accumulated per-component durations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Breakdown {
    /// Time spent accessing state values.
    pub useful: Duration,
    /// Time spent blocked on synchronisation.
    pub sync: Duration,
    /// Time spent inserting locks.
    pub lock: Duration,
    /// Time spent on modelled remote memory accesses.
    pub rma: Duration,
    /// Everything else.
    pub others: Duration,
}

impl Breakdown {
    /// An all-zero breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge `d` to component `c`.
    pub fn charge(&mut self, c: Component, d: Duration) {
        match c {
            Component::Useful => self.useful += d,
            Component::Sync => self.sync += d,
            Component::Lock => self.lock += d,
            Component::Rma => self.rma += d,
            Component::Others => self.others += d,
        }
    }

    /// Read a component.
    pub fn get(&self, c: Component) -> Duration {
        match c {
            Component::Useful => self.useful,
            Component::Sync => self.sync,
            Component::Lock => self.lock,
            Component::Rma => self.rma,
            Component::Others => self.others,
        }
    }

    /// Sum of all components.
    pub fn total(&self) -> Duration {
        self.useful + self.sync + self.lock + self.rma + self.others
    }

    /// Fraction (0‥1) of the total attributed to component `c`; 0 when the
    /// breakdown is empty.
    pub fn fraction(&self, c: Component) -> f64 {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.get(c).as_secs_f64() / total
        }
    }

    /// Normalised fractions for every component, in [`Component::ALL`] order.
    pub fn fractions(&self) -> [(Component, f64); 5] {
        Component::ALL.map(|c| (c, self.fraction(c)))
    }
}

impl AddAssign for Breakdown {
    fn add_assign(&mut self, rhs: Self) {
        self.useful += rhs.useful;
        self.sync += rhs.sync;
        self.lock += rhs.lock;
        self.rma += rhs.rma;
        self.others += rhs.others;
    }
}

/// A scoped timer charging elapsed time to a breakdown component.
#[derive(Debug)]
pub struct ComponentTimer {
    started: Instant,
}

impl ComponentTimer {
    /// Start timing.
    pub fn start() -> Self {
        ComponentTimer {
            started: Instant::now(),
        }
    }

    /// Stop and charge the elapsed time to `component` of `breakdown`.
    pub fn stop(self, breakdown: &mut Breakdown, component: Component) -> Duration {
        let elapsed = self.started.elapsed();
        breakdown.charge(component, elapsed);
        elapsed
    }

    /// Elapsed time so far without charging it anywhere.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

/// Convenience: run `f`, charging its duration to `component`.
pub fn timed<R>(breakdown: &mut Breakdown, component: Component, f: impl FnOnce() -> R) -> R {
    let t = ComponentTimer::start();
    let r = f();
    t.stop(breakdown, component);
    r
}

#[cfg(test)]
mod tests {
    // These tests probe real timing (blocked-thread interleavings), so
    // they sleep deliberately; the workspace-wide sleep ban targets
    // production code.
    #![allow(clippy::disallowed_methods)]
    use super::*;

    #[test]
    fn charge_and_total() {
        let mut b = Breakdown::new();
        b.charge(Component::Useful, Duration::from_millis(10));
        b.charge(Component::Sync, Duration::from_millis(30));
        b.charge(Component::Sync, Duration::from_millis(10));
        assert_eq!(b.useful, Duration::from_millis(10));
        assert_eq!(b.sync, Duration::from_millis(40));
        assert_eq!(b.total(), Duration::from_millis(50));
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut b = Breakdown::new();
        for (i, c) in Component::ALL.iter().enumerate() {
            b.charge(*c, Duration::from_millis((i as u64 + 1) * 10));
        }
        let sum: f64 = b.fractions().iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_breakdown_has_zero_fractions() {
        let b = Breakdown::new();
        assert_eq!(b.fraction(Component::Useful), 0.0);
        assert_eq!(b.total(), Duration::ZERO);
    }

    #[test]
    fn add_assign_merges_breakdowns() {
        let mut a = Breakdown::new();
        a.charge(Component::Lock, Duration::from_millis(5));
        let mut b = Breakdown::new();
        b.charge(Component::Lock, Duration::from_millis(7));
        b.charge(Component::Rma, Duration::from_millis(3));
        a += b;
        assert_eq!(a.lock, Duration::from_millis(12));
        assert_eq!(a.rma, Duration::from_millis(3));
    }

    #[test]
    fn timed_helper_charges_something() {
        let mut b = Breakdown::new();
        let result = timed(&mut b, Component::Others, || {
            std::thread::sleep(Duration::from_millis(2));
            42
        });
        assert_eq!(result, 42);
        assert!(b.others >= Duration::from_millis(1));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Component::Useful.label(), "Useful");
        assert_eq!(Component::Rma.label(), "RMA");
        assert_eq!(Component::ALL.len(), 5);
    }
}
