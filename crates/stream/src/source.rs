//! The ingestion layer: online batch formation and bounded source channels.
//!
//! The seed engine pre-materialized its whole input into punctuation batches
//! before the first executor started — a one-shot benchmark harness.  This
//! module is the streaming replacement: a [`BatchBuilder`] that stamps each
//! event **at arrival time**, routes it to its executor incrementally, and
//! emits a punctuation-delimited [`SourceBatch`] as soon as the punctuation
//! interval fills, so batch *k + 1* can form while batch *k* executes.
//!
//! [`bounded_source`] provides the matching transport: a bounded channel
//! that connects external producer threads to the ingestion loop with
//! backpressure — when the runtime falls behind, producers block instead of
//! growing an unbounded buffer.  Handles and outlets are both cloneable, so
//! the channel serves the single-producer/multi-consumer hand-off used by the
//! examples as well as fan-in from several producers.

use crate::event::{Event, Punctuation};
use crate::progress::ProgressController;

/// One punctuation-delimited batch produced by a [`BatchBuilder`]: the
/// events already split per executor, the per-event routing descriptors in
/// timestamp order, and the punctuation that closed the batch.
#[derive(Debug)]
pub struct SourceBatch<P, D> {
    /// Events assigned to each executor, in timestamp order per executor.
    pub per_executor: Vec<Vec<Event<P>>>,
    /// One descriptor per event of the batch, in timestamp order (whatever
    /// the router derived: for the engine, the transaction's timestamp and
    /// determined read/write set).
    pub descriptors: Vec<D>,
    /// The punctuation closing this batch: every event of the batch has
    /// `ts < punctuation.ts`, and no later event has a smaller timestamp.
    pub punctuation: Punctuation,
    /// Whether any event of this batch was re-ingested during recovery
    /// replay ([`BatchBuilder::set_replay`]).  Replayed events count toward
    /// throughput but carry re-ingestion arrival instants, so consumers must
    /// not sample their latency.  Sticky per batch: a mixed tail batch
    /// (replayed events followed by live ones) is marked replayed as a whole.
    pub replayed: bool,
    /// Whether the consumer determined the batch's transactions to be
    /// pairwise conflict-free (disjoint read/write sets).  `false` until the
    /// consumer classifies the batch — the builder itself never inspects
    /// descriptors.
    pub conflict_free: bool,
}

impl<P, D> SourceBatch<P, D> {
    /// Number of events in the batch.
    pub fn events(&self) -> usize {
        self.descriptors.len()
    }
}

/// Routing callback of a [`BatchBuilder`]: maps a freshly stamped event and
/// its position within the forming batch to `(target executor, descriptor)`.
/// Boxed so sessions don't carry the closure type in their signature.
pub type Router<P, D> = Box<dyn FnMut(&Event<P>, usize) -> (usize, D) + Send>;

/// Online batch formation (the Parser operator of the paper, made
/// incremental).
///
/// `push` stamps the payload with the next dense timestamp *and* the current
/// wall-clock instant — so end-to-end latency measured from
/// [`Event::arrival`] covers the true ingestion-to-sink interval, not the
/// pre-materialization skew of the seed engine — applies the routing callback
/// and, every `interval` events, closes the batch with a punctuation and
/// hands it out.
pub struct BatchBuilder<P, D> {
    progress: ProgressController,
    executors: usize,
    interval: usize,
    router: Router<P, D>,
    per_executor: Vec<Vec<Event<P>>>,
    descriptors: Vec<D>,
    in_batch: usize,
    batches_emitted: u64,
    /// Whether pushes are currently recovery replays ([`Self::set_replay`]).
    replaying: bool,
    /// Whether the forming batch holds at least one replayed event.
    batch_replayed: bool,
}

impl<P, D> std::fmt::Debug for BatchBuilder<P, D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchBuilder")
            .field("executors", &self.executors)
            .field("interval", &self.interval)
            .field("in_batch", &self.in_batch)
            .field("batches_emitted", &self.batches_emitted)
            .finish()
    }
}

impl<P, D> BatchBuilder<P, D> {
    /// Creates a builder splitting the stream over `executors` executors
    /// with a punctuation every `interval` events (both clamped to ≥ 1).
    pub fn new(executors: usize, interval: usize, router: Router<P, D>) -> Self {
        let executors = executors.max(1);
        let interval = interval.max(1);
        BatchBuilder {
            progress: ProgressController::new(interval as u64),
            executors,
            interval,
            router,
            per_executor: (0..executors).map(|_| Vec::new()).collect(),
            descriptors: Vec::with_capacity(interval),
            in_batch: 0,
            batches_emitted: 0,
            replaying: false,
            batch_replayed: false,
        }
    }

    /// Mark subsequent pushes as recovery replays (or back to live events).
    /// Any batch holding at least one replayed event is emitted with
    /// [`SourceBatch::replayed`] set, including a mixed tail batch that live
    /// events later complete.
    pub fn set_replay(&mut self, replaying: bool) {
        self.replaying = replaying;
    }

    /// Number of executors batches are split over.
    pub fn executors(&self) -> usize {
        self.executors
    }

    /// Punctuation interval in events.
    pub fn interval(&self) -> usize {
        self.interval
    }

    /// Change the punctuation interval (clamped to ≥ 1).  Takes effect
    /// immediately: if the forming batch already holds at least `interval`
    /// events, the next [`BatchBuilder::push`] closes it.  Used by adaptive
    /// punctuation tuning, which retunes the interval between batches.
    pub fn set_interval(&mut self, interval: usize) {
        self.interval = interval.max(1);
    }

    /// Events stamped so far (the progress controller's high watermark).
    pub fn stamped(&self) -> u64 {
        self.progress.high_watermark()
    }

    /// Events sitting in the currently forming (not yet emitted) batch.
    pub fn pending(&self) -> usize {
        self.in_batch
    }

    /// Batches emitted so far.
    pub fn batches_emitted(&self) -> u64 {
        self.batches_emitted
    }

    /// Stamp `payload` at arrival time, route it, and — if this event filled
    /// the punctuation interval — emit the completed batch.
    pub fn push(&mut self, payload: P) -> Option<SourceBatch<P, D>> {
        let event = self.progress.stamp(payload);
        let (target, descriptor) = (self.router)(&event, self.in_batch);
        self.descriptors.push(descriptor);
        self.per_executor[target % self.executors].push(event);
        self.batch_replayed |= self.replaying;
        self.in_batch += 1;
        // `>=`, not `==`: a shrinking adaptive interval may undercut an
        // already larger forming batch.
        if self.in_batch >= self.interval {
            Some(self.emit())
        } else {
            None
        }
    }

    /// Close and emit the partially filled batch, if any (end of stream /
    /// explicit flush).
    pub fn finish(&mut self) -> Option<SourceBatch<P, D>> {
        if self.in_batch == 0 {
            return None;
        }
        Some(self.emit())
    }

    fn emit(&mut self) -> SourceBatch<P, D> {
        let punctuation = self.progress.punctuate();
        let per_executor = std::mem::replace(
            &mut self.per_executor,
            (0..self.executors).map(|_| Vec::new()).collect(),
        );
        let descriptors =
            std::mem::replace(&mut self.descriptors, Vec::with_capacity(self.interval));
        self.in_batch = 0;
        self.batches_emitted += 1;
        let replayed = std::mem::take(&mut self.batch_replayed);
        SourceBatch {
            per_executor,
            descriptors,
            punctuation,
            replayed,
            conflict_free: false,
        }
    }
}

/// Error returned by [`SourceHandle::push`] once the consuming side is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct SourceClosed<T>(pub T);

/// Producer side of a bounded source channel; cloneable for fan-in.
#[derive(Debug, Clone)]
pub struct SourceHandle<T> {
    tx: crossbeam::channel::Sender<T>,
}

impl<T> SourceHandle<T> {
    /// Enqueue a payload, blocking while the channel is full (backpressure).
    /// Fails only once every outlet has been dropped.
    pub fn push(&self, payload: T) -> Result<(), SourceClosed<T>> {
        self.tx
            .send(payload)
            .map_err(|crossbeam::channel::SendError(p)| SourceClosed(p))
    }
}

/// Consumer side of a bounded source channel; cloneable, so several
/// consumers may drain one producer (SPMC).
#[derive(Debug, Clone)]
pub struct SourceOutlet<T> {
    rx: crossbeam::channel::Receiver<T>,
}

impl<T> SourceOutlet<T> {
    /// Blocking receive; `None` once every handle is dropped and the queue
    /// has drained.
    pub fn recv(&self) -> Option<T> {
        self.rx.recv().ok()
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<T> {
        self.rx.try_recv()
    }

    /// Blocking iterator; ends when every handle is dropped and the queue
    /// has drained.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        std::iter::from_fn(move || self.recv())
    }
}

/// Creates a bounded source channel holding at most `capacity` in-flight
/// payloads: the hand-off between external producers and the ingestion loop
/// of a streaming session.  A full channel blocks the producers, which is the
/// backpressure that keeps a sustained overload from growing an unbounded
/// buffer.
pub fn bounded_source<T>(capacity: usize) -> (SourceHandle<T>, SourceOutlet<T>) {
    let (tx, rx) = crossbeam::channel::bounded(capacity.max(1));
    (SourceHandle { tx }, SourceOutlet { rx })
}

#[cfg(test)]
mod tests {
    // These tests probe real timing (blocked-thread interleavings), so
    // they sleep deliberately; the workspace-wide sleep ban targets
    // production code.
    #![allow(clippy::disallowed_methods)]
    use super::*;

    fn round_robin_builder(executors: usize, interval: usize) -> BatchBuilder<u64, u64> {
        BatchBuilder::new(
            executors,
            interval,
            Box::new(|event, in_batch| (in_batch, event.ts)),
        )
    }

    #[test]
    fn batches_close_exactly_at_the_interval() {
        let mut builder = round_robin_builder(2, 4);
        for i in 0..3u64 {
            assert!(builder.push(i).is_none());
            assert_eq!(builder.pending(), i as usize + 1);
        }
        let batch = builder.push(3).expect("fourth event closes the batch");
        assert_eq!(batch.events(), 4);
        assert_eq!(builder.pending(), 0);
        assert_eq!(builder.batches_emitted(), 1);
        // Round-robin by in-batch position: events 0,2 on executor 0; 1,3 on 1.
        assert_eq!(batch.per_executor[0].len(), 2);
        assert_eq!(batch.per_executor[1].len(), 2);
    }

    #[test]
    fn timestamps_are_dense_across_batches_and_punctuation_covers_them() {
        let mut builder = round_robin_builder(3, 5);
        let mut batches = Vec::new();
        for i in 0..12u64 {
            if let Some(b) = builder.push(i) {
                batches.push(b);
            }
        }
        batches.extend(builder.finish());
        assert_eq!(batches.len(), 3, "5 + 5 + 2 events");
        assert_eq!(batches[2].events(), 2);
        let mut all_ts: Vec<u64> = Vec::new();
        for batch in &batches {
            for events in &batch.per_executor {
                for e in events {
                    assert!(
                        e.ts < batch.punctuation.ts,
                        "punctuation must cover the batch"
                    );
                    all_ts.push(e.ts);
                }
            }
        }
        all_ts.sort_unstable();
        assert_eq!(all_ts, (0..12).collect::<Vec<_>>());
        assert_eq!(builder.stamped(), 12);
        // Punctuation sequence numbers are dense too.
        let seqs: Vec<u64> = batches.iter().map(|b| b.punctuation.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn descriptors_stay_in_timestamp_order() {
        let mut builder = round_robin_builder(4, 8);
        let batch = (0..8).fold(None, |_, i| builder.push(i)).unwrap();
        assert_eq!(batch.descriptors, (0..8).collect::<Vec<u64>>());
    }

    #[test]
    fn router_targets_are_clamped_to_the_executor_range() {
        let mut builder: BatchBuilder<u64, ()> =
            BatchBuilder::new(2, 3, Box::new(|_, _| (usize::MAX, ())));
        let batch = (0..3).fold(None, |_, i| builder.push(i)).unwrap();
        let total: usize = batch.per_executor.iter().map(Vec::len).sum();
        assert_eq!(total, 3);
        assert_eq!(batch.per_executor.len(), 2);
    }

    #[test]
    fn replay_mode_taints_whole_batches_including_the_mixed_tail() {
        let mut builder = round_robin_builder(1, 2);
        // Batch 1 forms entirely under replay.
        builder.set_replay(true);
        assert!(builder.push(0).is_none());
        let replayed = builder.push(1).unwrap();
        assert!(replayed.replayed);
        assert!(!replayed.conflict_free, "classification is the consumer's");
        // Batch 2 starts with a replayed tail event, then live pushes land.
        builder.push(2);
        builder.set_replay(false);
        let mixed = builder.push(3).unwrap();
        assert!(mixed.replayed, "one replayed event taints the whole batch");
        // Batch 3 is entirely live again.
        builder.push(4);
        let live = builder.push(5).unwrap();
        assert!(!live.replayed);
    }

    #[test]
    fn finish_on_an_empty_builder_returns_none() {
        let mut builder = round_robin_builder(1, 10);
        assert!(builder.finish().is_none());
        builder.push(1);
        assert!(builder.finish().is_some());
        assert!(builder.finish().is_none(), "flush is idempotent");
    }

    #[test]
    fn arrival_instants_are_monotone_within_a_push_sequence() {
        let mut builder = round_robin_builder(1, 3);
        builder.push(0);
        std::thread::sleep(std::time::Duration::from_millis(2));
        builder.push(1);
        let batch = builder.push(2).unwrap();
        let events = &batch.per_executor[0];
        assert!(events[0].arrival <= events[1].arrival);
        assert!(
            events[1].arrival.duration_since(events[0].arrival)
                >= std::time::Duration::from_millis(1),
            "each event must be stamped at its own arrival, not up front"
        );
    }

    #[test]
    fn degenerate_parameters_are_clamped() {
        let builder = round_robin_builder(0, 0);
        assert_eq!(builder.executors(), 1);
        assert_eq!(builder.interval(), 1);
    }

    #[test]
    fn bounded_source_applies_backpressure_and_disconnects() {
        let (tx, rx) = bounded_source::<u32>(2);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        // Third push must block until the consumer drains one slot.
        let tx2 = tx.clone();
        let producer = std::thread::spawn(move || tx2.push(3).is_ok());
        assert_eq!(rx.recv(), Some(1));
        assert!(producer.join().unwrap());
        drop(tx);
        assert_eq!(rx.iter().collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(rx.recv(), None, "all handles dropped");
    }

    #[test]
    fn source_push_fails_once_outlets_are_gone() {
        let (tx, rx) = bounded_source::<u32>(1);
        drop(rx);
        assert_eq!(tx.push(9), Err(SourceClosed(9)));
    }
}
