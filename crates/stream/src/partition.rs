//! Stream partitioning strategies.
//!
//! Conventional DSPSs avoid concurrent state access by *key-based* stream
//! partitioning (Section II-A): every executor only ever sees the keys it
//! owns.  TStream instead *round-robin shuffles* events across the executors
//! of the fused operator (Section V) because any executor may access any
//! state.  Both strategies are provided so the conventional implementation of
//! Toll Processing (Figure 2a) can be expressed in examples and tests.
//!
//! Since the state store grew a physical shard layer, a third strategy sits
//! between the two: **shard-affine routing** ([`EventRouting::ShardAffine`],
//! [`ShardAffineRouter`]) sends each event to the executor that owns the
//! shard of the event's primary key, so an event's chain insertions (and, for
//! single-shard transactions, all of its state accesses) stay executor-local.
//! The shard id itself is computed by the state layer's router — this module
//! only maps shards onto executors, keeping the stream crate free of a state
//! dependency.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Round-robin shuffle: events are spread evenly over executors regardless of
/// their content.
#[derive(Debug)]
pub struct RoundRobin {
    executors: usize,
    next: AtomicUsize,
}

impl RoundRobin {
    /// Creates a shuffler over `executors` executors (at least one).
    pub fn new(executors: usize) -> Self {
        RoundRobin {
            executors: executors.max(1),
            next: AtomicUsize::new(0),
        }
    }

    /// Number of executors.
    pub fn executors(&self) -> usize {
        self.executors
    }

    /// Executor for the next event.
    pub fn next_executor(&self) -> usize {
        self.next.fetch_add(1, Ordering::Relaxed) % self.executors
    }

    /// Deterministic assignment for the `i`-th event of a batch.
    pub fn executor_for(&self, index: usize) -> usize {
        index % self.executors
    }

    /// Split a batch into per-executor sub-batches preserving order.
    pub fn split<T>(&self, items: Vec<T>) -> Vec<Vec<T>> {
        let mut out: Vec<Vec<T>> = (0..self.executors).map(|_| Vec::new()).collect();
        for (i, item) in items.into_iter().enumerate() {
            out[i % self.executors].push(item);
        }
        out
    }
}

/// How the engine assigns input events to executors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EventRouting {
    /// Round-robin shuffle (the paper's default, Section V): events spread
    /// evenly over executors regardless of content.
    #[default]
    RoundRobin,
    /// Shard-affine: an event goes to the executor owning the shard of its
    /// primary key (the first state of its determined read/write set), so
    /// decomposed operations are inserted into executor-local chain pools.
    /// Events without a read/write set fall back to round-robin.
    ShardAffine,
}

impl EventRouting {
    /// Label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            EventRouting::RoundRobin => "round-robin",
            EventRouting::ShardAffine => "shard-affine",
        }
    }
}

/// Maps shard ids onto executors for [`EventRouting::ShardAffine`]: shard `s`
/// is owned by executor `s % executors`, the same assignment the chain pools
/// use, so routing an event by shard lands it on the executor that will also
/// process the shard's chains.
#[derive(Debug, Clone, Copy)]
pub struct ShardAffineRouter {
    executors: usize,
}

impl ShardAffineRouter {
    /// Creates a router over `executors` executors (at least one).
    pub fn new(executors: usize) -> Self {
        ShardAffineRouter {
            executors: executors.max(1),
        }
    }

    /// Number of executors.
    pub fn executors(&self) -> usize {
        self.executors
    }

    /// Executor owning `shard`.
    pub fn executor_for_shard(&self, shard: u32) -> usize {
        shard as usize % self.executors
    }
}

/// Key-based partitioning: each executor owns a disjoint subset of keys.
#[derive(Debug, Clone, Copy)]
pub struct KeyPartitioner {
    executors: usize,
}

impl KeyPartitioner {
    /// Creates a partitioner over `executors` executors (at least one).
    pub fn new(executors: usize) -> Self {
        KeyPartitioner {
            executors: executors.max(1),
        }
    }

    /// Number of executors.
    pub fn executors(&self) -> usize {
        self.executors
    }

    /// Executor owning `key`.
    pub fn executor_for(&self, key: u64) -> usize {
        let mut h = key;
        h ^= h >> 33;
        h = h.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        h ^= h >> 29;
        (h % self.executors as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_is_balanced() {
        let rr = RoundRobin::new(4);
        let mut counts = [0usize; 4];
        for _ in 0..400 {
            counts[rr.next_executor()] += 1;
        }
        assert_eq!(counts, [100, 100, 100, 100]);
    }

    #[test]
    fn round_robin_split_preserves_order_and_balance() {
        let rr = RoundRobin::new(3);
        let parts = rr.split((0..10).collect::<Vec<_>>());
        assert_eq!(parts[0], vec![0, 3, 6, 9]);
        assert_eq!(parts[1], vec![1, 4, 7]);
        assert_eq!(parts[2], vec![2, 5, 8]);
    }

    #[test]
    fn key_partitioning_is_stable_and_in_range() {
        let kp = KeyPartitioner::new(7);
        for key in 0..1000u64 {
            let a = kp.executor_for(key);
            assert_eq!(a, kp.executor_for(key));
            assert!(a < 7);
        }
    }

    #[test]
    fn zero_executors_clamped() {
        assert_eq!(RoundRobin::new(0).executors(), 1);
        assert_eq!(KeyPartitioner::new(0).executors(), 1);
        assert_eq!(ShardAffineRouter::new(0).executors(), 1);
    }

    #[test]
    fn shard_affine_routing_is_modular_and_stable() {
        let router = ShardAffineRouter::new(4);
        for shard in 0..32u32 {
            let e = router.executor_for_shard(shard);
            assert_eq!(e, shard as usize % 4);
            assert_eq!(e, router.executor_for_shard(shard));
        }
    }

    #[test]
    fn event_routing_labels() {
        assert_eq!(EventRouting::default(), EventRouting::RoundRobin);
        assert_eq!(EventRouting::RoundRobin.label(), "round-robin");
        assert_eq!(EventRouting::ShardAffine.label(), "shard-affine");
    }
}
