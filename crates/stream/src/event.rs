//! Events, timestamps and punctuations.

use std::time::Instant;

use tstream_obs::clock;

/// Event / transaction timestamps.
///
/// Timestamps are dense, monotonically increasing integers assigned by the
/// [`crate::progress::ProgressController`] through a fetch-and-add, exactly as
/// the paper does with an `AtomicInteger` (Section IV-B.3).
pub type Timestamp = u64;

/// An input event carrying an application-specific payload.
#[derive(Debug, Clone)]
pub struct Event<P> {
    /// Temporal sequence number of the event (and of the state transaction it
    /// triggers, Definition 1).
    pub ts: Timestamp,
    /// Wall-clock instant at which the event entered the system; end-to-end
    /// latency is measured from here to result emission (Section VI-F).
    pub arrival: Instant,
    /// Application payload (e.g. a traffic report, a transfer request).
    pub payload: P,
}

impl<P> Event<P> {
    /// Creates an event stamped "now".
    pub fn new(ts: Timestamp, payload: P) -> Self {
        Event {
            ts,
            arrival: clock::now(),
            payload,
        }
    }

    /// Map the payload, keeping timestamp and arrival time.
    pub fn map<Q>(self, f: impl FnOnce(P) -> Q) -> Event<Q> {
        Event {
            ts: self.ts,
            arrival: self.arrival,
            payload: f(self.payload),
        }
    }
}

/// A punctuation: a special tuple guaranteeing that no later event carries a
/// smaller timestamp (Table I).  TStream uses punctuations to delimit
/// transaction batches and trigger mode switching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Punctuation {
    /// All events issued before this punctuation have `ts < self.ts`.
    pub ts: Timestamp,
    /// Sequence number of the punctuation itself (0, 1, 2, ...).
    pub seq: u64,
}

/// Either a payload-carrying event or a punctuation.
#[derive(Debug, Clone)]
pub enum StreamElement<P> {
    /// A normal event.
    Event(Event<P>),
    /// A punctuation marker.
    Punctuation(Punctuation),
}

impl<P> StreamElement<P> {
    /// Timestamp of the element.
    pub fn ts(&self) -> Timestamp {
        match self {
            StreamElement::Event(e) => e.ts,
            StreamElement::Punctuation(p) => p.ts,
        }
    }

    /// `true` for punctuation markers.
    pub fn is_punctuation(&self) -> bool {
        matches!(self, StreamElement::Punctuation(_))
    }

    /// Borrow the event, if this element is one.
    pub fn as_event(&self) -> Option<&Event<P>> {
        match self {
            StreamElement::Event(e) => Some(e),
            StreamElement::Punctuation(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_map_preserves_timestamp() {
        let e = Event::new(42, 7u32);
        let mapped = e.map(|v| v as u64 * 2);
        assert_eq!(mapped.ts, 42);
        assert_eq!(mapped.payload, 14);
    }

    #[test]
    fn stream_element_accessors() {
        let e: StreamElement<u32> = StreamElement::Event(Event::new(1, 5));
        let p: StreamElement<u32> = StreamElement::Punctuation(Punctuation { ts: 10, seq: 0 });
        assert!(!e.is_punctuation());
        assert!(p.is_punctuation());
        assert_eq!(e.ts(), 1);
        assert_eq!(p.ts(), 10);
        assert_eq!(e.as_event().unwrap().payload, 5);
        assert!(p.as_event().is_none());
    }
}
