//! Operator-level descriptors.
//!
//! The paper abstracts every operator as a three-step procedure (feature
//! **F1**) whose state accesses have *determined read/write sets* (feature
//! **F2**): which states a transaction will touch is known from the input
//! event alone, before any state is accessed.  This module holds the
//! descriptor types that carry that information around — the concrete
//! `Application` trait that user code implements lives in `tstream-txn`,
//! which also owns the transaction model.

/// Reference to one application state: a `(table, key)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateRef {
    /// Index of the table in the state store.
    pub table: u32,
    /// Application key within the table.
    pub key: u64,
}

impl StateRef {
    /// Creates a state reference.
    pub fn new(table: u32, key: u64) -> Self {
        StateRef { table, key }
    }
}

/// How a state in a read/write set will be accessed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessMode {
    /// The state is only read.
    Read,
    /// The state is written (or read-modified).
    Write,
}

/// The determined read/write set of one state transaction (feature **F2**).
///
/// Baseline schemes use it to pre-insert locks / reserve partition slots;
/// TStream uses it to route decomposed operations to chains.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReadWriteSet {
    entries: Vec<(StateRef, AccessMode)>,
}

impl ReadWriteSet {
    /// An empty set (e.g. a filtered-out event that accesses no state).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a read of `state`.
    pub fn read(mut self, state: StateRef) -> Self {
        self.entries.push((state, AccessMode::Read));
        self
    }

    /// Record a write of `state`.
    pub fn write(mut self, state: StateRef) -> Self {
        self.entries.push((state, AccessMode::Write));
        self
    }

    /// Record an access with an explicit mode.
    pub fn push(&mut self, state: StateRef, mode: AccessMode) {
        self.entries.push((state, mode));
    }

    /// The transaction's *primary* state: the first access it declares.
    /// Shard-affine event routing uses its key to pick the owning executor.
    pub fn primary(&self) -> Option<StateRef> {
        self.entries.first().map(|(s, _)| *s)
    }

    /// Number of accesses (the paper's "transaction length").
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over `(state, mode)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = &(StateRef, AccessMode)> {
        self.entries.iter()
    }

    /// Distinct states written by the transaction.
    pub fn write_set(&self) -> Vec<StateRef> {
        let mut v: Vec<StateRef> = self
            .entries
            .iter()
            .filter(|(_, m)| *m == AccessMode::Write)
            .map(|(s, _)| *s)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Distinct states read (including read-modify) by the transaction.
    pub fn read_set(&self) -> Vec<StateRef> {
        let mut v: Vec<StateRef> = self
            .entries
            .iter()
            .filter(|(_, m)| *m == AccessMode::Read)
            .map(|(s, _)| *s)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// All distinct states touched.
    pub fn touched(&self) -> Vec<StateRef> {
        let mut v: Vec<StateRef> = self.entries.iter().map(|(s, _)| *s).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_style_construction() {
        let set = ReadWriteSet::new()
            .read(StateRef::new(0, 1))
            .write(StateRef::new(1, 2))
            .read(StateRef::new(0, 1));
        assert_eq!(set.len(), 3);
        assert_eq!(set.primary(), Some(StateRef::new(0, 1)));
        assert_eq!(set.read_set(), vec![StateRef::new(0, 1)]);
        assert_eq!(set.write_set(), vec![StateRef::new(1, 2)]);
        assert_eq!(set.touched().len(), 2);
    }

    #[test]
    fn empty_set() {
        let set = ReadWriteSet::new();
        assert!(set.is_empty());
        assert!(set.touched().is_empty());
        assert_eq!(set.primary(), None);
    }

    #[test]
    fn duplicates_are_deduplicated_in_sets() {
        let mut set = ReadWriteSet::new();
        for _ in 0..5 {
            set.push(StateRef::new(2, 9), AccessMode::Write);
        }
        assert_eq!(set.len(), 5);
        assert_eq!(set.write_set(), vec![StateRef::new(2, 9)]);
    }
}
