//! Executor identities and thread helpers.
//!
//! The paper pins each executor (a Java thread) to one core and, for the
//! NUMA experiments, groups cores into sockets of ten (the evaluation machine
//! has 4 × 10 cores).  We reproduce the *grouping* — which drives chain
//! placement and the modelled remote-access accounting — but do not pin
//! threads to physical cores, because the scheduling decisions of the host
//! are not what the experiments measure.

/// Identity of one executor thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExecutorId(pub usize);

impl ExecutorId {
    /// Raw index (0-based).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Static description of the executor layout for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutorLayout {
    /// Number of executor threads.
    pub executors: usize,
    /// Number of cores per synthetic socket (the paper's machine has 10).
    pub cores_per_socket: usize,
}

impl ExecutorLayout {
    /// Creates a layout; both quantities are clamped to at least one.
    pub fn new(executors: usize, cores_per_socket: usize) -> Self {
        ExecutorLayout {
            executors: executors.max(1),
            cores_per_socket: cores_per_socket.max(1),
        }
    }

    /// Layout matching the paper's machine geometry (sockets of ten cores).
    pub fn paper_geometry(executors: usize) -> Self {
        Self::new(executors, 10)
    }

    /// Synthetic socket an executor belongs to.
    pub fn socket_of(&self, executor: ExecutorId) -> usize {
        executor.index() / self.cores_per_socket
    }

    /// Number of synthetic sockets in use.
    pub fn sockets(&self) -> usize {
        self.executors.div_ceil(self.cores_per_socket)
    }

    /// Executors belonging to a socket.
    pub fn executors_in_socket(&self, socket: usize) -> impl Iterator<Item = ExecutorId> + '_ {
        let start = socket * self.cores_per_socket;
        let end = (start + self.cores_per_socket).min(self.executors);
        (start..end).map(ExecutorId)
    }

    /// Iterate over all executor ids.
    pub fn all(&self) -> impl Iterator<Item = ExecutorId> {
        (0..self.executors).map(ExecutorId)
    }

    /// Executor owning state shard `shard` under shard-affine assignment.
    /// Delegates to [`crate::partition::ShardAffineRouter`] — the single
    /// definition of the ownership function — so the engine's shard-affine
    /// event routing and the chain pools can never disagree about which
    /// executor owns a shard.
    pub fn executor_for_shard(&self, shard: u32) -> ExecutorId {
        ExecutorId(
            crate::partition::ShardAffineRouter::new(self.executors).executor_for_shard(shard),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn socket_grouping_matches_paper_geometry() {
        let layout = ExecutorLayout::paper_geometry(24);
        assert_eq!(layout.sockets(), 3);
        assert_eq!(layout.socket_of(ExecutorId(0)), 0);
        assert_eq!(layout.socket_of(ExecutorId(9)), 0);
        assert_eq!(layout.socket_of(ExecutorId(10)), 1);
        assert_eq!(layout.socket_of(ExecutorId(23)), 2);
    }

    #[test]
    fn executors_in_socket_handles_partial_last_socket() {
        let layout = ExecutorLayout::paper_geometry(12);
        let last: Vec<usize> = layout.executors_in_socket(1).map(|e| e.index()).collect();
        assert_eq!(last, vec![10, 11]);
        assert_eq!(layout.all().count(), 12);
    }

    #[test]
    fn degenerate_layouts_are_clamped() {
        let layout = ExecutorLayout::new(0, 0);
        assert_eq!(layout.executors, 1);
        assert_eq!(layout.cores_per_socket, 1);
        assert_eq!(layout.sockets(), 1);
    }

    #[test]
    fn shard_affine_executor_assignment_wraps() {
        let layout = ExecutorLayout::new(3, 10);
        assert_eq!(layout.executor_for_shard(0), ExecutorId(0));
        assert_eq!(layout.executor_for_shard(2), ExecutorId(2));
        assert_eq!(layout.executor_for_shard(3), ExecutorId(0));
        assert_eq!(layout.executor_for_shard(7), ExecutorId(1));
    }
}
