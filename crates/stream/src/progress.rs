//! The progress controller.
//!
//! The progress controller assigns both events and punctuations a
//! monotonically increasing timestamp through a fetch-and-add instruction
//! (the paper uses JDK's `AtomicInteger`, Section IV-B.3) and periodically
//! broadcasts punctuations to the input stream of each executor.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::event::{Event, Punctuation, StreamElement, Timestamp};

/// Assigns timestamps and generates punctuations.
#[derive(Debug)]
pub struct ProgressController {
    next_ts: AtomicU64,
    punctuation_interval: u64,
    punctuation_seq: AtomicU64,
}

impl ProgressController {
    /// Creates a controller emitting a punctuation after every
    /// `punctuation_interval` events (the paper's default is 500).
    pub fn new(punctuation_interval: u64) -> Self {
        ProgressController {
            next_ts: AtomicU64::new(0),
            punctuation_interval: punctuation_interval.max(1),
            punctuation_seq: AtomicU64::new(0),
        }
    }

    /// Punctuation interval in events.
    pub fn punctuation_interval(&self) -> u64 {
        self.punctuation_interval
    }

    /// Assign the next timestamp (fetch-and-add).
    pub fn next_timestamp(&self) -> Timestamp {
        self.next_ts.fetch_add(1, Ordering::Relaxed)
    }

    /// The timestamp that will be assigned next (exclusive upper bound of
    /// everything assigned so far).
    pub fn high_watermark(&self) -> Timestamp {
        self.next_ts.load(Ordering::Relaxed)
    }

    /// Stamp a payload into an [`Event`].
    pub fn stamp<P>(&self, payload: P) -> Event<P> {
        Event::new(self.next_timestamp(), payload)
    }

    /// Emit a punctuation covering everything stamped so far.
    pub fn punctuate(&self) -> Punctuation {
        Punctuation {
            ts: self.high_watermark(),
            seq: self.punctuation_seq.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Stamp a whole batch of payloads and terminate it with a punctuation,
    /// producing the element sequence an executor's input stream carries.
    pub fn stamp_batch<P>(&self, payloads: impl IntoIterator<Item = P>) -> Vec<StreamElement<P>> {
        let mut out: Vec<StreamElement<P>> = payloads
            .into_iter()
            .map(|p| StreamElement::Event(self.stamp(p)))
            .collect();
        out.push(StreamElement::Punctuation(self.punctuate()));
        out
    }

    /// Reset the controller (between independent runs).
    pub fn reset(&self) {
        self.next_ts.store(0, Ordering::Relaxed);
        self.punctuation_seq.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn timestamps_are_dense_and_monotonic() {
        let pc = ProgressController::new(500);
        let ts: Vec<u64> = (0..100).map(|_| pc.next_timestamp()).collect();
        assert_eq!(ts, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn punctuation_covers_all_prior_events() {
        let pc = ProgressController::new(4);
        let batch = pc.stamp_batch(vec!['a', 'b', 'c']);
        assert_eq!(batch.len(), 4);
        let punct_ts = batch.last().unwrap().ts();
        for el in &batch[..3] {
            assert!(el.ts() < punct_ts);
        }
        let p2 = pc.punctuate();
        assert_eq!(p2.seq, 1);
    }

    #[test]
    fn concurrent_stamping_yields_unique_timestamps() {
        let pc = Arc::new(ProgressController::new(100));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let pc = pc.clone();
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| pc.next_timestamp()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 8000, "timestamps must be unique");
        assert_eq!(pc.high_watermark(), 8000);
    }

    #[test]
    fn reset_restarts_from_zero() {
        let pc = ProgressController::new(10);
        pc.next_timestamp();
        pc.punctuate();
        pc.reset();
        assert_eq!(pc.next_timestamp(), 0);
        assert_eq!(pc.punctuate().seq, 0);
    }
}
