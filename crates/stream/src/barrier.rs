//! A reusable cyclic barrier.
//!
//! TStream adds two barriers around state-access mode (Section IV-B.2): one
//! after `TXN_START` so state access only begins once every executor has
//! finished registering its postponed transactions, and one before compute
//! mode resumes so post-processing only sees fully processed state.  The
//! paper uses Java's `CyclicBarrier`; this is the Rust equivalent, with the
//! addition that `wait` reports how long the caller blocked so the *Sync*
//! component of the time breakdown can be attributed precisely.

use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

/// A reusable barrier for a fixed number of participants.
#[derive(Debug)]
pub struct CyclicBarrier {
    parties: usize,
    state: Mutex<BarrierState>,
    cond: Condvar,
}

#[derive(Debug)]
struct BarrierState {
    /// Number of parties still missing in the current generation.
    waiting: usize,
    /// Generation counter; bumping it releases the current waiters.
    generation: u64,
}

impl CyclicBarrier {
    /// Creates a barrier for `parties` participants (at least one).
    pub fn new(parties: usize) -> Self {
        let parties = parties.max(1);
        CyclicBarrier {
            parties,
            state: Mutex::new(BarrierState {
                waiting: 0,
                generation: 0,
            }),
            cond: Condvar::new(),
        }
    }

    /// Number of participants.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Wait until all parties have arrived.  Returns `(is_leader, waited)`:
    /// the leader is the last arriver (it can perform single-threaded
    /// housekeeping such as clearing chain pools), and `waited` is the time
    /// spent blocked, charged to the *Sync* breakdown component.
    pub fn wait(&self) -> (bool, Duration) {
        let start = Instant::now();
        let mut state = self.state.lock();
        state.waiting += 1;
        if state.waiting == self.parties {
            // Last arriver: release everybody and start a new generation.
            state.waiting = 0;
            state.generation = state.generation.wrapping_add(1);
            drop(state);
            self.cond.notify_all();
            (true, start.elapsed())
        } else {
            let generation = state.generation;
            while state.generation == generation {
                self.cond.wait(&mut state);
            }
            drop(state);
            (false, start.elapsed())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn single_party_never_blocks() {
        let b = CyclicBarrier::new(1);
        let (leader, waited) = b.wait();
        assert!(leader);
        assert!(waited < Duration::from_millis(50));
    }

    #[test]
    fn all_threads_released_together_and_exactly_one_leader() {
        let parties = 8;
        let barrier = Arc::new(CyclicBarrier::new(parties));
        let leaders = Arc::new(AtomicUsize::new(0));
        let passed = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..parties {
            let barrier = barrier.clone();
            let leaders = leaders.clone();
            let passed = passed.clone();
            handles.push(std::thread::spawn(move || {
                let (leader, _) = barrier.wait();
                if leader {
                    leaders.fetch_add(1, Ordering::SeqCst);
                }
                passed.fetch_add(1, Ordering::SeqCst);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(leaders.load(Ordering::SeqCst), 1);
        assert_eq!(passed.load(Ordering::SeqCst), parties);
    }

    #[test]
    fn barrier_is_reusable_across_generations() {
        let parties = 4;
        let rounds = 50;
        let barrier = Arc::new(CyclicBarrier::new(parties));
        let counter = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..parties {
            let barrier = barrier.clone();
            let counter = counter.clone();
            handles.push(std::thread::spawn(move || {
                for round in 0..rounds {
                    // Every thread must observe the full count of the
                    // previous round before anyone proceeds.
                    counter.fetch_add(1, Ordering::SeqCst);
                    barrier.wait();
                    assert!(counter.load(Ordering::SeqCst) >= (round + 1) * parties);
                    barrier.wait();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), parties * rounds);
    }

    #[test]
    fn zero_parties_clamped_to_one() {
        let b = CyclicBarrier::new(0);
        assert_eq!(b.parties(), 1);
        b.wait();
    }
}
