//! A reusable cyclic barrier.
//!
//! TStream adds two barriers around state-access mode (Section IV-B.2): one
//! after `TXN_START` so state access only begins once every executor has
//! finished registering its postponed transactions, and one before compute
//! mode resumes so post-processing only sees fully processed state.  The
//! paper uses Java's `CyclicBarrier`; this is the Rust equivalent, with the
//! addition that `wait` reports how long the caller blocked so the *Sync*
//! component of the time breakdown can be attributed precisely.

use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use tstream_obs::clock;

/// A reusable barrier for a fixed number of participants.
#[derive(Debug)]
pub struct CyclicBarrier {
    parties: usize,
    state: Mutex<BarrierState>,
    cond: Condvar,
}

#[derive(Debug)]
struct BarrierState {
    /// Number of parties still missing in the current generation.
    waiting: usize,
    /// Generation counter; bumping it releases the current waiters.
    generation: u64,
    /// Set by [`CyclicBarrier::poison`]; every current and future waiter
    /// panics instead of blocking forever on a party that will never arrive.
    poisoned: bool,
}

impl CyclicBarrier {
    /// Creates a barrier for `parties` participants (at least one).
    pub fn new(parties: usize) -> Self {
        let parties = parties.max(1);
        CyclicBarrier {
            parties,
            state: Mutex::new(BarrierState {
                waiting: 0,
                generation: 0,
                poisoned: false,
            }),
            cond: Condvar::new(),
        }
    }

    /// Number of participants.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Wait until all parties have arrived.  Returns `(is_leader, waited)`:
    /// the leader is the last arriver (it can perform single-threaded
    /// housekeeping such as clearing chain pools), and `waited` is the time
    /// spent blocked, charged to the *Sync* breakdown component.
    ///
    /// # Panics
    ///
    /// Panics if the barrier has been [`CyclicBarrier::poison`]ed — a party
    /// died, so waiting for it would block forever.
    pub fn wait(&self) -> (bool, Duration) {
        let start = clock::now();
        let mut state = self.state.lock();
        assert!(
            !state.poisoned,
            "cyclic barrier poisoned: a participant panicked"
        );
        state.waiting += 1;
        if state.waiting == self.parties {
            // Last arriver: release everybody and start a new generation.
            state.waiting = 0;
            state.generation = state.generation.wrapping_add(1);
            drop(state);
            self.cond.notify_all();
            (true, start.elapsed())
        } else {
            let generation = state.generation;
            while state.generation == generation {
                self.cond.wait(&mut state);
                assert!(
                    !state.poisoned,
                    "cyclic barrier poisoned: a participant panicked"
                );
            }
            drop(state);
            (false, start.elapsed())
        }
    }

    /// Poison the barrier: wake every current waiter and make it (and every
    /// future [`CyclicBarrier::wait`]) panic.  Called when a participant dies
    /// mid-batch — the surviving parties would otherwise block forever on an
    /// arrival that can never happen.
    pub fn poison(&self) {
        let mut state = self.state.lock();
        state.poisoned = true;
        drop(state);
        self.cond.notify_all();
    }

    /// Whether the barrier has been poisoned.
    pub fn is_poisoned(&self) -> bool {
        self.state.lock().poisoned
    }
}

#[cfg(test)]
mod tests {
    // These tests probe real timing (blocked-thread interleavings), so
    // they sleep deliberately; the workspace-wide sleep ban targets
    // production code.
    #![allow(clippy::disallowed_methods)]
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn single_party_never_blocks() {
        let b = CyclicBarrier::new(1);
        let (leader, waited) = b.wait();
        assert!(leader);
        assert!(waited < Duration::from_millis(50));
    }

    #[test]
    fn all_threads_released_together_and_exactly_one_leader() {
        let parties = 8;
        let barrier = Arc::new(CyclicBarrier::new(parties));
        let leaders = Arc::new(AtomicUsize::new(0));
        let passed = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..parties {
            let barrier = barrier.clone();
            let leaders = leaders.clone();
            let passed = passed.clone();
            handles.push(std::thread::spawn(move || {
                let (leader, _) = barrier.wait();
                if leader {
                    leaders.fetch_add(1, Ordering::SeqCst);
                }
                passed.fetch_add(1, Ordering::SeqCst);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(leaders.load(Ordering::SeqCst), 1);
        assert_eq!(passed.load(Ordering::SeqCst), parties);
    }

    #[test]
    fn barrier_is_reusable_across_generations() {
        let parties = 4;
        let rounds = 50;
        let barrier = Arc::new(CyclicBarrier::new(parties));
        let counter = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..parties {
            let barrier = barrier.clone();
            let counter = counter.clone();
            handles.push(std::thread::spawn(move || {
                for round in 0..rounds {
                    // Every thread must observe the full count of the
                    // previous round before anyone proceeds.
                    counter.fetch_add(1, Ordering::SeqCst);
                    barrier.wait();
                    assert!(counter.load(Ordering::SeqCst) >= (round + 1) * parties);
                    barrier.wait();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), parties * rounds);
    }

    #[test]
    fn zero_parties_clamped_to_one() {
        let b = CyclicBarrier::new(0);
        assert_eq!(b.parties(), 1);
        b.wait();
    }

    /// Regression test for the persistent executor pool: a pool reuses one
    /// barrier for the lifetime of a session, and an executor that finishes a
    /// batch early re-enters `wait` while slower ones may not yet have woken
    /// from the previous generation.  The generation counter must keep the
    /// two rounds apart — a fast re-entrant waiter must never be released by
    /// the notification of the round it already passed.
    #[test]
    fn immediate_reentry_joins_the_next_generation_not_the_previous() {
        let parties = 2;
        let rounds = 2_000;
        let barrier = Arc::new(CyclicBarrier::new(parties));
        let rounds_seen = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for spin in [false, true] {
            let barrier = barrier.clone();
            let rounds_seen = rounds_seen.clone();
            handles.push(std::thread::spawn(move || {
                let mut leads = 0usize;
                for _ in 0..rounds {
                    let (leader, _) = barrier.wait();
                    if leader {
                        leads += 1;
                        rounds_seen.fetch_add(1, Ordering::SeqCst);
                    }
                    // One thread re-enters immediately; the other yields so
                    // their arrival orders interleave across generations.
                    if !spin {
                        std::thread::yield_now();
                    }
                }
                leads
            }));
        }
        let total_leads: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total_leads, rounds, "exactly one leader per generation");
        assert_eq!(rounds_seen.load(Ordering::SeqCst), rounds);
    }

    /// The generation counter wraps with `wrapping_add`; a barrier sitting at
    /// `u64::MAX` generations must release the wrap-around round normally.
    #[test]
    fn generation_counter_wraparound_is_harmless() {
        let barrier = Arc::new(CyclicBarrier::new(3));
        barrier.state.lock().generation = u64::MAX;
        let mut handles = Vec::new();
        for _ in 0..2 {
            let barrier = barrier.clone();
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                barrier.wait();
            }));
        }
        barrier.wait();
        barrier.wait();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(barrier.state.lock().generation, 1, "MAX -> 0 -> 1");
    }

    /// Poisoning releases blocked waiters (as a panic) instead of leaving
    /// them stranded, and rejects late arrivals.
    #[test]
    fn poison_wakes_waiters_and_rejects_late_arrivals() {
        let barrier = Arc::new(CyclicBarrier::new(3));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let barrier = barrier.clone();
            handles.push(std::thread::spawn(move || {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| barrier.wait())).is_err()
            }));
        }
        // Give both waiters time to block, then poison instead of arriving.
        std::thread::sleep(Duration::from_millis(20));
        assert!(!barrier.is_poisoned());
        barrier.poison();
        for h in handles {
            assert!(h.join().unwrap(), "blocked waiters must panic, not hang");
        }
        assert!(barrier.is_poisoned());
        let late = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| barrier.wait()));
        assert!(late.is_err(), "late arrivals must panic too");
    }

    /// Batch-shaped reuse: the engine passes each barrier generation with a
    /// known phase counter.  Under uneven per-round delays, no thread may
    /// ever observe a phase more than one round away from its own — the
    /// failure mode a lost or double-counted generation would produce.
    #[test]
    fn repeated_waits_keep_all_parties_in_lockstep_phases() {
        let parties = 4;
        let rounds = 300;
        let barrier = Arc::new(CyclicBarrier::new(parties));
        let phase = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for t in 0..parties {
            let barrier = barrier.clone();
            let phase = phase.clone();
            handles.push(std::thread::spawn(move || {
                for round in 0..rounds {
                    let (leader, _) = barrier.wait();
                    if leader {
                        phase.store(round + 1, Ordering::SeqCst);
                    }
                    if t % 2 == 0 {
                        std::thread::yield_now();
                    }
                    let (_, _) = barrier.wait();
                    // Between the two barriers of round N the phase is
                    // exactly N + 1: the leader of round N set it, and no
                    // thread can reach round N + 1's first barrier before
                    // everyone passed this one.
                    assert_eq!(phase.load(Ordering::SeqCst), round + 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
