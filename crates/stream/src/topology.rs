//! A lightweight DAG description of a streaming application.
//!
//! TStream "expresses an application as a DAG with an API similar to that of
//! Storm" (Section IV-A) and then *fuses* the stateful operators into a single
//! joint operator scaled across executors (Section V).  The engine itself only
//! executes fused operators; this module captures the logical DAG so examples
//! and documentation can present applications the way the paper's Figure 2
//! does, and so the fusion step is explicit and testable.

use std::collections::{HashMap, HashSet};

/// How events travel along an edge of the DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Grouping {
    /// Round-robin shuffle (TStream's default for fused stateful operators).
    Shuffle,
    /// Key-based partitioning on some field (the conventional design of
    /// Figure 2a).
    KeyBased,
    /// Broadcast to all executors (used for punctuations).
    Broadcast,
}

/// A logical operator node.
#[derive(Debug, Clone)]
pub struct OperatorNode {
    /// Operator name (e.g. "Road Speed").
    pub name: String,
    /// Requested parallelism (number of executors).
    pub parallelism: usize,
    /// Whether the operator accesses shared mutable state.
    pub stateful: bool,
}

/// A logical streaming topology: operators plus directed edges.
#[derive(Debug, Default, Clone)]
pub struct Topology {
    nodes: Vec<OperatorNode>,
    by_name: HashMap<String, usize>,
    edges: Vec<(usize, usize, Grouping)>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an operator; returns its index. Re-adding a name replaces nothing
    /// and returns the existing index.
    pub fn add_operator(
        &mut self,
        name: impl Into<String>,
        parallelism: usize,
        stateful: bool,
    ) -> usize {
        let name = name.into();
        if let Some(&idx) = self.by_name.get(&name) {
            return idx;
        }
        let idx = self.nodes.len();
        self.by_name.insert(name.clone(), idx);
        self.nodes.push(OperatorNode {
            name,
            parallelism: parallelism.max(1),
            stateful,
        });
        idx
    }

    /// Connect `from` → `to` with the given grouping.
    pub fn connect(&mut self, from: usize, to: usize, grouping: Grouping) {
        self.edges.push((from, to, grouping));
    }

    /// Number of operators.
    pub fn operator_count(&self) -> usize {
        self.nodes.len()
    }

    /// Operator by index.
    pub fn operator(&self, idx: usize) -> &OperatorNode {
        &self.nodes[idx]
    }

    /// Look up an operator index by name.
    pub fn find(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// Edges as `(from, to, grouping)` triples.
    pub fn edges(&self) -> &[(usize, usize, Grouping)] {
        &self.edges
    }

    /// Whether the graph is acyclic (DAG check via Kahn's algorithm).
    pub fn is_acyclic(&self) -> bool {
        let mut indegree = vec![0usize; self.nodes.len()];
        for &(_, to, _) in &self.edges {
            indegree[to] += 1;
        }
        let mut queue: Vec<usize> = indegree
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| i)
            .collect();
        let mut visited = 0;
        while let Some(n) = queue.pop() {
            visited += 1;
            for &(from, to, _) in &self.edges {
                if from == n {
                    indegree[to] -= 1;
                    if indegree[to] == 0 {
                        queue.push(to);
                    }
                }
            }
        }
        visited == self.nodes.len()
    }

    /// The names of the stateful operators that TStream fuses into a single
    /// joint operator (Section V).  The fused operator inherits the maximum
    /// requested parallelism.
    pub fn fuse_stateful(&self) -> FusedOperator {
        let mut names = Vec::new();
        let mut parallelism = 1;
        for node in &self.nodes {
            if node.stateful {
                names.push(node.name.clone());
                parallelism = parallelism.max(node.parallelism);
            }
        }
        FusedOperator { names, parallelism }
    }

    /// Upstream (non-stateful) operators that remain outside the fused
    /// operator, e.g. `Parser`.
    pub fn unfused(&self) -> Vec<&OperatorNode> {
        self.nodes.iter().filter(|n| !n.stateful).collect()
    }

    /// Validate that every edge endpoint exists and that names are unique.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen = HashSet::new();
        for node in &self.nodes {
            if !seen.insert(&node.name) {
                return Err(format!("duplicate operator name `{}`", node.name));
            }
        }
        for &(from, to, _) in &self.edges {
            if from >= self.nodes.len() || to >= self.nodes.len() {
                return Err(format!("edge ({from}, {to}) references unknown operator"));
            }
        }
        if !self.is_acyclic() {
            return Err("topology contains a cycle".to_owned());
        }
        Ok(())
    }
}

/// The single joint operator produced by fusing all stateful operators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusedOperator {
    /// Names of the fused operators, in declaration order.
    pub names: Vec<String>,
    /// Parallelism of the joint operator.
    pub parallelism: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toll_processing() -> Topology {
        // Figure 2(b): Parser -> {RS, VC, TN} -> Sink with shared state.
        let mut t = Topology::new();
        let parser = t.add_operator("Parser", 2, false);
        let rs = t.add_operator("Road Speed", 4, true);
        let vc = t.add_operator("Vehicle Cnt", 4, true);
        let tn = t.add_operator("Toll Notification", 4, true);
        let sink = t.add_operator("Sink", 1, false);
        t.connect(parser, rs, Grouping::Shuffle);
        t.connect(parser, vc, Grouping::Shuffle);
        t.connect(parser, tn, Grouping::Shuffle);
        t.connect(rs, sink, Grouping::Shuffle);
        t.connect(vc, sink, Grouping::Shuffle);
        t.connect(tn, sink, Grouping::Shuffle);
        t
    }

    #[test]
    fn build_and_validate_toll_processing() {
        let t = toll_processing();
        assert_eq!(t.operator_count(), 5);
        assert!(t.validate().is_ok());
        assert!(t.is_acyclic());
        assert_eq!(t.find("Sink"), Some(4));
        assert_eq!(t.operator(1).name, "Road Speed");
    }

    #[test]
    fn fusion_collects_stateful_operators() {
        let t = toll_processing();
        let fused = t.fuse_stateful();
        assert_eq!(
            fused.names,
            vec!["Road Speed", "Vehicle Cnt", "Toll Notification"]
        );
        assert_eq!(fused.parallelism, 4);
        assert_eq!(t.unfused().len(), 2);
    }

    #[test]
    fn cycles_are_detected() {
        let mut t = Topology::new();
        let a = t.add_operator("A", 1, false);
        let b = t.add_operator("B", 1, false);
        t.connect(a, b, Grouping::Shuffle);
        t.connect(b, a, Grouping::Shuffle);
        assert!(!t.is_acyclic());
        assert!(t.validate().is_err());
    }

    #[test]
    fn duplicate_names_resolve_to_same_node() {
        let mut t = Topology::new();
        let a1 = t.add_operator("A", 1, false);
        let a2 = t.add_operator("A", 3, true);
        assert_eq!(a1, a2);
        assert_eq!(t.operator_count(), 1);
    }

    #[test]
    fn bad_edges_fail_validation() {
        let mut t = Topology::new();
        t.add_operator("A", 1, false);
        t.connect(0, 7, Grouping::Broadcast);
        assert!(t.validate().is_err());
    }
}
