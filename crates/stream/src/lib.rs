//! # tstream-stream
//!
//! The stream-processing substrate TStream is built on — the role BriskStream
//! plays in the paper (Section V).  It contains everything that is *not*
//! specific to concurrent state access:
//!
//! * [`event`] — input events, timestamps and punctuations;
//! * [`progress`] — the progress controller that assigns monotonically
//!   increasing timestamps and injects punctuations (Section IV-B.3);
//! * [`operator`] — the three-step operator abstraction (pre-process /
//!   state-access / post-process, feature **F1**) and the descriptor of a
//!   transaction's read/write set (feature **F2**);
//! * [`partition`] — round-robin shuffle, key-based stream partitioning and
//!   shard-affine event routing onto the state store's shard layer;
//! * [`source`] — the ingestion layer: online, punctuation-delimited batch
//!   formation ([`source::BatchBuilder`]) that stamps events at arrival time,
//!   plus bounded source channels with backpressure;
//! * [`barrier`] — a reusable cyclic barrier used for dual-mode switching;
//! * [`executor`] — executor identities and thread helpers;
//! * [`sink`] — throughput / end-to-end latency measurement;
//! * [`metrics`] — the per-transaction time breakdown used by Figures 1 and 9
//!   (Useful / Sync / Lock / RMA / Others);
//! * [`topology`] — a small DAG description used by the examples to mirror the
//!   Storm-like API of the paper.

#![warn(missing_docs)]

pub mod barrier;
pub mod event;
pub mod executor;
pub mod metrics;
pub mod operator;
pub mod partition;
pub mod progress;
pub mod sink;
pub mod source;
pub mod topology;

pub use barrier::CyclicBarrier;
pub use event::{Event, Punctuation, StreamElement, Timestamp};
pub use executor::{ExecutorId, ExecutorLayout};
pub use metrics::{Breakdown, Component, ComponentTimer};
pub use operator::{AccessMode, ReadWriteSet, StateRef};
pub use partition::{EventRouting, KeyPartitioner, RoundRobin, ShardAffineRouter};
pub use progress::ProgressController;
pub use sink::{LatencyStats, Sink};
pub use source::{bounded_source, BatchBuilder, SourceBatch, SourceHandle, SourceOutlet};
