//! # tstream-obs
//!
//! The observability layer of the TStream reproduction: a lock-free
//! [`MetricsHub`] (counters, gauges, log-bucketed histograms updated with
//! relaxed atomics), a [`FlightRecorder`] (fixed-capacity per-thread rings
//! of typed trace events, drainable as one merged chronological timeline),
//! and the [`clock`] facade that is the only sanctioned source of
//! `Instant::now()` in the runtime crates.
//!
//! One [`Obs`] instance is created per engine and threaded (behind an
//! `Arc`) through ingestion, execution and durability.  When a barrier
//! poisons or a runtime thread panics, [`Obs::post_mortem`] dumps the
//! recorder's recent history exactly once, so every crash leaves a readable
//! last-N-events timeline instead of a bare re-raised panic.
//!
//! The whole layer can be switched off with [`ObsConfig::disabled`]; every
//! recording call then returns after a single branch, which is what
//! `bench_snapshot` measures to keep the hub's overhead honest.

#![warn(missing_docs)]

pub mod clock;
pub mod flight;
pub mod hist;
pub mod metrics;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::Mutex;

pub use clock::Stopwatch;
pub use flight::{FlightRecorder, TraceEvent, TraceKind, DEFAULT_FLIGHT_CAPACITY, NO_BATCH};
pub use hist::{AtomicHistogram, HistogramSummary, LatencyHistogram};
pub use metrics::{Counter, Gauge, MetricsHub, MetricsSnapshot};

/// Observability configuration, carried inside the engine config (`Copy` so
/// the engine config stays `Copy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Whether the metrics hub and flight recorder record anything.
    pub enabled: bool,
    /// Per-lane flight-recorder ring capacity (events), clamped to ≥ 1.
    pub flight_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            enabled: true,
            flight_capacity: DEFAULT_FLIGHT_CAPACITY,
        }
    }
}

impl ObsConfig {
    /// Observability on, default flight capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Everything off: recording methods return after one branch.  The
    /// post-mortem path still fires (a crash dump is never optional), but
    /// with an empty timeline.
    pub fn disabled() -> Self {
        ObsConfig {
            enabled: false,
            flight_capacity: 1,
        }
    }

    /// Builder-style override of the flight-recorder capacity.
    pub fn flight_capacity(mut self, capacity: usize) -> Self {
        self.flight_capacity = capacity.max(1);
        self
    }
}

/// The per-engine observability aggregate: metrics hub + flight recorder +
/// the dump-once post-mortem latch.
#[derive(Debug)]
pub struct Obs {
    hub: MetricsHub,
    recorder: FlightRecorder,
    postmortem_fired: AtomicBool,
    postmortems: AtomicU64,
    last_postmortem: Mutex<Option<String>>,
}

impl Obs {
    /// Build the observability state for an engine with `executors`
    /// executor threads (the recorder gets `executors + 2` lanes).
    pub fn new(config: ObsConfig, executors: usize) -> Self {
        Obs {
            hub: MetricsHub::new(config.enabled),
            recorder: FlightRecorder::new(config.enabled, executors, config.flight_capacity),
            postmortem_fired: AtomicBool::new(false),
            postmortems: AtomicU64::new(0),
            last_postmortem: Mutex::new(None),
        }
    }

    /// Whether recording is on.
    pub fn enabled(&self) -> bool {
        self.hub.enabled()
    }

    /// The metrics hub.
    pub fn hub(&self) -> &MetricsHub {
        &self.hub
    }

    /// The flight recorder.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Record a trace event on executor `i`'s lane.
    #[inline]
    pub fn trace_exec(&self, executor: usize, batch: u64, kind: TraceKind) {
        self.recorder
            .record(self.recorder.executor_lane(executor), batch, kind);
    }

    /// Record a trace event on the ingestion lane.
    #[inline]
    pub fn trace_ingest(&self, batch: u64, kind: TraceKind) {
        self.recorder
            .record(self.recorder.ingest_lane(), batch, kind);
    }

    /// Record a trace event on the WAL lane.
    #[inline]
    pub fn trace_wal(&self, batch: u64, kind: TraceKind) {
        self.recorder.record(self.recorder.wal_lane(), batch, kind);
    }

    /// Merged chronological timeline of all lanes.
    pub fn flight_recording(&self) -> Vec<TraceEvent> {
        self.recorder.timeline()
    }

    /// Snapshot of every metric series, including the recorder and
    /// post-mortem counters.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.hub.snapshot();
        snap.trace_events = self.recorder.recorded();
        snap.trace_dropped = self.recorder.dropped();
        snap.postmortems = self.postmortems.load(Ordering::Relaxed);
        snap
    }

    /// Prometheus text exposition of the current snapshot.
    pub fn metrics_text(&self) -> String {
        self.metrics_snapshot().to_prometheus_text()
    }

    /// Flat JSON rendering of the current snapshot.
    pub fn metrics_json(&self) -> String {
        self.metrics_snapshot().to_json()
    }

    /// Dump the flight recorder's recent history — once.
    ///
    /// The first caller wins: it formats the merged timeline, stores it for
    /// [`Obs::last_post_mortem`], writes it to stderr and returns `true`.
    /// Every later call (other executors panicking on the same poisoned
    /// barrier, the session re-raising) is a no-op returning `false`, so a
    /// multi-thread crash produces exactly one readable dump.
    pub fn post_mortem(&self, reason: &str) -> bool {
        if self
            .postmortem_fired
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return false;
        }
        let timeline = self.recorder.timeline();
        let mut dump = format!(
            "=== tstream post-mortem: {reason} ===\nlast {} flight-recorder events:\n",
            timeline.len()
        );
        dump.push_str(&self.recorder.format_timeline(&timeline));
        dump.push_str("=== end post-mortem ===");
        self.postmortems.fetch_add(1, Ordering::Relaxed);
        *self.last_postmortem.lock() = Some(dump.clone());
        eprintln!("{dump}");
        true
    }

    /// How many post-mortem dumps have fired (0 or 1).
    pub fn post_mortem_count(&self) -> u64 {
        self.postmortems.load(Ordering::Relaxed)
    }

    /// The stored post-mortem dump, if one fired.
    pub fn last_post_mortem(&self) -> Option<String> {
        self.last_postmortem.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn post_mortem_fires_exactly_once() {
        let obs = Obs::new(ObsConfig::default(), 2);
        obs.trace_exec(0, 7, TraceKind::Poisoned);
        assert_eq!(obs.post_mortem_count(), 0);
        assert!(obs.post_mortem("executor panic"));
        assert!(!obs.post_mortem("second caller"));
        assert!(!obs.post_mortem("third caller"));
        assert_eq!(obs.post_mortem_count(), 1);
        let dump = obs.last_post_mortem().expect("dump stored");
        assert!(dump.contains("executor panic"));
        assert!(dump.contains("POISONED"));
        assert!(dump.contains("batch=7"));
    }

    #[test]
    fn post_mortem_races_elect_one_winner() {
        let obs = std::sync::Arc::new(Obs::new(ObsConfig::default(), 4));
        let winners: u64 = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let obs = obs.clone();
                    s.spawn(move || obs.post_mortem("race") as u64)
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(winners, 1, "exactly one thread dumps");
        assert_eq!(obs.post_mortem_count(), 1);
    }

    #[test]
    fn disabled_obs_still_dumps_but_records_nothing() {
        let obs = Obs::new(ObsConfig::disabled(), 2);
        obs.hub().batch_ingested(64, false);
        obs.trace_exec(0, 0, TraceKind::FastPath);
        assert_eq!(obs.metrics_snapshot().ingest_events, 0);
        assert!(obs.flight_recording().is_empty());
        assert!(obs.post_mortem("crash while disabled"));
        assert_eq!(obs.post_mortem_count(), 1);
    }

    #[test]
    fn snapshot_carries_recorder_counters() {
        let obs = Obs::new(ObsConfig::default().flight_capacity(2), 1);
        for i in 0..5 {
            obs.trace_ingest(i, TraceKind::BatchInjected);
        }
        let snap = obs.metrics_snapshot();
        assert_eq!(snap.trace_events, 5);
        assert_eq!(snap.trace_dropped, 3);
        let text = obs.metrics_text();
        assert!(text.contains("tstream_obs_trace_events_total 5"));
    }
}
