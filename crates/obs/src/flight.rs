//! The flight recorder: fixed-capacity per-lane ring buffers of typed trace
//! events, drainable as one merged chronological timeline.
//!
//! Every runtime thread writes to its own *lane* — one per executor, one for
//! the ingestion thread, one for the WAL writer — so recording never
//! contends: each lane is guarded by a `parking_lot` mutex that only its
//! owning thread takes on the hot path (the drain side takes them briefly,
//! one at a time).  A lane holds the last `capacity` events; older events
//! are overwritten, which is the point — when a barrier poisons or a thread
//! panics, the recorder holds exactly the recent history a post-mortem
//! needs.
//!
//! Events are stamped with nanoseconds since the recorder's epoch plus a
//! global sequence number, so [`FlightRecorder::timeline`] can merge all
//! lanes into one stable chronological order.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

/// Default per-lane ring capacity (events).
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// What happened, at one point of the batch lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A punctuation batch finished forming at ingestion.
    BatchFormed {
        /// Events in the batch.
        events: u32,
        /// Whether the batch is a recovery replay.
        replayed: bool,
    },
    /// The ingestion thread staged the batch (after any backpressure wait).
    BatchStaged {
        /// Nanoseconds spent blocked on the staging queue.
        wait_ns: u64,
    },
    /// An executor picked the batch up for execution.
    BatchInjected,
    /// The batch was conflict-free and took the fast path.
    FastPath,
    /// The leader decomposed the batch into operation chains.
    Restructured {
        /// Chains built for this batch.
        chains: u32,
    },
    /// One executor completed one barrier round.
    BarrierRound {
        /// Nanoseconds spent waiting at the barrier.
        wait_ns: u64,
    },
    /// The leader serially replayed aborted transactions.
    AbortReplay {
        /// Aborted transactions resolved.
        aborted: u32,
    },
    /// The batch published its results to the sink.
    Published {
        /// Transactions committed.
        committed: u32,
        /// Transactions rejected.
        rejected: u32,
    },
    /// The WAL sealed the batch's segment.
    Sealed {
        /// Epoch of the sealed segment.
        epoch: u64,
    },
    /// A checkpoint covering this epoch completed.
    Checkpointed {
        /// Checkpointed epoch.
        epoch: u64,
    },
    /// Sealed segments were truncated after a checkpoint.
    Truncated {
        /// Segments removed.
        segments: u32,
    },
    /// The run's barrier was poisoned.
    Poisoned,
    /// A runtime thread panicked.
    Panicked,
}

impl TraceKind {
    fn describe(&self) -> String {
        match self {
            TraceKind::BatchFormed { events, replayed } => {
                format!(
                    "batch formed ({events} events{})",
                    if *replayed { ", replayed" } else { "" }
                )
            }
            TraceKind::BatchStaged { wait_ns } => format!("staged (waited {wait_ns} ns)"),
            TraceKind::BatchInjected => "injected".to_string(),
            TraceKind::FastPath => "fast path".to_string(),
            TraceKind::Restructured { chains } => format!("restructured into {chains} chains"),
            TraceKind::BarrierRound { wait_ns } => format!("barrier round ({wait_ns} ns)"),
            TraceKind::AbortReplay { aborted } => format!("replayed {aborted} aborts"),
            TraceKind::Published {
                committed,
                rejected,
            } => {
                format!("published ({committed} committed, {rejected} rejected)")
            }
            TraceKind::Sealed { epoch } => format!("sealed epoch {epoch}"),
            TraceKind::Checkpointed { epoch } => format!("checkpointed epoch {epoch}"),
            TraceKind::Truncated { segments } => format!("truncated {segments} segments"),
            TraceKind::Poisoned => "POISONED".to_string(),
            TraceKind::Panicked => "PANICKED".to_string(),
        }
    }
}

/// Sentinel for [`TraceEvent::batch`] when the event is not tied to a batch.
pub const NO_BATCH: u64 = u64::MAX;

/// One recorded trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the recorder's epoch (engine creation).
    pub t_ns: u64,
    /// Global sequence number: a stable tie-break for merge ordering.
    pub seq: u64,
    /// Lane index (see [`FlightRecorder::lane_name`]).
    pub lane: u32,
    /// Punctuation sequence number of the batch, or [`NO_BATCH`].
    pub batch: u64,
    /// What happened.
    pub kind: TraceKind,
}

#[derive(Debug)]
struct Lane {
    buf: Vec<TraceEvent>,
    next: usize,
}

/// The per-engine flight recorder.  Lanes `0..executors` belong to the
/// executors, lane `executors` to the ingestion thread, lane
/// `executors + 1` to the WAL writer.
#[derive(Debug)]
pub struct FlightRecorder {
    enabled: bool,
    capacity: usize,
    executors: usize,
    epoch: Instant,
    seq: AtomicU64,
    recorded: AtomicU64,
    dropped: AtomicU64,
    lanes: Vec<Mutex<Lane>>,
}

impl FlightRecorder {
    /// A recorder with `executors + 2` lanes of `capacity` events each.
    pub fn new(enabled: bool, executors: usize, capacity: usize) -> Self {
        let executors = executors.max(1);
        let capacity = capacity.max(1);
        FlightRecorder {
            enabled,
            capacity,
            executors,
            epoch: crate::clock::now(),
            seq: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            lanes: (0..executors + 2)
                .map(|_| {
                    Mutex::new(Lane {
                        buf: Vec::with_capacity(capacity),
                        next: 0,
                    })
                })
                .collect(),
        }
    }

    /// Whether recording does anything.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Per-lane ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lane index of executor `i`.
    pub fn executor_lane(&self, i: usize) -> usize {
        i.min(self.executors - 1)
    }

    /// Lane index of the ingestion thread.
    pub fn ingest_lane(&self) -> usize {
        self.executors
    }

    /// Lane index of the WAL writer thread.
    pub fn wal_lane(&self) -> usize {
        self.executors + 1
    }

    /// Human-readable lane label.
    pub fn lane_name(&self, lane: u32) -> String {
        let lane = lane as usize;
        if lane < self.executors {
            format!("exec{lane}")
        } else if lane == self.executors {
            "ingest".to_string()
        } else {
            "wal".to_string()
        }
    }

    /// Record `kind` on `lane` for `batch` (or [`NO_BATCH`]).
    #[inline]
    pub fn record(&self, lane: usize, batch: u64, kind: TraceKind) {
        if !self.enabled {
            return;
        }
        let event = TraceEvent {
            t_ns: self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            lane: lane.min(self.lanes.len() - 1) as u32,
            batch,
            kind,
        };
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let mut guard = self.lanes[event.lane as usize].lock();
        if guard.buf.len() < self.capacity {
            guard.buf.push(event);
        } else {
            let slot = guard.next;
            guard.buf[slot] = event;
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        guard.next = (guard.next + 1) % self.capacity;
    }

    /// Total events recorded over the recorder's lifetime.
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Events overwritten before they were drained.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Snapshot every lane and merge into one chronological timeline,
    /// ordered by `(t_ns, seq)`.
    pub fn timeline(&self) -> Vec<TraceEvent> {
        let mut all = Vec::new();
        for lane in &self.lanes {
            let guard = lane.lock();
            all.extend_from_slice(&guard.buf);
        }
        all.sort_unstable_by_key(|e| (e.t_ns, e.seq));
        all
    }

    /// Format a timeline into the human-readable post-mortem layout.
    pub fn format_timeline(&self, events: &[TraceEvent]) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(events.len() * 64 + 64);
        for e in events {
            let _ = write!(
                out,
                "[+{:>12.6}s] {:<7}",
                e.t_ns as f64 / 1e9,
                self.lane_name(e.lane)
            );
            if e.batch != NO_BATCH {
                let _ = write!(out, " batch={:<5}", e.batch);
            } else {
                let _ = write!(out, "            ");
            }
            let _ = writeln!(out, " {}", e.kind.describe());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_merges_lanes_in_stamp_order() {
        let rec = FlightRecorder::new(true, 2, 16);
        rec.record(
            rec.ingest_lane(),
            0,
            TraceKind::BatchFormed {
                events: 4,
                replayed: false,
            },
        );
        rec.record(rec.executor_lane(0), 0, TraceKind::BatchInjected);
        rec.record(rec.executor_lane(1), 0, TraceKind::BatchInjected);
        rec.record(rec.executor_lane(0), 0, TraceKind::FastPath);
        rec.record(rec.wal_lane(), 0, TraceKind::Sealed { epoch: 0 });
        let tl = rec.timeline();
        assert_eq!(tl.len(), 5);
        for w in tl.windows(2) {
            assert!(
                (w[0].t_ns, w[0].seq) <= (w[1].t_ns, w[1].seq),
                "timeline must be chronologically ordered"
            );
        }
        assert_eq!(
            tl[0].kind,
            TraceKind::BatchFormed {
                events: 4,
                replayed: false
            }
        );
        assert_eq!(tl[4].kind, TraceKind::Sealed { epoch: 0 });
        assert_eq!(rec.recorded(), 5);
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn lanes_are_bounded_rings() {
        let rec = FlightRecorder::new(true, 1, 4);
        for i in 0..10u64 {
            rec.record(0, i, TraceKind::BatchInjected);
        }
        let tl = rec.timeline();
        assert_eq!(tl.len(), 4, "ring keeps only the last `capacity` events");
        let batches: Vec<u64> = {
            let mut b: Vec<u64> = tl.iter().map(|e| e.batch).collect();
            b.sort_unstable();
            b
        };
        assert_eq!(batches, vec![6, 7, 8, 9], "oldest events are overwritten");
        assert_eq!(rec.recorded(), 10);
        assert_eq!(rec.dropped(), 6);
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = FlightRecorder::new(false, 2, 16);
        rec.record(0, 0, TraceKind::FastPath);
        assert!(rec.timeline().is_empty());
        assert_eq!(rec.recorded(), 0);
    }

    #[test]
    fn lane_names_cover_all_roles() {
        let rec = FlightRecorder::new(true, 2, 4);
        assert_eq!(rec.lane_name(0), "exec0");
        assert_eq!(rec.lane_name(1), "exec1");
        assert_eq!(rec.lane_name(2), "ingest");
        assert_eq!(rec.lane_name(3), "wal");
    }

    #[test]
    fn format_timeline_is_readable() {
        let rec = FlightRecorder::new(true, 1, 8);
        rec.record(
            rec.ingest_lane(),
            3,
            TraceKind::BatchFormed {
                events: 64,
                replayed: true,
            },
        );
        rec.record(rec.executor_lane(0), 3, TraceKind::Poisoned);
        rec.record(
            rec.wal_lane(),
            NO_BATCH,
            TraceKind::Truncated { segments: 2 },
        );
        let text = rec.format_timeline(&rec.timeline());
        assert!(text.contains("ingest"));
        assert!(text.contains("batch=3"));
        assert!(text.contains("replayed"));
        assert!(text.contains("POISONED"));
        assert!(text.contains("truncated 2 segments"));
    }
}
