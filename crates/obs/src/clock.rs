//! The sanctioned timing facade.
//!
//! Runtime crates are forbidden (by `tools/repolint`) from calling
//! `Instant::now()` directly: ad-hoc timing scattered through the hot path is
//! impossible to audit for overhead and invisible to the observability layer.
//! Everything that needs wall-clock readings goes through this module
//! instead — either a bare [`now`] for arrival stamping, or a [`Stopwatch`]
//! for interval measurement that can be disabled (skipping the clock read
//! entirely) when observability is off.

use std::time::{Duration, Instant};

/// Read the monotonic clock.  The single sanctioned `Instant::now()` of the
/// runtime crates.
#[inline]
pub fn now() -> Instant {
    Instant::now()
}

/// An interval timer that can be compiled down to a no-op.
///
/// `Stopwatch::start()` reads the clock; [`Stopwatch::start_if`]`(false)` and
/// [`Stopwatch::disabled`] skip the read and report zero elapsed time, so
/// instrumentation gated on [`crate::ObsConfig::disabled`] pays nothing but a
/// branch.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Option<Instant>,
}

impl Stopwatch {
    /// Start timing now.
    #[inline]
    pub fn start() -> Self {
        Stopwatch {
            started: Some(now()),
        }
    }

    /// Start timing only when `enabled`; otherwise the stopwatch is inert
    /// and reports zero.
    #[inline]
    pub fn start_if(enabled: bool) -> Self {
        Stopwatch {
            started: enabled.then(now),
        }
    }

    /// An inert stopwatch: no clock read, zero elapsed.
    #[inline]
    pub fn disabled() -> Self {
        Stopwatch { started: None }
    }

    /// Whether this stopwatch actually read the clock.
    #[inline]
    pub fn is_running(&self) -> bool {
        self.started.is_some()
    }

    /// Elapsed time since `start`; [`Duration::ZERO`] when inert.
    #[inline]
    pub fn elapsed(&self) -> Duration {
        self.started.map(|s| s.elapsed()).unwrap_or(Duration::ZERO)
    }

    /// Elapsed nanoseconds since `start` (saturating); 0 when inert.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        self.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stopwatch_measures_time() {
        let sw = Stopwatch::start();
        assert!(sw.is_running());
        let busy: u64 = (0..10_000).sum();
        assert!(busy > 0);
        assert!(sw.elapsed() > Duration::ZERO);
    }

    #[test]
    fn disabled_stopwatch_reports_zero() {
        let sw = Stopwatch::disabled();
        assert!(!sw.is_running());
        assert_eq!(sw.elapsed(), Duration::ZERO);
        assert_eq!(sw.elapsed_ns(), 0);
        let gated = Stopwatch::start_if(false);
        assert!(!gated.is_running());
        assert!(Stopwatch::start_if(true).is_running());
    }
}
