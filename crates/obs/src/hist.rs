//! Log-bucketed histograms with bounded relative error.
//!
//! Both histogram flavours share one bucket scheme: values below 32 get an
//! exact bucket each; every power-of-two range `[2^e, 2^(e+1))` above that is
//! split into 32 equal sub-buckets (`SUB_BUCKET_BITS = 5`).  A bucket's
//! representative is its midpoint, so any reported quantile is within
//! `1 / 64 ≈ 1.6 %` of the true value — good enough for p99.9 latency while
//! the whole table stays a flat 1920-slot array (≈ 15 KiB) with O(1)
//! recording and no allocation after construction.
//!
//! * [`LatencyHistogram`] — single-writer, mergeable; replaces the
//!   Vec-of-Durations percentile sampling in the sink.  Tracks exact min,
//!   max and sum so `percentile(0)`, `percentile(100)`, `max()` and `mean()`
//!   stay bias-free.
//! * [`AtomicHistogram`] — multi-writer with relaxed atomics; used by the
//!   metrics hub for hot-path distributions (barrier waits).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sub-bucket resolution: 2^5 = 32 sub-buckets per power of two.
pub const SUB_BUCKET_BITS: u32 = 5;
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;
const LINEAR_LIMIT: u64 = SUB_BUCKETS as u64;

/// Total bucket count covering the full `u64` range: 32 exact buckets plus
/// 32 sub-buckets for each exponent 5‥63.
pub const BUCKET_COUNT: usize = SUB_BUCKETS + (64 - SUB_BUCKET_BITS as usize) * SUB_BUCKETS;

/// Bucket index of `v` under the shared log-bucket scheme.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < LINEAR_LIMIT {
        v as usize
    } else {
        let e = 63 - v.leading_zeros();
        let shift = e - SUB_BUCKET_BITS;
        SUB_BUCKETS + (shift as usize) * SUB_BUCKETS + ((v >> shift) as usize - SUB_BUCKETS)
    }
}

/// Half-open value range `[lo, hi)` covered by bucket `index`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < SUB_BUCKETS {
        (index as u64, index as u64 + 1)
    } else {
        let rest = index - SUB_BUCKETS;
        let shift = (rest / SUB_BUCKETS) as u32;
        let sub = (rest % SUB_BUCKETS) as u64;
        let lo = (SUB_BUCKETS as u64 + sub) << shift;
        (lo, lo.saturating_add(1u64 << shift))
    }
}

/// Representative (midpoint) value of bucket `index`; exact for the 32
/// linear buckets.
pub fn bucket_mid(index: usize) -> u64 {
    let (lo, hi) = bucket_bounds(index);
    lo + (hi - lo) / 2
}

fn quantile_rank(count: u64, pct: f64) -> u64 {
    let pct = pct.clamp(0.0, 100.0);
    ((pct / 100.0) * (count - 1) as f64).round() as u64
}

/// Compact summary of a histogram at one point in time: totals plus the
/// quantiles the metrics exposition reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of recorded values.
    pub count: u64,
    /// Saturating sum of recorded values (nanoseconds for time series).
    pub sum: u64,
    /// Exact maximum recorded value.
    pub max: u64,
    /// Median (bucket midpoint).
    pub p50: u64,
    /// 99th percentile (bucket midpoint).
    pub p99: u64,
    /// 99.9th percentile (bucket midpoint).
    pub p999: u64,
}

fn summarize(counts: &[u64], count: u64, sum: u64, max: u64) -> HistogramSummary {
    let q = |pct: f64| -> u64 {
        if count == 0 {
            return 0;
        }
        let rank = quantile_rank(count, pct);
        let mut cum = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            cum += c;
            if cum > rank {
                return bucket_mid(i).min(max);
            }
        }
        max
    };
    HistogramSummary {
        count,
        sum,
        max,
        p50: q(50.0),
        p99: q(99.0),
        p999: q(99.9),
    }
}

/// Single-writer log-bucketed histogram of durations, mergeable across
/// executor shards.  All values are stored as nanoseconds.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64]>,
    count: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0u64; BUCKET_COUNT].into_boxed_slice(),
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Record one value in nanoseconds.
    #[inline]
    pub fn record_ns(&mut self, ns: u64) {
        self.counts[bucket_index(ns)] += 1;
        self.count += 1;
        self.sum_ns += ns as u128;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Record one duration.
    #[inline]
    pub fn record(&mut self, d: Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Fold `other` into `self`.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Exact minimum recorded duration.
    pub fn min(&self) -> Option<Duration> {
        (self.count > 0).then(|| Duration::from_nanos(self.min_ns))
    }

    /// Exact maximum recorded duration.
    pub fn max(&self) -> Option<Duration> {
        (self.count > 0).then(|| Duration::from_nanos(self.max_ns))
    }

    /// Exact mean of all recorded durations.
    pub fn mean(&self) -> Option<Duration> {
        (self.count > 0).then(|| Duration::from_nanos((self.sum_ns / self.count as u128) as u64))
    }

    /// Nearest-rank percentile (`pct` clamped to 0‥100).  The endpoints are
    /// exact (`percentile(0)` = min, `percentile(100)` = max); interior
    /// quantiles report the holding bucket's midpoint, within 1.6 % relative
    /// error.
    pub fn percentile(&self, pct: f64) -> Option<Duration> {
        if self.count == 0 {
            return None;
        }
        let rank = quantile_rank(self.count, pct);
        if rank == 0 {
            return Some(Duration::from_nanos(self.min_ns));
        }
        if rank == self.count - 1 {
            return Some(Duration::from_nanos(self.max_ns));
        }
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum > rank {
                let mid = bucket_mid(i).clamp(self.min_ns, self.max_ns);
                return Some(Duration::from_nanos(mid));
            }
        }
        Some(Duration::from_nanos(self.max_ns))
    }

    /// Summary (totals + p50/p99/p99.9) of the current contents.
    pub fn summary(&self) -> HistogramSummary {
        summarize(
            &self.counts,
            self.count,
            self.sum_ns.min(u64::MAX as u128) as u64,
            if self.count == 0 { 0 } else { self.max_ns },
        )
    }
}

/// Multi-writer log-bucketed histogram: every update is a relaxed
/// `fetch_add` / `fetch_max` — no locks, no allocation, safe to hammer from
/// every executor concurrently.
#[derive(Debug)]
pub struct AtomicHistogram {
    counts: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        AtomicHistogram {
            counts: (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value (relaxed ordering throughout).
    #[inline]
    pub fn record(&self, v: u64) {
        self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time summary.  Concurrent writers may skew the totals by a
    /// handful of in-flight updates; quantiles are computed over one
    /// consistent pass of the bucket array.
    pub fn summary(&self) -> HistogramSummary {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let count: u64 = counts.iter().sum();
        summarize(
            &counts,
            count,
            self.sum.load(Ordering::Relaxed),
            self.max.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_roundtrips_through_bounds() {
        for v in [
            0u64,
            1,
            31,
            32,
            33,
            63,
            64,
            100,
            1_000,
            123_456,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            assert!(i < BUCKET_COUNT, "index {i} out of range for {v}");
            let (lo, hi) = bucket_bounds(i);
            // The very top bucket's upper bound saturates at u64::MAX, so
            // that bound is inclusive.
            assert!(
                lo <= v && (v < hi || hi == u64::MAX),
                "{v} not in [{lo},{hi})"
            );
        }
    }

    #[test]
    fn bucket_indices_are_monotone_and_dense_at_the_bottom() {
        for v in 0..32u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_mid(v as usize), v, "linear buckets are exact");
        }
        let mut last = 0;
        for v in (0..10_000u64).step_by(7) {
            let i = bucket_index(v);
            assert!(i >= last);
            last = i;
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [100u64, 999, 5_000, 77_777, 1_000_000, 123_456_789] {
            let mid = bucket_mid(bucket_index(v));
            let err = (mid as f64 - v as f64).abs() / v as f64;
            assert!(err <= 1.0 / 64.0 + 1e-9, "v={v} mid={mid} err={err}");
        }
    }

    #[test]
    fn percentiles_track_a_uniform_distribution() {
        let mut h = LatencyHistogram::new();
        for ms in 1..=1000u64 {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.percentile(0.0), Some(Duration::from_millis(1)));
        assert_eq!(h.percentile(100.0), Some(Duration::from_millis(1000)));
        assert_eq!(h.max(), Some(Duration::from_millis(1000)));
        let p50 = h.percentile(50.0).unwrap().as_secs_f64();
        assert!((p50 - 0.5).abs() / 0.5 < 0.02, "p50={p50}");
        let p99 = h.percentile(99.0).unwrap().as_secs_f64();
        assert!((p99 - 0.99).abs() / 0.99 < 0.02, "p99={p99}");
        let mean = h.mean().unwrap().as_secs_f64();
        assert!((mean - 0.5005).abs() < 1e-6, "mean is exact, got {mean}");
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for i in 0..500u64 {
            let ns = i * 997 + 13;
            if i % 2 == 0 {
                a.record_ns(ns);
            } else {
                b.record_ns(ns);
            }
            all.record_ns(ns);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        assert_eq!(a.mean(), all.mean());
        for pct in [1.0, 25.0, 50.0, 90.0, 99.0] {
            assert_eq!(a.percentile(pct), all.percentile(pct));
        }
    }

    #[test]
    fn empty_histogram_reports_none_and_zero_summary() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.summary(), HistogramSummary::default());
    }

    #[test]
    fn atomic_histogram_matches_single_writer() {
        let h = AtomicHistogram::new();
        let mut reference = LatencyHistogram::new();
        for i in 1..=2_000u64 {
            h.record(i * 31);
            reference.record_ns(i * 31);
        }
        let s = h.summary();
        let r = reference.summary();
        assert_eq!(s.count, r.count);
        assert_eq!(s.sum, r.sum);
        assert_eq!(s.max, r.max);
        assert_eq!(s.p50, r.p50);
        assert_eq!(s.p99, r.p99);
        assert_eq!(s.p999, r.p999);
    }

    #[test]
    fn atomic_histogram_is_safe_under_concurrency() {
        let h = std::sync::Arc::new(AtomicHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..1_000u64 {
                        h.record(t * 10_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4_000);
        assert_eq!(h.summary().count, 4_000);
    }
}
