//! The lock-free metrics hub.
//!
//! One [`MetricsHub`] is created per engine and shared (behind an `Arc`) by
//! every runtime layer.  All series are registered once as plain struct
//! fields — there is no name → slot map to hash into — and every hot-path
//! update is a relaxed atomic `fetch_add` / `store`: no locks, no
//! allocation, repolint-compatible.  When the hub is built from
//! [`crate::ObsConfig::disabled`], every recording method returns after one
//! predictable branch so the disabled engine measures the true cost of the
//! instrumentation (see `bench_snapshot`'s `observability` section).
//!
//! Series are grouped by runtime layer:
//!
//! | prefix                | layer                                       |
//! |-----------------------|---------------------------------------------|
//! | `tstream_ingest_*`    | batch formation and staging backpressure    |
//! | `tstream_exec_*`      | executor pool, restructuring, barriers      |
//! | `tstream_wal_*`       | durability: WAL, group commit, checkpoints  |
//! | `tstream_session_*`   | per-engine session gauges                   |
//! | `tstream_obs_*`       | the observability layer itself              |

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::hist::{AtomicHistogram, HistogramSummary};

/// A monotonically increasing counter (relaxed atomics).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge (relaxed atomics).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Increment (for population-style gauges such as open sessions).
    #[inline]
    pub fn rise(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrement, saturating at zero.
    #[inline]
    pub fn fall(&self) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The per-engine metrics hub.  All counters are cumulative over the
/// engine's lifetime (across sessions and runs).
#[derive(Debug, Default)]
pub struct MetricsHub {
    enabled: bool,

    // --- ingestion -----------------------------------------------------
    ingest_events: Counter,
    ingest_batches: Counter,
    ingest_replayed_batches: Counter,
    ingest_backpressure_waits: Counter,
    ingest_backpressure_wait_ns: Counter,

    // --- execution -----------------------------------------------------
    exec_batches: Counter,
    exec_fast_path_batches: Counter,
    exec_restructured_batches: Counter,
    exec_chains_built: Counter,
    exec_chains_recycled: Counter,
    exec_aborts_replayed: Counter,
    exec_serial_replays: Counter,
    exec_committed: Counter,
    exec_rejected: Counter,
    exec_barrier_waits: Counter,
    exec_barrier_wait_ns: AtomicHistogram,

    // --- durability ----------------------------------------------------
    wal_bytes: Counter,
    wal_windows: Counter,
    wal_fsyncs: Counter,
    wal_fsync_ns: Counter,
    wal_seals: Counter,
    wal_checkpoints: Counter,
    wal_truncated_segments: Counter,

    // --- replication ---------------------------------------------------
    replica_shipped_bytes: Counter,
    replica_divergence_total: Counter,
    replica_lag_epochs: Gauge,

    // --- sessions ------------------------------------------------------
    session_open: Gauge,
    session_staged_depth: Gauge,
    session_punctuation_interval: Gauge,
}

/// A point-in-time copy of every hub series, plus the flight-recorder and
/// post-mortem counters the owning [`crate::Obs`] fills in.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)] // field names mirror the series catalogue above
pub struct MetricsSnapshot {
    pub ingest_events: u64,
    pub ingest_batches: u64,
    pub ingest_replayed_batches: u64,
    pub ingest_backpressure_waits: u64,
    pub ingest_backpressure_wait_ns: u64,
    pub exec_batches: u64,
    pub exec_fast_path_batches: u64,
    pub exec_restructured_batches: u64,
    pub exec_chains_built: u64,
    pub exec_chains_recycled: u64,
    pub exec_aborts_replayed: u64,
    pub exec_serial_replays: u64,
    pub exec_committed: u64,
    pub exec_rejected: u64,
    pub exec_barrier_waits: u64,
    pub exec_barrier_wait: HistogramSummary,
    pub wal_bytes: u64,
    pub wal_windows: u64,
    pub wal_fsyncs: u64,
    pub wal_fsync_ns: u64,
    pub wal_seals: u64,
    pub wal_checkpoints: u64,
    pub wal_truncated_segments: u64,
    pub replica_shipped_bytes: u64,
    pub replica_divergence_total: u64,
    pub replica_lag_epochs: u64,
    pub session_open: u64,
    pub session_staged_depth: u64,
    pub session_punctuation_interval: u64,
    pub trace_events: u64,
    pub trace_dropped: u64,
    pub postmortems: u64,
}

impl MetricsHub {
    /// A hub recording every update.
    pub fn new(enabled: bool) -> Self {
        MetricsHub {
            enabled,
            ..MetricsHub::default()
        }
    }

    /// Whether recording methods do anything.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    // --- ingestion -----------------------------------------------------

    /// A punctuation batch completed formation: `events` events in, one
    /// batch formed, optionally tainted as a recovery replay.
    #[inline]
    pub fn batch_ingested(&self, events: u64, replayed: bool) {
        if !self.enabled {
            return;
        }
        self.ingest_events.add(events);
        self.ingest_batches.incr();
        if replayed {
            self.ingest_replayed_batches.incr();
        }
    }

    /// The ingestion thread blocked on a full staging queue.
    #[inline]
    pub fn backpressure_wait(&self, wait: Duration) {
        if !self.enabled {
            return;
        }
        self.ingest_backpressure_waits.incr();
        self.ingest_backpressure_wait_ns
            .add(wait.as_nanos().min(u64::MAX as u128) as u64);
    }

    // --- execution -----------------------------------------------------

    /// A batch entered execution (any scheme).
    #[inline]
    pub fn batch_executed(&self) {
        if self.enabled {
            self.exec_batches.incr();
        }
    }

    /// A conflict-free batch took the restructure-free fast path.
    #[inline]
    pub fn fast_path_batch(&self) {
        if self.enabled {
            self.exec_fast_path_batches.incr();
        }
    }

    /// A batch was decomposed into `chains` operation chains.
    #[inline]
    pub fn restructured_batch(&self, chains: u64) {
        if !self.enabled {
            return;
        }
        self.exec_restructured_batches.incr();
        self.exec_chains_built.add(chains);
    }

    /// `n` operation-chain arenas were recycled back into their pools.
    #[inline]
    pub fn chains_recycled(&self, n: u64) {
        if self.enabled {
            self.exec_chains_recycled.add(n);
        }
    }

    /// A serial replay round resolved `aborted` aborted transactions.
    #[inline]
    pub fn aborts_replayed(&self, aborted: u64) {
        if !self.enabled {
            return;
        }
        self.exec_serial_replays.incr();
        self.exec_aborts_replayed.add(aborted);
    }

    /// A batch published its results: per-batch committed/rejected deltas.
    #[inline]
    pub fn batch_published(&self, committed: u64, rejected: u64) {
        if !self.enabled {
            return;
        }
        self.exec_committed.add(committed);
        self.exec_rejected.add(rejected);
    }

    /// One executor finished one barrier round after waiting `wait`.
    #[inline]
    pub fn barrier_wait(&self, wait: Duration) {
        if !self.enabled {
            return;
        }
        self.exec_barrier_waits.incr();
        self.exec_barrier_wait_ns
            .record(wait.as_nanos().min(u64::MAX as u128) as u64);
    }

    // --- durability ----------------------------------------------------

    /// Fold a delta of WAL activity (drained from the durable log at batch
    /// boundaries) into the durability series.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn wal_activity(
        &self,
        bytes: u64,
        windows: u64,
        fsyncs: u64,
        fsync_ns: u64,
        seals: u64,
        truncated_segments: u64,
    ) {
        if !self.enabled {
            return;
        }
        self.wal_bytes.add(bytes);
        self.wal_windows.add(windows);
        self.wal_fsyncs.add(fsyncs);
        self.wal_fsync_ns.add(fsync_ns);
        self.wal_seals.add(seals);
        self.wal_truncated_segments.add(truncated_segments);
    }

    /// A checkpoint completed.
    #[inline]
    pub fn checkpoint(&self) {
        if self.enabled {
            self.wal_checkpoints.incr();
        }
    }

    // --- replication ---------------------------------------------------

    /// `bytes` of replication payload (segments, checkpoints, metadata)
    /// were handed to the ship transport.
    #[inline]
    pub fn replica_shipped(&self, bytes: u64) {
        if self.enabled {
            self.replica_shipped_bytes.add(bytes);
        }
    }

    /// Current replication lag in epochs (primary's newest executed epoch
    /// minus the newest standby-acked epoch).
    #[inline]
    pub fn replica_lag(&self, epochs: u64) {
        if self.enabled {
            self.replica_lag_epochs.set(epochs);
        }
    }

    /// A state-root divergence between primary and standby was detected.
    #[inline]
    pub fn replica_divergence(&self) {
        if self.enabled {
            self.replica_divergence_total.incr();
        }
    }

    // --- sessions ------------------------------------------------------

    /// A session opened.
    #[inline]
    pub fn session_opened(&self) {
        if self.enabled {
            self.session_open.rise();
        }
    }

    /// A session closed.
    #[inline]
    pub fn session_closed(&self) {
        if self.enabled {
            self.session_open.fall();
        }
    }

    /// Batches staged but not yet retired for the most recently observed
    /// session (a depth gauge, sampled at dispatch time).
    #[inline]
    pub fn staged_depth(&self, depth: u64) {
        if self.enabled {
            self.session_staged_depth.set(depth);
        }
    }

    /// Current punctuation interval (events per batch; follows adaptive
    /// retuning).
    #[inline]
    pub fn punctuation_interval(&self, interval: u64) {
        if self.enabled {
            self.session_punctuation_interval.set(interval);
        }
    }

    // --- exposition ----------------------------------------------------

    /// Copy every series.  The flight-recorder / post-mortem fields are
    /// zero here; [`crate::Obs::metrics_snapshot`] fills them in.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            ingest_events: self.ingest_events.get(),
            ingest_batches: self.ingest_batches.get(),
            ingest_replayed_batches: self.ingest_replayed_batches.get(),
            ingest_backpressure_waits: self.ingest_backpressure_waits.get(),
            ingest_backpressure_wait_ns: self.ingest_backpressure_wait_ns.get(),
            exec_batches: self.exec_batches.get(),
            exec_fast_path_batches: self.exec_fast_path_batches.get(),
            exec_restructured_batches: self.exec_restructured_batches.get(),
            exec_chains_built: self.exec_chains_built.get(),
            exec_chains_recycled: self.exec_chains_recycled.get(),
            exec_aborts_replayed: self.exec_aborts_replayed.get(),
            exec_serial_replays: self.exec_serial_replays.get(),
            exec_committed: self.exec_committed.get(),
            exec_rejected: self.exec_rejected.get(),
            exec_barrier_waits: self.exec_barrier_waits.get(),
            exec_barrier_wait: self.exec_barrier_wait_ns.summary(),
            wal_bytes: self.wal_bytes.get(),
            wal_windows: self.wal_windows.get(),
            wal_fsyncs: self.wal_fsyncs.get(),
            wal_fsync_ns: self.wal_fsync_ns.get(),
            wal_seals: self.wal_seals.get(),
            wal_checkpoints: self.wal_checkpoints.get(),
            wal_truncated_segments: self.wal_truncated_segments.get(),
            replica_shipped_bytes: self.replica_shipped_bytes.get(),
            replica_divergence_total: self.replica_divergence_total.get(),
            replica_lag_epochs: self.replica_lag_epochs.get(),
            session_open: self.session_open.get(),
            session_staged_depth: self.session_staged_depth.get(),
            session_punctuation_interval: self.session_punctuation_interval.get(),
            trace_events: 0,
            trace_dropped: 0,
            postmortems: 0,
        }
    }
}

impl MetricsSnapshot {
    /// Render in Prometheus text exposition format.
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::with_capacity(2048);
        let mut counter = |name: &str, help: &str, v: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        };
        counter(
            "tstream_ingest_events_total",
            "Events accepted by batch formation",
            self.ingest_events,
        );
        counter(
            "tstream_ingest_batches_total",
            "Punctuation batches formed",
            self.ingest_batches,
        );
        counter(
            "tstream_ingest_replayed_batches_total",
            "Batches tainted as recovery replays",
            self.ingest_replayed_batches,
        );
        counter(
            "tstream_ingest_backpressure_waits_total",
            "Times ingestion blocked on a full staging queue",
            self.ingest_backpressure_waits,
        );
        counter(
            "tstream_ingest_backpressure_wait_ns_total",
            "Nanoseconds ingestion spent blocked on staging backpressure",
            self.ingest_backpressure_wait_ns,
        );
        counter(
            "tstream_exec_batches_total",
            "Batches executed (all schemes)",
            self.exec_batches,
        );
        counter(
            "tstream_exec_fast_path_batches_total",
            "Conflict-free batches executed without restructuring",
            self.exec_fast_path_batches,
        );
        counter(
            "tstream_exec_restructured_batches_total",
            "Batches decomposed into operation chains",
            self.exec_restructured_batches,
        );
        counter(
            "tstream_exec_chains_built_total",
            "Operation chains built by restructuring",
            self.exec_chains_built,
        );
        counter(
            "tstream_exec_chains_recycled_total",
            "Operation-chain arenas recycled into pools",
            self.exec_chains_recycled,
        );
        counter(
            "tstream_exec_aborts_replayed_total",
            "Aborted transactions resolved by serial replay",
            self.exec_aborts_replayed,
        );
        counter(
            "tstream_exec_serial_replays_total",
            "Serial replay rounds run by the leader",
            self.exec_serial_replays,
        );
        counter(
            "tstream_exec_committed_total",
            "Transactions committed",
            self.exec_committed,
        );
        counter(
            "tstream_exec_rejected_total",
            "Transactions rejected by application logic",
            self.exec_rejected,
        );
        counter(
            "tstream_exec_barrier_waits_total",
            "Barrier rounds completed across all executors",
            self.exec_barrier_waits,
        );
        counter(
            "tstream_wal_bytes_total",
            "Bytes appended to the write-ahead log",
            self.wal_bytes,
        );
        counter(
            "tstream_wal_windows_total",
            "Group-commit windows flushed",
            self.wal_windows,
        );
        counter(
            "tstream_wal_fsyncs_total",
            "fsync calls issued by the WAL",
            self.wal_fsyncs,
        );
        counter(
            "tstream_wal_fsync_ns_total",
            "Nanoseconds spent in WAL fsync",
            self.wal_fsync_ns,
        );
        counter(
            "tstream_wal_seals_total",
            "WAL segments sealed at punctuation boundaries",
            self.wal_seals,
        );
        counter(
            "tstream_wal_checkpoints_total",
            "Checkpoints written",
            self.wal_checkpoints,
        );
        counter(
            "tstream_wal_truncated_segments_total",
            "Sealed WAL segments truncated after checkpoints",
            self.wal_truncated_segments,
        );
        counter(
            "tstream_replica_shipped_bytes",
            "Replication payload bytes handed to the ship transport",
            self.replica_shipped_bytes,
        );
        counter(
            "tstream_replica_divergence_total",
            "State-root divergences detected between primary and standby",
            self.replica_divergence_total,
        );
        counter(
            "tstream_obs_trace_events_total",
            "Flight-recorder events recorded",
            self.trace_events,
        );
        counter(
            "tstream_obs_trace_dropped_total",
            "Flight-recorder events overwritten before draining",
            self.trace_dropped,
        );
        counter(
            "tstream_obs_postmortems_total",
            "Post-mortem dumps emitted",
            self.postmortems,
        );
        let mut gauge = |name: &str, help: &str, v: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {v}");
        };
        gauge(
            "tstream_replica_lag_epochs",
            "Epochs the standby trails the primary by",
            self.replica_lag_epochs,
        );
        gauge(
            "tstream_session_open",
            "Sessions currently open on the engine",
            self.session_open,
        );
        gauge(
            "tstream_session_staged_depth",
            "Batches staged but not yet retired (last sampled session)",
            self.session_staged_depth,
        );
        gauge(
            "tstream_session_punctuation_interval",
            "Current punctuation interval in events",
            self.session_punctuation_interval,
        );
        let h = &self.exec_barrier_wait;
        let name = "tstream_exec_barrier_wait_ns";
        let _ = writeln!(out, "# HELP {name} Barrier wait time per executor round");
        let _ = writeln!(out, "# TYPE {name} summary");
        let _ = writeln!(out, "{name}{{quantile=\"0.5\"}} {}", h.p50);
        let _ = writeln!(out, "{name}{{quantile=\"0.99\"}} {}", h.p99);
        let _ = writeln!(out, "{name}{{quantile=\"0.999\"}} {}", h.p999);
        let _ = writeln!(out, "{name}_sum {}", h.sum);
        let _ = writeln!(out, "{name}_count {}", h.count);
        out
    }

    /// Render as a flat JSON object (hand-rolled; no serde in the tree).
    pub fn to_json(&self) -> String {
        let h = &self.exec_barrier_wait;
        format!(
            concat!(
                "{{\"ingest_events\":{},\"ingest_batches\":{},",
                "\"ingest_replayed_batches\":{},\"ingest_backpressure_waits\":{},",
                "\"ingest_backpressure_wait_ns\":{},\"exec_batches\":{},",
                "\"exec_fast_path_batches\":{},\"exec_restructured_batches\":{},",
                "\"exec_chains_built\":{},\"exec_chains_recycled\":{},",
                "\"exec_aborts_replayed\":{},\"exec_serial_replays\":{},",
                "\"exec_committed\":{},\"exec_rejected\":{},",
                "\"exec_barrier_waits\":{},\"exec_barrier_wait_ns\":{{",
                "\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p99\":{},\"p999\":{}}},",
                "\"wal_bytes\":{},\"wal_windows\":{},\"wal_fsyncs\":{},",
                "\"wal_fsync_ns\":{},\"wal_seals\":{},\"wal_checkpoints\":{},",
                "\"wal_truncated_segments\":{},\"replica_shipped_bytes\":{},",
                "\"replica_divergence_total\":{},\"replica_lag_epochs\":{},",
                "\"session_open\":{},",
                "\"session_staged_depth\":{},\"session_punctuation_interval\":{},",
                "\"trace_events\":{},\"trace_dropped\":{},\"postmortems\":{}}}",
            ),
            self.ingest_events,
            self.ingest_batches,
            self.ingest_replayed_batches,
            self.ingest_backpressure_waits,
            self.ingest_backpressure_wait_ns,
            self.exec_batches,
            self.exec_fast_path_batches,
            self.exec_restructured_batches,
            self.exec_chains_built,
            self.exec_chains_recycled,
            self.exec_aborts_replayed,
            self.exec_serial_replays,
            self.exec_committed,
            self.exec_rejected,
            self.exec_barrier_waits,
            h.count,
            h.sum,
            h.max,
            h.p50,
            h.p99,
            h.p999,
            self.wal_bytes,
            self.wal_windows,
            self.wal_fsyncs,
            self.wal_fsync_ns,
            self.wal_seals,
            self.wal_checkpoints,
            self.wal_truncated_segments,
            self.replica_shipped_bytes,
            self.replica_divergence_total,
            self.replica_lag_epochs,
            self.session_open,
            self.session_staged_depth,
            self.session_punctuation_interval,
            self.trace_events,
            self.trace_dropped,
            self.postmortems,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let hub = MetricsHub::new(true);
        hub.batch_ingested(64, false);
        hub.batch_ingested(64, true);
        hub.batch_executed();
        hub.fast_path_batch();
        hub.restructured_batch(7);
        hub.chains_recycled(7);
        hub.aborts_replayed(3);
        hub.batch_published(120, 8);
        hub.barrier_wait(Duration::from_micros(5));
        hub.wal_activity(1024, 2, 1, 500, 1, 0);
        hub.checkpoint();
        hub.replica_shipped(2048);
        hub.replica_shipped(100);
        hub.replica_lag(3);
        hub.replica_divergence();
        hub.session_opened();
        hub.staged_depth(4);
        hub.punctuation_interval(64);
        let s = hub.snapshot();
        assert_eq!(s.ingest_events, 128);
        assert_eq!(s.ingest_batches, 2);
        assert_eq!(s.ingest_replayed_batches, 1);
        assert_eq!(s.exec_fast_path_batches, 1);
        assert_eq!(s.exec_chains_built, 7);
        assert_eq!(s.exec_aborts_replayed, 3);
        assert_eq!(s.exec_committed, 120);
        assert_eq!(s.exec_barrier_waits, 1);
        assert_eq!(s.exec_barrier_wait.count, 1);
        assert_eq!(s.wal_bytes, 1024);
        assert_eq!(s.wal_checkpoints, 1);
        assert_eq!(s.replica_shipped_bytes, 2148);
        assert_eq!(s.replica_lag_epochs, 3);
        assert_eq!(s.replica_divergence_total, 1);
        assert_eq!(s.session_open, 1);
        assert_eq!(s.session_staged_depth, 4);
        hub.session_closed();
        assert_eq!(hub.snapshot().session_open, 0);
        hub.session_closed();
        assert_eq!(hub.snapshot().session_open, 0, "gauge saturates at zero");
    }

    #[test]
    fn disabled_hub_records_nothing() {
        let hub = MetricsHub::new(false);
        hub.batch_ingested(64, false);
        hub.batch_executed();
        hub.barrier_wait(Duration::from_micros(5));
        hub.wal_activity(1024, 2, 1, 500, 1, 0);
        hub.replica_shipped(2048);
        hub.replica_lag(3);
        hub.replica_divergence();
        hub.session_opened();
        assert_eq!(hub.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn prometheus_text_has_all_series() {
        let hub = MetricsHub::new(true);
        hub.batch_ingested(10, false);
        let text = hub.snapshot().to_prometheus_text();
        let names: std::collections::BTreeSet<&str> = text
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
            .filter_map(|l| l.split([' ', '{']).next())
            .collect();
        assert!(
            names.len() >= 20,
            "expected at least 20 distinct series, got {}: {names:?}",
            names.len()
        );
        assert!(text.contains("tstream_ingest_events_total 10"));
        assert!(text.contains("# TYPE tstream_session_open gauge"));
        assert!(text.contains("tstream_replica_shipped_bytes 0"));
        assert!(text.contains("tstream_replica_divergence_total 0"));
        assert!(text.contains("# TYPE tstream_replica_lag_epochs gauge"));
        assert!(text.contains("# TYPE tstream_exec_barrier_wait_ns summary"));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let hub = MetricsHub::new(true);
        hub.batch_ingested(5, false);
        let json = hub.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"ingest_events\":5"));
        assert!(json.contains("\"exec_barrier_wait_ns\":{"));
        assert!(json.contains("\"replica_shipped_bytes\":0"));
        assert!(json.contains("\"replica_lag_epochs\":0"));
        assert!(json.contains("\"replica_divergence_total\":0"));
    }
}
