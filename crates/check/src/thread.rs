//! Shimmed threading for model code: spawn and join model threads that run
//! under the controlled scheduler.

use std::sync::{Arc, Mutex};

use crate::sched::{thread_main, with_ctx, Controller};

/// Spawns a new model thread running `f` under the current model's
/// scheduler.
///
/// The thread becomes runnable immediately but only executes when the
/// scheduler hands it the token; spawning itself is not a yield point (a
/// fresh thread's first action is ordered by the spawner's next visible
/// operation, exactly as with real threads whose start is unobservable).
///
/// # Panics
///
/// Panics outside [`crate::Model::check`].
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    with_ctx(|c| {
        let ctrl = Arc::clone(&c.ctrl);
        let id = ctrl.register_thread();
        let result: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
        let slot = Arc::clone(&result);
        let c2 = Arc::clone(&ctrl);
        let os = std::thread::Builder::new()
            .name(format!("check-{id}"))
            .spawn(move || {
                thread_main(c2, id, move || {
                    let value = f();
                    *slot.lock().unwrap_or_else(|p| p.into_inner()) = Some(value);
                })
            })
            .expect("spawning a model thread");
        ctrl.track_os_handle(os);
        JoinHandle { ctrl, id, result }
    })
}

/// Explicit yield point: lets the scheduler preempt here even though no
/// shared operation happens.  Useful to model busy-wait loops.
pub fn yield_now() {
    with_ctx(|c| c.ctrl.yield_point(c.id));
}

/// Handle to a spawned model thread.
pub struct JoinHandle<T> {
    ctrl: Arc<Controller>,
    id: usize,
    result: Arc<Mutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    /// Blocks until the thread finishes and returns its result.
    ///
    /// A panic in the target thread is a model violation recorded by the
    /// scheduler; this run is then torn down, so `join` never observes it.
    pub fn join(self) -> T {
        with_ctx(|c| self.ctrl.join_thread(c.id, self.id));
        self.result
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .take()
            .expect("joined thread finished without a result")
    }

    /// The model-thread id (0 is the root closure), for labeling.
    pub fn id(&self) -> usize {
        self.id
    }
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinHandle").field("id", &self.id).finish()
    }
}
