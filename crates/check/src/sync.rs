//! Shimmed synchronization primitives for model code.
//!
//! API-compatible with the vendored `parking_lot` subset the runtime uses
//! (`lock()` returns the guard, `Condvar::wait` takes `&mut MutexGuard`), so
//! protocol models read like the production code they model.  Every
//! operation is a yield point of the controlled scheduler; the primitives
//! only work inside [`crate::Model::check`].

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

use crate::sched::with_ctx;

/// A model mutex.  Exclusion is enforced by the controlled scheduler; the
/// inner `std` mutex only carries the data and is never contended.
pub struct Mutex<T> {
    id: usize,
    data: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex registered with the current model run.
    ///
    /// # Panics
    ///
    /// Panics outside [`crate::Model::check`].
    pub fn new(value: T) -> Self {
        Mutex {
            id: with_ctx(|c| c.ctrl.register_mutex()),
            data: sync::Mutex::new(value),
        }
    }

    /// Acquires the mutex (a scheduler yield point; blocks while held).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        with_ctx(|c| c.ctrl.acquire_mutex(c.id, self.id));
        MutexGuard {
            owner: self,
            raw: Some(take_data_lock(&self.data)),
        }
    }
}

/// Takes the never-contended inner data lock.  `Poisoned` is expected when
/// a model-level panic (e.g. a modeled barrier poison the scenario catches
/// with `catch_unwind`) unwound through an earlier guard; only `WouldBlock`
/// would mean the scheduler admitted two holders, which is a checker bug.
fn take_data_lock<T>(data: &sync::Mutex<T>) -> sync::MutexGuard<'_, T> {
    match data.try_lock() {
        Ok(guard) => guard,
        Err(sync::TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
        Err(sync::TryLockError::WouldBlock) => {
            panic!("scheduler admitted two holders to one mutex")
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").field("id", &self.id).finish()
    }
}

/// Guard returned by [`Mutex::lock`].  Holds an `Option` internally so
/// [`Condvar::wait`] can release and re-take the underlying data lock.
pub struct MutexGuard<'a, T> {
    owner: &'a Mutex<T>,
    raw: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.raw.as_deref().expect("guard taken during wait")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.raw.as_deref_mut().expect("guard taken during wait")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the data lock before the scheduler-level release so the
        // next holder's `try_lock` cannot race it.
        self.raw = None;
        with_ctx(|c| c.ctrl.release_mutex(c.id, self.owner.id));
    }
}

/// A model condition variable with `parking_lot`-shaped `wait`.
pub struct Condvar {
    id: usize,
}

impl Condvar {
    /// Creates a condvar registered with the current model run.
    ///
    /// # Panics
    ///
    /// Panics outside [`crate::Model::check`].
    pub fn new() -> Self {
        Condvar {
            id: with_ctx(|c| c.ctrl.register_condvar()),
        }
    }

    /// Releases the guard's mutex and blocks until notified, then
    /// reacquires.  A yield point; the release-and-sleep is atomic with
    /// respect to the modeled schedule, exactly like the real primitive.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let raw = guard.raw.take().expect("guard taken during wait");
        drop(raw);
        with_ctx(|c| c.ctrl.condvar_wait(c.id, self.id, guard.owner.id));
        guard.raw = Some(take_data_lock(&guard.owner.data));
    }

    /// Wakes every current waiter (a yield point).  Notifications are not
    /// queued: with no waiter this is a no-op, so lost-wakeup bugs in the
    /// modeled protocol are faithfully reproduced.
    pub fn notify_all(&self) {
        with_ctx(|c| c.ctrl.notify_all(c.id, self.id));
    }

    /// Wakes one waiter (a yield point).  Which waiter wakes is a scheduling
    /// decision, so exploration covers every wake order.
    pub fn notify_one(&self) {
        with_ctx(|c| c.ctrl.notify_one(c.id, self.id));
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

/// Shimmed atomics: every access is a yield point with sequentially
/// consistent semantics (the ordering argument is accepted for signature
/// compatibility but the model always explores SeqCst interleavings).
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use crate::sched::with_ctx;

    fn yield_point() {
        with_ctx(|c| c.ctrl.yield_point(c.id));
    }

    macro_rules! model_atomic {
        ($(#[$doc:meta])* $name:ident, $std:ident, $ty:ty) => {
            $(#[$doc])*
            #[derive(Debug, Default)]
            pub struct $name {
                inner: std::sync::atomic::$std,
            }

            impl $name {
                /// Creates the atomic (not itself a yield point).
                pub const fn new(value: $ty) -> Self {
                    $name {
                        inner: std::sync::atomic::$std::new(value),
                    }
                }

                /// Loads the value (yield point).
                pub fn load(&self, _order: Ordering) -> $ty {
                    yield_point();
                    self.inner.load(Ordering::SeqCst)
                }

                /// Stores a value (yield point).
                pub fn store(&self, value: $ty, _order: Ordering) {
                    yield_point();
                    self.inner.store(value, Ordering::SeqCst)
                }

                /// Swaps the value (yield point).
                pub fn swap(&self, value: $ty, _order: Ordering) -> $ty {
                    yield_point();
                    self.inner.swap(value, Ordering::SeqCst)
                }

                /// Compare-and-exchange (yield point).
                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$ty, $ty> {
                    yield_point();
                    self.inner
                        .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                }
            }
        };
    }

    model_atomic!(
        /// Model counterpart of [`std::sync::atomic::AtomicUsize`].
        AtomicUsize,
        AtomicUsize,
        usize
    );
    model_atomic!(
        /// Model counterpart of [`std::sync::atomic::AtomicU64`].
        AtomicU64,
        AtomicU64,
        u64
    );
    model_atomic!(
        /// Model counterpart of [`std::sync::atomic::AtomicBool`].
        AtomicBool,
        AtomicBool,
        bool
    );

    macro_rules! model_fetch_ops {
        ($name:ident, $ty:ty) => {
            impl $name {
                /// Adds to the value, returning the previous one (yield point).
                pub fn fetch_add(&self, value: $ty, _order: Ordering) -> $ty {
                    yield_point();
                    self.inner.fetch_add(value, Ordering::SeqCst)
                }

                /// Subtracts from the value, returning the previous one
                /// (yield point).
                pub fn fetch_sub(&self, value: $ty, _order: Ordering) -> $ty {
                    yield_point();
                    self.inner.fetch_sub(value, Ordering::SeqCst)
                }
            }
        };
    }

    model_fetch_ops!(AtomicUsize, usize);
    model_fetch_ops!(AtomicU64, u64);
}
