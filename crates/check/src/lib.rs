//! A loom-lite deterministic model checker for TStream's sync protocols.
//!
//! The runtime stacks three hand-written concurrency protocols on top of the
//! paper's conflict-equivalence argument: the reusable [`CyclicBarrier`] with
//! generation reuse and poison, the zero-thread session-multiplexing injector
//! hand-off in `ExecutorPool`, and the WAL writer's seal-failure poison +
//! checkpoint-after-seal ordering.  Their safety arguments used to live only
//! in comments and differential tests that observe *one* OS schedule per run.
//! This crate checks them **exhaustively**: protocol models written against
//! the [`sync`] / [`thread`] shims run under a controlled scheduler that
//! enumerates every thread interleaving up to a preemption bound (the
//! CHESS/loom technique), detects deadlocks and assertion failures, and
//! prints a compact *schedule seed* that replays any failing interleaving
//! deterministically.
//!
//! [`CyclicBarrier`]: https://docs.rs/tstream-stream
//!
//! # How it works
//!
//! * [`Model::check`] runs the model closure repeatedly, once per schedule.
//!   Every operation on a [`sync::Mutex`], [`sync::Condvar`] or
//!   [`sync::atomic`] type is a *yield point* where the scheduler decides
//!   which thread runs next; only one model thread executes at a time, so a
//!   schedule fully determines the execution.
//! * Schedules are explored depth-first.  A context switch away from a
//!   thread that could have continued counts as a *preemption*; bounding
//!   preemptions (default 2) keeps the state space small while still finding
//!   the overwhelming majority of real concurrency bugs, per the CHESS
//!   empirical results.
//! * A panic in any model thread, or a state where some thread is blocked
//!   and no thread can run (deadlock — including lost condvar wakeups), is a
//!   **violation**.  [`Model::check`] panics with the violation and its
//!   seed; [`Model::try_check`] returns it for self-tests that *expect* a
//!   buggy protocol to fail.
//! * [`Model::replay`] (or the `TSTREAM_CHECK_SEED` environment variable)
//!   re-executes one printed seed, for debugging a failure under a debugger
//!   or with added tracing.
//!
//! # Example
//!
//! ```
//! use tstream_check::{sync::Mutex, thread, Model};
//! use std::sync::Arc;
//!
//! let report = Model::default().check(|| {
//!     let counter = Arc::new(Mutex::new(0u32));
//!     let c2 = Arc::clone(&counter);
//!     let t = thread::spawn(move || *c2.lock() += 1);
//!     *counter.lock() += 1;
//!     t.join();
//!     assert_eq!(*counter.lock(), 2);
//! });
//! assert!(report.complete, "every interleaving explored");
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod explore;
pub mod models;
mod sched;
pub mod sync;
pub mod thread;

pub use explore::{Model, Report, Violation};
