//! The controlled scheduler: one model thread runs at a time, every visible
//! operation is a yield point, and every scheduling decision is recorded so a
//! schedule can be replayed byte-for-byte from its seed.
//!
//! Model threads are real OS threads, but the controller's token (`current`)
//! ensures exactly one executes between yield points — a schedule (the
//! sequence of branch-point choices) therefore fully determines the
//! execution, which is what makes depth-first exploration and seed replay
//! possible.

use std::panic;
use std::sync::{Condvar, Mutex, MutexGuard};

/// Panic payload used to unwind model threads when a run is torn down after
/// a violation.  Never treated as a model failure.
pub(crate) struct AbortRun;

/// Scheduling status of one model thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Can be scheduled.
    Runnable,
    /// Waiting to acquire the mutex with this object id.
    BlockedMutex(usize),
    /// Waiting for a notification on the condvar with this object id.
    BlockedCondvar(usize),
    /// Waiting for the thread with this id to finish.
    BlockedJoin(usize),
    /// Ran to completion (or unwound during teardown).
    Finished,
}

/// Everything the scheduler knows about the current run.
struct State {
    threads: Vec<Status>,
    /// Thread holding the execution token.
    current: usize,
    /// Whether each registered mutex is currently held.
    mutexes: Vec<bool>,
    /// Number of registered condvars (they carry no state beyond their id).
    condvars: usize,
    /// Prescribed branch-point choices (the schedule prefix being explored
    /// or replayed); decisions beyond the prefix default to choice 0.
    prefix: Vec<u8>,
    /// `(chosen, alternatives)` for every branch point reached this run.
    path: Vec<(u8, u8)>,
    /// Remaining preemption budget (CHESS-style bound).
    preemptions_left: usize,
    /// First failure observed (assertion panic or deadlock).
    failure: Option<String>,
    /// Set after a failure: every thread unwinds at its next yield point.
    abort: bool,
    /// Registered threads that have not finished yet.
    live: usize,
}

/// The per-run scheduler shared by every model thread of one execution.
pub(crate) struct Controller {
    state: Mutex<State>,
    /// Signalled on every scheduling change; threads wait here for the token.
    turn: Condvar,
    /// Signalled when the last live thread finishes.
    done: Condvar,
    /// OS handles of spawned model threads, joined by the run driver.
    os_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// Result of driving one schedule to completion.
pub(crate) struct RunOutcome {
    /// Branch-point decisions taken, for backtracking and seed printing.
    pub path: Vec<(u8, u8)>,
    /// The violation message, if the schedule failed.
    pub failure: Option<String>,
}

impl Controller {
    pub(crate) fn new(prefix: Vec<u8>, preemption_bound: usize) -> Self {
        Controller {
            state: Mutex::new(State {
                threads: Vec::new(),
                current: 0,
                mutexes: Vec::new(),
                condvars: 0,
                prefix,
                path: Vec::new(),
                preemptions_left: preemption_bound,
                failure: None,
                abort: false,
                live: 0,
            }),
            turn: Condvar::new(),
            done: Condvar::new(),
            os_handles: Mutex::new(Vec::new()),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Register a new model thread (Runnable, scheduled later); returns its id.
    pub(crate) fn register_thread(&self) -> usize {
        let mut st = self.lock();
        let id = st.threads.len();
        assert!(id < 64, "model uses more than 64 threads");
        st.threads.push(Status::Runnable);
        st.live += 1;
        id
    }

    /// Register a mutex object; returns its id.
    pub(crate) fn register_mutex(&self) -> usize {
        let mut st = self.lock();
        let id = st.mutexes.len();
        st.mutexes.push(false);
        id
    }

    /// Register a condvar object; returns its id.
    pub(crate) fn register_condvar(&self) -> usize {
        let mut st = self.lock();
        let id = st.condvars;
        st.condvars += 1;
        id
    }

    pub(crate) fn track_os_handle(&self, handle: std::thread::JoinHandle<()>) {
        self.os_handles
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(handle);
    }

    /// Record (or follow) a branch point with `n` alternatives.
    fn choose(st: &mut State, n: u8) -> u8 {
        debug_assert!(n > 1, "single-candidate points are not branch points");
        let pos = st.path.len();
        let c = if pos < st.prefix.len() {
            let c = st.prefix[pos];
            assert!(
                c < n,
                "schedule prefix chose alternative {c} of {n} at branch point \
                 {pos}: the model is nondeterministic outside its sync shims"
            );
            c
        } else {
            0
        };
        st.path.push((c, n));
        c
    }

    /// Pick the next thread to run.  `preemptive` means `from` could have
    /// continued (so switching away spends preemption budget); a forced
    /// switch (the caller blocked or finished) costs nothing.  Detects
    /// deadlock when nothing can run but live threads remain.
    fn switch(&self, st: &mut State, from: usize, preemptive: bool) {
        if st.abort {
            return;
        }
        let enabled: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, Status::Runnable))
            .map(|(i, _)| i)
            .collect();
        if enabled.is_empty() {
            if st.live > 0 {
                let msg = Self::describe_deadlock(st);
                st.failure.get_or_insert(msg);
                st.abort = true;
                self.turn.notify_all();
            }
            return;
        }
        let candidates: Vec<usize> = if preemptive {
            debug_assert!(enabled.contains(&from));
            if st.preemptions_left == 0 {
                vec![from]
            } else {
                // `from` first: the zero-choice default schedule runs each
                // thread as far as it can go, minimizing context switches.
                std::iter::once(from)
                    .chain(enabled.iter().copied().filter(|&t| t != from))
                    .collect()
            }
        } else {
            enabled
        };
        let next = if candidates.len() == 1 {
            candidates[0]
        } else {
            candidates[Self::choose(st, candidates.len() as u8) as usize]
        };
        if preemptive && next != from {
            st.preemptions_left -= 1;
        }
        st.current = next;
        self.turn.notify_all();
    }

    fn describe_deadlock(st: &State) -> String {
        let mut parts = Vec::new();
        for (i, s) in st.threads.iter().enumerate() {
            match s {
                Status::Runnable => parts.push(format!("thread {i} runnable")),
                Status::BlockedMutex(m) => {
                    parts.push(format!("thread {i} blocked acquiring mutex #{m}"))
                }
                Status::BlockedCondvar(c) => {
                    parts.push(format!("thread {i} blocked waiting on condvar #{c}"))
                }
                Status::BlockedJoin(t) => {
                    parts.push(format!("thread {i} blocked joining thread {t}"))
                }
                Status::Finished => {}
            }
        }
        format!(
            "deadlock: no thread can make progress ({})",
            parts.join(", ")
        )
    }

    /// Block until this thread holds the token and is runnable.  Unwinds
    /// with [`AbortRun`] if the run is being torn down.
    fn wait_my_turn<'a>(
        &'a self,
        mut st: MutexGuard<'a, State>,
        t: usize,
    ) -> MutexGuard<'a, State> {
        loop {
            if st.abort {
                drop(st);
                panic::panic_any(AbortRun);
            }
            if st.current == t && st.threads[t] == Status::Runnable {
                return st;
            }
            st = self.turn.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// The yield point placed before every visible operation: offer the
    /// scheduler a chance to preempt this thread.
    pub(crate) fn yield_point(&self, t: usize) {
        let mut st = self.lock();
        if st.abort {
            drop(st);
            panic::panic_any(AbortRun);
        }
        self.switch(&mut st, t, true);
        let _st = self.wait_my_turn(st, t);
    }

    /// First scheduling of a thread: wait for the token without yielding.
    pub(crate) fn first_turn(&self, t: usize) {
        let st = self.lock();
        let _st = self.wait_my_turn(st, t);
    }

    /// Acquire mutex `m` (yield point; blocks while held).
    pub(crate) fn acquire_mutex(&self, t: usize, m: usize) {
        self.yield_point(t);
        let mut st = self.lock();
        loop {
            if !st.mutexes[m] {
                st.mutexes[m] = true;
                return;
            }
            st.threads[t] = Status::BlockedMutex(m);
            self.switch(&mut st, t, false);
            st = self.wait_my_turn(st, t);
        }
    }

    /// Release mutex `m`, making contenders runnable.  Never a yield point
    /// and never panics: it runs from guard `Drop` (possibly during unwind).
    pub(crate) fn release_mutex(&self, _t: usize, m: usize) {
        let mut st = self.lock();
        st.mutexes[m] = false;
        for s in st.threads.iter_mut() {
            if *s == Status::BlockedMutex(m) {
                *s = Status::Runnable;
            }
        }
        self.turn.notify_all();
    }

    /// Atomically release mutex `m` and wait on condvar `cv`, then reacquire
    /// `m` once notified.  The scheduler-level mutex is held again on return.
    pub(crate) fn condvar_wait(&self, t: usize, cv: usize, m: usize) {
        // Yield *before* the atomic release-and-sleep so other threads can
        // be interleaved ahead of it (the missed-wakeup window).
        self.yield_point(t);
        let mut st = self.lock();
        st.mutexes[m] = false;
        for s in st.threads.iter_mut() {
            if *s == Status::BlockedMutex(m) {
                *s = Status::Runnable;
            }
        }
        st.threads[t] = Status::BlockedCondvar(cv);
        self.switch(&mut st, t, false);
        st = self.wait_my_turn(st, t);
        // Notified: reacquire the mutex.
        loop {
            if !st.mutexes[m] {
                st.mutexes[m] = true;
                return;
            }
            st.threads[t] = Status::BlockedMutex(m);
            self.switch(&mut st, t, false);
            st = self.wait_my_turn(st, t);
        }
    }

    /// Wake every waiter of condvar `cv` (yield point).
    pub(crate) fn notify_all(&self, t: usize, cv: usize) {
        self.yield_point(t);
        let mut st = self.lock();
        for s in st.threads.iter_mut() {
            if *s == Status::BlockedCondvar(cv) {
                *s = Status::Runnable;
            }
        }
        self.turn.notify_all();
    }

    /// Wake one waiter of condvar `cv` (yield point); *which* waiter is a
    /// scheduling decision, so every wake order is explored.
    pub(crate) fn notify_one(&self, t: usize, cv: usize) {
        self.yield_point(t);
        let mut st = self.lock();
        let waiters: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == Status::BlockedCondvar(cv))
            .map(|(i, _)| i)
            .collect();
        if waiters.is_empty() {
            return; // notifications are not queued (lost-wakeup semantics)
        }
        let woken = if waiters.len() == 1 {
            waiters[0]
        } else {
            waiters[Self::choose(&mut st, waiters.len() as u8) as usize]
        };
        st.threads[woken] = Status::Runnable;
        self.turn.notify_all();
    }

    /// Block until `target` finishes.
    pub(crate) fn join_thread(&self, t: usize, target: usize) {
        let mut st = self.lock();
        if st.abort {
            drop(st);
            panic::panic_any(AbortRun);
        }
        while st.threads[target] != Status::Finished {
            st.threads[t] = Status::BlockedJoin(target);
            self.switch(&mut st, t, false);
            st = self.wait_my_turn(st, t);
        }
    }

    /// Mark `t` finished, wake its joiners and hand the token onwards.
    pub(crate) fn finish_thread(&self, t: usize) {
        let mut st = self.lock();
        st.threads[t] = Status::Finished;
        st.live -= 1;
        for s in st.threads.iter_mut() {
            if *s == Status::BlockedJoin(t) {
                *s = Status::Runnable;
            }
        }
        if st.live == 0 {
            self.done.notify_all();
            self.turn.notify_all();
        } else {
            self.switch(&mut st, t, false);
        }
    }

    /// Record a violation (first one wins) and tear the run down.
    pub(crate) fn fail(&self, t: usize, message: String) {
        let mut st = self.lock();
        st.failure.get_or_insert(format!("thread {t}: {message}"));
        st.abort = true;
        self.turn.notify_all();
        self.done.notify_all();
    }

    /// Block until every registered thread has finished.
    fn wait_done(&self) {
        let mut st = self.lock();
        while st.live > 0 {
            st = self.done.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }
}

// ---------------------------------------------------------------------------
// Per-thread context: how the sync/thread shims find their scheduler.
// ---------------------------------------------------------------------------

use std::cell::RefCell;
use std::sync::Arc;

pub(crate) struct Ctx {
    pub(crate) ctrl: Arc<Controller>,
    pub(crate) id: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// Run `f` with the current model-thread context.
///
/// # Panics
///
/// Panics when called outside a model run — the shims only work under
/// [`crate::Model::check`].
pub(crate) fn with_ctx<R>(f: impl FnOnce(&Ctx) -> R) -> R {
    CTX.with(|ctx| {
        let ctx = ctx.borrow();
        let ctx = ctx.as_ref().expect(
            "tstream-check sync primitive used outside Model::check \
             (model code must run inside the controlled scheduler)",
        );
        f(ctx)
    })
}

/// Body of every model OS thread: install the context, wait to be scheduled,
/// run the payload, and report the outcome to the controller.
pub(crate) fn thread_main(ctrl: Arc<Controller>, id: usize, body: impl FnOnce()) {
    CTX.with(|ctx| {
        *ctx.borrow_mut() = Some(Ctx {
            ctrl: Arc::clone(&ctrl),
            id,
        })
    });
    ctrl.first_turn(id);
    let result = panic::catch_unwind(panic::AssertUnwindSafe(body));
    CTX.with(|ctx| *ctx.borrow_mut() = None);
    match result {
        Ok(()) => {}
        Err(payload) if payload.is::<AbortRun>() => {}
        Err(payload) => ctrl.fail(id, payload_message(payload.as_ref())),
    }
    ctrl.finish_thread(id);
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// Drive one schedule: run the model closure as thread 0 under a fresh
/// controller, wait for every model thread to finish, and collect the
/// decision path and any failure.
pub(crate) fn run_once(
    f: Arc<dyn Fn() + Send + Sync>,
    prefix: Vec<u8>,
    preemption_bound: usize,
) -> RunOutcome {
    let ctrl = Arc::new(Controller::new(prefix, preemption_bound));
    let root = ctrl.register_thread();
    debug_assert_eq!(root, 0);
    let c2 = Arc::clone(&ctrl);
    let driver = std::thread::Builder::new()
        .name("check-0".into())
        .spawn(move || thread_main(c2, 0, move || f()))
        .expect("spawning the model root thread");
    ctrl.wait_done();
    let _ = driver.join();
    for handle in ctrl
        .os_handles
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .drain(..)
    {
        let _ = handle.join();
    }
    let st = ctrl.lock();
    RunOutcome {
        path: st.path.clone(),
        failure: st.failure.clone(),
    }
}
