//! Model of the `ExecutorPool` session-multiplexing scheduler
//! (`crates/core/src/runtime.rs`): bounded per-session staging queues, the
//! single-injector role handed off under the scheduler lock, and atomic
//! batch injection.
//!
//! The checked invariant is the one PR 5's no-deadlock argument rests on:
//! **every batch's jobs reach all executor queues before any later batch's**
//! — equivalently, each executor queue observes the same global injection
//! order, which is what keeps every session's `CyclicBarrier` in lockstep
//! and makes cross-session barrier deadlock impossible.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::sync::{Condvar, Mutex};
use crate::thread;

/// Which variant of the injector protocol to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectorVariant {
    /// The shipped protocol.
    Correct,
    /// Drops the `injecting` flag: any thread with staged work injects
    /// immediately, so two batches' per-executor pushes can interleave and
    /// the executor queues diverge — the atomicity violation.
    NoInjectorRole,
    /// `pump` makes progress (pops staged batches, releases the injector
    /// role) without ever signalling `progress`: a stager parked on its
    /// full staging queue misses the wakeup and sleeps forever — the
    /// lost-notify deadlock one careless edit away from the real `pump`.
    PumpWithoutProgressNotify,
}

/// One staged batch: identified globally, destined for every executor.
type BatchId = u32;

struct Slot {
    token: usize,
    staged: VecDeque<BatchId>,
    capacity: usize,
}

struct SchedState {
    slots: Vec<Slot>,
    cursor: usize,
    injecting: bool,
}

/// Executor-side observation used to check the atomic-injection invariant.
struct ExecState {
    /// Global order in which batch injections started.
    injection_order: Vec<BatchId>,
    /// Jobs each executor queue has received, in arrival order.
    queues: Vec<Vec<BatchId>>,
}

/// The model scheduler (see [`InjectorVariant`]).
pub struct ModelPool {
    variant: InjectorVariant,
    state: Mutex<SchedState>,
    progress: Condvar,
    exec: Mutex<ExecState>,
    executors: usize,
}

impl ModelPool {
    /// A pool with `executors` executor queues and no registered sessions.
    pub fn new(executors: usize, variant: InjectorVariant) -> Self {
        ModelPool {
            variant,
            state: Mutex::new(SchedState {
                slots: Vec::new(),
                cursor: 0,
                injecting: false,
            }),
            progress: Condvar::new(),
            exec: Mutex::new(ExecState {
                injection_order: Vec::new(),
                queues: vec![Vec::new(); executors],
            }),
            executors,
        }
    }

    /// Register a session with a staging queue of `capacity` batches.
    pub fn register_session(&self, capacity: usize) -> usize {
        let mut state = self.state.lock();
        let token = state.slots.len();
        state.slots.push(Slot {
            token,
            staged: VecDeque::new(),
            capacity: capacity.max(1),
        });
        token
    }

    /// Stage one batch, blocking (per-session backpressure) while this
    /// session's staging queue is full.  Mirrors `ExecutorPool::stage`.
    pub fn stage(&self, token: usize, batch: BatchId) {
        let mut batch = Some(batch);
        loop {
            {
                let mut state = self.state.lock();
                let slot = state
                    .slots
                    .iter_mut()
                    .find(|s| s.token == token)
                    .expect("session registered");
                if slot.staged.len() < slot.capacity {
                    slot.staged.push_back(batch.take().expect("staged once"));
                } else if state.injecting {
                    self.progress.wait(&mut state);
                    continue;
                }
            }
            if batch.is_none() {
                break;
            }
            self.pump();
        }
        self.pump();
    }

    /// Inject every staged batch of `token`'s session (driving other
    /// sessions' batches along the way).  Mirrors
    /// `ExecutorPool::drain_staged`.
    pub fn drain_staged(&self, token: usize) {
        loop {
            self.pump();
            let mut state = self.state.lock();
            let empty = state
                .slots
                .iter()
                .find(|s| s.token == token)
                .expect("session registered")
                .staged
                .is_empty();
            if empty {
                return;
            }
            if !state.injecting {
                continue;
            }
            self.progress.wait(&mut state);
        }
    }

    /// Drive the injector role (mirrors `ExecutorPool::pump`): pop staged
    /// batches round-robin and push each batch's job to every executor
    /// queue, asserting the atomic-injection invariant on every push.
    fn pump(&self) {
        loop {
            let batch = {
                let mut state = self.state.lock();
                if self.variant != InjectorVariant::NoInjectorRole && state.injecting {
                    return;
                }
                let Some(batch) = Self::pop_next(&mut state) else {
                    return;
                };
                state.injecting = true;
                batch
            };
            if self.variant != InjectorVariant::PumpWithoutProgressNotify {
                // Staging space was freed by the pop: let blocked stagers in.
                self.progress.notify_all();
            }
            {
                let mut exec = self.exec.lock();
                exec.injection_order.push(batch);
            }
            for e in 0..self.executors {
                // An executor-queue push can block on backpressure in the
                // real pool; model the preemption window it opens.
                thread::yield_now();
                let mut exec = self.exec.lock();
                exec.queues[e].push(batch);
                let seen = exec.queues[e].len();
                assert_eq!(
                    exec.queues[e][..],
                    exec.injection_order[..seen],
                    "executor {e} observed a batch order diverging from the \
                     global injection order: batch injection was not atomic"
                );
            }
            self.state.lock().injecting = false;
            if self.variant != InjectorVariant::PumpWithoutProgressNotify {
                self.progress.notify_all();
            }
        }
    }

    fn pop_next(state: &mut SchedState) -> Option<BatchId> {
        let n = state.slots.len();
        for i in 0..n {
            let idx = (state.cursor + i) % n;
            if let Some(batch) = state.slots[idx].staged.pop_front() {
                state.cursor = (idx + 1) % n;
                return Some(batch);
            }
        }
        None
    }

    /// Post-run audit: every executor queue received every injected batch
    /// in the one global order.
    pub fn assert_all_delivered(&self, expected_batches: usize) {
        let exec = self.exec.lock();
        assert_eq!(exec.injection_order.len(), expected_batches);
        for (e, queue) in exec.queues.iter().enumerate() {
            assert_eq!(
                queue[..],
                exec.injection_order[..],
                "executor {e} missed or reordered batches"
            );
        }
    }
}

/// Scenario: two sessions staged from two threads over `executors` executor
/// queues, `batches_per_session` batches each with staging capacity 1 (so
/// the backpressure path and the injector hand-off are both exercised),
/// then drained.  The atomic-injection invariant is asserted on every push
/// and the delivery audit at the end; a wedged hand-off surfaces as a
/// detected deadlock.
pub fn handoff_scenario(executors: usize, batches_per_session: u32, variant: InjectorVariant) {
    let pool = Arc::new(ModelPool::new(executors, variant));
    let a = pool.register_session(1);
    let b = pool.register_session(1);
    let p2 = Arc::clone(&pool);
    let t = thread::spawn(move || {
        for batch in 0..batches_per_session {
            p2.stage(b, 100 + batch);
        }
        p2.drain_staged(b);
    });
    for batch in 0..batches_per_session {
        pool.stage(a, batch);
    }
    pool.drain_staged(a);
    t.join();
    pool.drain_staged(a);
    pool.drain_staged(b);
    pool.assert_all_delivered(2 * batches_per_session as usize);
}
