//! Model of `tstream_stream::CyclicBarrier`: generation-counted reusable
//! barrier with poison, plus two deliberately buggy variants the checker
//! must catch.

use crate::sync::{Condvar, Mutex};

/// Which variant of the barrier protocol to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierVariant {
    /// The shipped protocol: a generation counter separates rounds, and
    /// waiters re-check the poison flag every time they wake.
    Correct,
    /// The classic broken barrier: waiters block on `waiting != 0` with no
    /// generation counter.  A party that laps the barrier and re-arrives
    /// before a slow waiter wakes re-raises `waiting`, sending the slow
    /// waiter back to sleep on a round that already completed — deadlock.
    NoGeneration,
    /// The poison-ordering bug: `wait` checks the poison flag only on
    /// entry, not after waking.  A poison delivered *while* a party is
    /// blocked wakes it, it sees an unchanged generation, and it goes back
    /// to sleep forever — the exact lost-wakeup the production code's
    /// post-wake re-check (`barrier.rs`) exists to prevent.
    PoisonCheckOnEntryOnly,
}

#[derive(Debug)]
struct BarrierState {
    waiting: usize,
    generation: u64,
    poisoned: bool,
}

/// A model cyclic barrier (see [`BarrierVariant`] for the protocol knobs).
#[derive(Debug)]
pub struct ModelBarrier {
    parties: usize,
    variant: BarrierVariant,
    state: Mutex<BarrierState>,
    cond: Condvar,
}

impl ModelBarrier {
    /// A barrier for `parties` participants running `variant`.
    pub fn new(parties: usize, variant: BarrierVariant) -> Self {
        Self::with_generation(parties, variant, 0)
    }

    /// Like [`ModelBarrier::new`] but starting at an arbitrary generation —
    /// used to model the `u64::MAX` wraparound round.
    pub fn with_generation(parties: usize, variant: BarrierVariant, generation: u64) -> Self {
        ModelBarrier {
            parties: parties.max(1),
            variant,
            state: Mutex::new(BarrierState {
                waiting: 0,
                generation,
                poisoned: false,
            }),
            cond: Condvar::new(),
        }
    }

    /// Wait for all parties; returns whether this caller was the leader
    /// (the last arriver).  Mirrors the production `CyclicBarrier::wait`
    /// minus the timing attribution.
    ///
    /// # Panics
    ///
    /// Panics when the barrier is poisoned (in the variants that check).
    pub fn wait(&self) -> bool {
        let mut state = self.state.lock();
        assert!(!state.poisoned, "cyclic barrier poisoned");
        state.waiting += 1;
        if state.waiting == self.parties {
            state.waiting = 0;
            state.generation = state.generation.wrapping_add(1);
            drop(state);
            self.cond.notify_all();
            true
        } else if self.variant == BarrierVariant::NoGeneration {
            // Broken: "the round is over when nobody is waiting" confuses
            // this round's completion with the next round's arrivals.
            while state.waiting != 0 {
                self.cond.wait(&mut state);
                if self.variant != BarrierVariant::PoisonCheckOnEntryOnly {
                    assert!(!state.poisoned, "cyclic barrier poisoned");
                }
            }
            false
        } else {
            let generation = state.generation;
            while state.generation == generation {
                self.cond.wait(&mut state);
                if self.variant != BarrierVariant::PoisonCheckOnEntryOnly {
                    assert!(!state.poisoned, "cyclic barrier poisoned");
                }
            }
            false
        }
    }

    /// Poison the barrier: wake every waiter and make every current and
    /// future `wait` panic instead of blocking on a dead participant.
    pub fn poison(&self) {
        let mut state = self.state.lock();
        state.poisoned = true;
        drop(state);
        self.cond.notify_all();
    }

    /// Whether the barrier is poisoned.
    pub fn is_poisoned(&self) -> bool {
        self.state.lock().poisoned
    }
}

/// Scenario: `parties` threads cross the barrier `rounds` times, with a
/// shared phase counter asserting lockstep — between round `n`'s two
/// crossings every thread observes exactly the phase the round-`n` leader
/// published, and exactly one leader emerges per generation.
///
/// With [`BarrierVariant::NoGeneration`] the checker finds the
/// re-entrancy deadlock; the correct variant passes exhaustively.
pub fn lockstep_scenario(parties: usize, rounds: usize, variant: BarrierVariant) {
    use crate::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    let barrier = Arc::new(ModelBarrier::new(parties, variant));
    let phase = Arc::new(AtomicUsize::new(0));
    let leaders = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..parties.saturating_sub(1))
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            let phase = Arc::clone(&phase);
            let leaders = Arc::clone(&leaders);
            crate::thread::spawn(move || run_party(&barrier, &phase, &leaders, rounds))
        })
        .collect();
    run_party(&barrier, &phase, &leaders, rounds);
    for h in handles {
        h.join();
    }
    assert_eq!(
        leaders.load(Ordering::SeqCst),
        rounds,
        "exactly one leader per generation"
    );
    assert_eq!(phase.load(Ordering::SeqCst), rounds, "all rounds completed");
}

fn run_party(
    barrier: &ModelBarrier,
    phase: &crate::sync::atomic::AtomicUsize,
    leaders: &crate::sync::atomic::AtomicUsize,
    rounds: usize,
) {
    use crate::sync::atomic::Ordering;
    for round in 0..rounds {
        if barrier.wait() {
            leaders.fetch_add(1, Ordering::SeqCst);
            phase.store(round + 1, Ordering::SeqCst);
        }
        let seen = phase.load(Ordering::SeqCst);
        assert!(
            seen == round || seen == round + 1,
            "phase {seen} observed in round {round}: a waiter escaped its generation"
        );
        barrier.wait();
        assert_eq!(
            phase.load(Ordering::SeqCst),
            round + 1,
            "between round {round}'s two crossings the leader's phase must be visible"
        );
    }
}

/// Scenario: the generation counter sits at `u64::MAX` and must release the
/// wraparound round like any other.
pub fn wraparound_scenario(variant: BarrierVariant) {
    use std::sync::Arc;

    let barrier = Arc::new(ModelBarrier::with_generation(2, variant, u64::MAX));
    let b2 = Arc::clone(&barrier);
    let t = crate::thread::spawn(move || {
        b2.wait();
        b2.wait();
    });
    barrier.wait();
    barrier.wait();
    t.join();
}

/// Scenario: one party dies instead of arriving and poisons the barrier
/// while the other is (or is about to be) blocked.  Every schedule must end
/// with the waiter *waking and panicking* — in the
/// [`BarrierVariant::PoisonCheckOnEntryOnly`] variant the wake is lost and
/// the checker reports the deadlock.
pub fn poison_scenario(variant: BarrierVariant) {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;

    let barrier = Arc::new(ModelBarrier::new(2, variant));
    let b2 = Arc::clone(&barrier);
    let waiter =
        crate::thread::spawn(move || catch_unwind(AssertUnwindSafe(|| b2.wait())).is_err());
    barrier.poison();
    assert!(
        waiter.join(),
        "a blocked waiter must observe the poison as a panic, not hang"
    );
    assert!(barrier.is_poisoned());
    let late = catch_unwind(AssertUnwindSafe(|| barrier.wait()));
    assert!(late.is_err(), "late arrivals must panic too");
}
