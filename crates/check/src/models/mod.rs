//! Executable models of the runtime's hand-written sync protocols.
//!
//! Each submodule reimplements one production protocol against the
//! [`crate::sync`] / [`crate::thread`] shims — close enough to the real code
//! that the model *is* the safety argument — plus, where instructive, a
//! deliberately buggy variant that the checker must catch.  The variants
//! keep the history of "bugs this protocol is one careless edit away from"
//! executable: a self-test proving the checker finds each bug is regression
//! cover for both the checker and the protocol.
//!
//! | module | production code | checked property |
//! |---|---|---|
//! | [`barrier`] | `tstream_stream::CyclicBarrier` | lockstep release, one leader per generation, wraparound, poison wakes everyone |
//! | [`injector`] | `ExecutorPool` scheduler (`crates/core/src/runtime.rs`) | atomic batch injection: every batch reaches all executor queues before any later batch |
//! | [`backpressure`] | per-session staging queues | bounded staging never overfills and never wedges |
//! | [`wal`] | `SegmentedWal` seal/poison + `Checkpointer` gating | checkpoints never cover an unsealed epoch; appends refused after seal failure |
//! | [`groupcommit`] | `DurableLog` group-commit pipeline (`crates/recovery/src/coordinator.rs`) | one window in flight; acks never outrun the covering sync; seal drains before the marker |
//! | [`ship`] | replication shipping handoff (`crates/replica`) | ack only after durable receipt + apply; truncation clamped to the acked floor; promote drains in-flight epochs |

pub mod backpressure;
pub mod barrier;
pub mod groupcommit;
pub mod injector;
pub mod ship;
pub mod wal;
