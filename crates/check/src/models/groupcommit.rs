//! Model of the WAL group-commit ack pipeline
//! (`DurableLog::submit_window` / `drain_in_flight` / `seal` in
//! `crates/recovery/src/coordinator.rs`): the ingestion thread buffers
//! frames and hands full windows to the WAL-writer thread, with at most one
//! window in flight; an event counts as acked-durable only once its
//! covering window's sync completed; and a seal must drain the pipeline
//! before the marker lands, or event frames would sit *behind* the seal
//! marker — a tail layout crash recovery cannot parse.

use std::sync::Arc;

use crate::sync::{Condvar, Mutex};
use crate::thread;

/// Which variant of the group-commit pipeline to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupCommitVariant {
    /// The shipped ordering: submit drains the previous window first, acks
    /// only what the writer has durably committed, and seal drains the
    /// whole pipeline before the marker is written.
    Correct,
    /// Acks a window's events at submission time, before the writer's
    /// sync completed — a crash between submit and commit then loses events
    /// the caller was told are durable.
    AckOnSubmit,
    /// Skips the drain before submitting the next window, putting two
    /// windows in flight at once — their `write` calls can interleave on
    /// the shared segment file.
    SubmitWithoutDrain,
    /// Writes the seal marker without draining the in-flight window, so the
    /// writer appends event frames *behind* the marker.
    SealWithoutDrain,
}

#[derive(Debug, Default)]
struct GroupState {
    /// Windows handed to the writer.
    submitted: u64,
    /// Windows the writer has durably committed (write + sync done).
    completed: u64,
    /// Events covered by committed windows — what a crash preserves.
    durable_events: u64,
    /// Events the ingestion side has reported as acked-durable.
    acked_events: u64,
    /// Event counts of windows queued for the writer, oldest first.
    queue: Vec<u64>,
    /// Set once the seal marker is written.
    sealed: bool,
}

/// The model pipeline (see [`GroupCommitVariant`]).
pub struct ModelGroupCommit {
    variant: GroupCommitVariant,
    state: Mutex<GroupState>,
    cv: Condvar,
}

impl ModelGroupCommit {
    /// A fresh pipeline with nothing in flight.
    pub fn new(variant: GroupCommitVariant) -> Self {
        ModelGroupCommit {
            variant,
            state: Mutex::new(GroupState::default()),
            cv: Condvar::new(),
        }
    }

    /// Wait until every submitted window has committed.  The returned guard
    /// keeps the state locked so the caller's follow-up (ack, submit, seal)
    /// is atomic with the drained observation — mirroring how the
    /// production code holds the progress mutex across the check.
    fn drain(&self) -> crate::sync::MutexGuard<'_, GroupState> {
        let mut state = self.state.lock();
        while state.completed < state.submitted {
            self.cv.wait(&mut state);
        }
        state
    }

    /// Hand a full window of `events` frames to the writer thread.
    pub fn submit_window(&self, events: u64) {
        let mut state = if self.variant == GroupCommitVariant::SubmitWithoutDrain {
            self.state.lock()
        } else {
            let mut drained = self.drain();
            // Everything the writer committed is now safely synced: the
            // events of every drained window may be acked.
            drained.acked_events = drained.durable_events;
            drained
        };
        if self.variant == GroupCommitVariant::AckOnSubmit {
            // Buggy: tell the caller the window is durable before the
            // writer has even seen it.
            state.acked_events += events;
        }
        state.submitted += 1;
        state.queue.push(events);
        assert!(
            state.submitted - state.completed <= 1,
            "two group-commit windows in flight at once: their segment \
             writes can interleave"
        );
        self.cv.notify_all();
    }

    /// Seal the segment: drain the pipeline, then write the marker and ack
    /// the remainder.
    pub fn seal(&self) {
        let mut state = if self.variant == GroupCommitVariant::SealWithoutDrain {
            self.state.lock()
        } else {
            self.drain()
        };
        state.sealed = true;
        // The seal's own sync covers every frame already on the file.
        state.acked_events = state.durable_events;
        self.cv.notify_all();
    }

    /// The WAL-writer thread: commit `windows` windows, in order.
    pub fn writer_loop(&self, windows: u64) {
        for _ in 0..windows {
            let mut state = self.state.lock();
            while state.queue.is_empty() {
                self.cv.wait(&mut state);
            }
            let events = state.queue.remove(0);
            assert!(
                !state.sealed,
                "window committed after the seal marker: event frames land \
                 behind the marker and recovery cannot parse the tail"
            );
            state.durable_events += events;
            state.completed += 1;
            self.cv.notify_all();
        }
    }

    /// The crash probe: at any instant, every acked event must already be
    /// covered by a completed (synced) window.
    pub fn probe(&self) {
        let state = self.state.lock();
        assert!(
            state.acked_events <= state.durable_events,
            "{} events acked but only {} durable: an ack preceded the \
             covering group sync",
            state.acked_events,
            state.durable_events
        );
    }
}

/// Scenario: the ingestion thread pushes two full windows and seals, the
/// WAL-writer thread commits them, and the root thread probes the crash
/// invariant throughout.  Checks, across every interleaving: at most one
/// window is in flight, acks never outrun the covering sync, and no frame
/// commits behind the seal marker.
pub fn group_commit_scenario(variant: GroupCommitVariant) {
    let log = Arc::new(ModelGroupCommit::new(variant));
    let writer = {
        let log = Arc::clone(&log);
        thread::spawn(move || log.writer_loop(2))
    };
    let ingest = {
        let log = Arc::clone(&log);
        thread::spawn(move || {
            log.submit_window(2);
            log.submit_window(3);
            log.seal();
        })
    };
    // The probe races both threads; every interleaving against the ack and
    // commit steps is explored.
    log.probe();
    log.probe();
    ingest.join();
    writer.join();
    log.probe();
    let state = log.state.lock();
    assert_eq!(state.durable_events, 5, "both windows committed");
    assert_eq!(state.acked_events, 5, "the seal acked the full segment");
    assert!(state.sealed);
}
