//! Model of a per-session backpressure queue: the bounded staging channel a
//! session's ingestion thread pushes completed punctuation batches into and
//! the injector drains (and, in the same shape, the bounded per-executor job
//! queues of `ExecutorPool`).
//!
//! Checked properties: the bound is never exceeded, nothing is lost or
//! reordered, and neither side wedges (a lost wakeup surfaces as a detected
//! deadlock).

use std::collections::VecDeque;
use std::sync::Arc;

use crate::sync::{Condvar, Mutex};
use crate::thread;

/// Which variant of the bounded queue to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueVariant {
    /// The shipped shape: state under one mutex, `not_full` / `not_empty`
    /// condvars, wait loops re-checking their predicate.
    Correct,
    /// `push` checks the bound with `if` instead of `while`: a woken
    /// producer pushes without re-checking and overfills the queue when the
    /// wakeup raced another producer — the classic check-then-act bug.
    IfInsteadOfWhile,
    /// `pop` forgets to signal `not_full`: a producer blocked on a full
    /// queue sleeps forever once the consumer drains it — lost wakeup,
    /// detected as a deadlock.
    PopWithoutNotify,
}

/// A bounded FIFO with blocking push/pop (see [`QueueVariant`]).
pub struct ModelQueue {
    variant: QueueVariant,
    capacity: usize,
    state: Mutex<VecDeque<u32>>,
    not_full: Condvar,
    not_empty: Condvar,
}

impl ModelQueue {
    /// A queue bounded to `capacity` items.
    pub fn new(capacity: usize, variant: QueueVariant) -> Self {
        ModelQueue {
            variant,
            capacity: capacity.max(1),
            state: Mutex::new(VecDeque::new()),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Blocking push; asserts the bound (the backpressure contract).
    pub fn push(&self, item: u32) {
        let mut q = self.state.lock();
        if self.variant == QueueVariant::IfInsteadOfWhile {
            if q.len() >= self.capacity {
                self.not_full.wait(&mut q);
            }
        } else {
            while q.len() >= self.capacity {
                self.not_full.wait(&mut q);
            }
        }
        assert!(
            q.len() < self.capacity,
            "bounded queue overfilled: backpressure bound violated"
        );
        q.push_back(item);
        drop(q);
        self.not_empty.notify_one();
    }

    /// Blocking pop.
    pub fn pop(&self) -> u32 {
        let mut q = self.state.lock();
        while q.is_empty() {
            self.not_empty.wait(&mut q);
        }
        let item = q.pop_front().expect("non-empty after wait");
        drop(q);
        if self.variant != QueueVariant::PopWithoutNotify {
            self.not_full.notify_one();
        }
        item
    }
}

/// Scenario: `producers` producer threads push `items_each` items through a
/// capacity-1 queue; the root thread consumes them all.  Checks the bound
/// on every push, FIFO order per producer on the consumer side, and
/// completion (a lost wakeup deadlocks and is reported by the checker).
pub fn producer_consumer_scenario(producers: usize, items_each: u32, variant: QueueVariant) {
    let queue = Arc::new(ModelQueue::new(1, variant));
    let handles: Vec<_> = (0..producers)
        .map(|p| {
            let queue = Arc::clone(&queue);
            thread::spawn(move || {
                for i in 0..items_each {
                    queue.push(p as u32 * 1_000 + i);
                }
            })
        })
        .collect();
    let total = producers as u32 * items_each;
    let mut last_per_producer = vec![None::<u32>; producers];
    for _ in 0..total {
        let item = queue.pop();
        let producer = (item / 1_000) as usize;
        let seq = item % 1_000;
        if let Some(prev) = last_per_producer[producer] {
            assert!(
                seq > prev,
                "items of one producer were reordered: {seq} after {prev}"
            );
        }
        last_per_producer[producer] = Some(seq);
    }
    for h in handles {
        h.join();
    }
}
