//! Model of the WAL writer's seal/poison protocol and the
//! checkpoint-after-seal ordering (`crates/recovery`): a segment seal that
//! fails must poison the writer (no further appends, no new segment), and a
//! checkpoint must never cover an epoch whose seal has not durably
//! completed — otherwise recovery's floor is raised past an unsealed tail
//! and replay forks from the results already reported live.

use std::sync::Arc;

use crate::sync::Mutex;
use crate::thread;

/// Which variant of the WAL protocol to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalVariant {
    /// The shipped ordering: an epoch is published to the checkpointer only
    /// after its seal marker is durably written, and a failed seal poisons
    /// the writer before anything is published.
    Correct,
    /// Publishes the sealed epoch *before* the seal marker write completes
    /// (e.g. bumping the in-memory counter first "to keep it close to the
    /// increment").  A concurrently running checkpointer can then stamp a
    /// manifest covering an epoch whose seal subsequently fails.
    PublishBeforeSealCompletes,
    /// A failed seal reports the error but forgets to poison the writer, so
    /// later appends land in a segment after the torn tail — exactly the
    /// state crash recovery cannot reproduce.
    SealFailureWithoutPoison,
}

#[derive(Debug, Default)]
struct WalState {
    /// Highest epoch whose seal marker is durably on disk.
    durable_sealed: u64,
    /// Highest epoch advertised to the checkpointer.
    published_sealed: u64,
    /// Set when a seal fails: the writer refuses further appends.
    poisoned: bool,
    /// Highest epoch a checkpoint manifest claims to cover.
    checkpointed: u64,
}

/// The model WAL writer + checkpointer gate (see [`WalVariant`]).
pub struct ModelWal {
    variant: WalVariant,
    state: Mutex<WalState>,
}

impl ModelWal {
    /// A fresh writer at epoch 0.
    pub fn new(variant: WalVariant) -> Self {
        ModelWal {
            variant,
            state: Mutex::new(WalState::default()),
        }
    }

    /// Append an event frame to the open segment.  Returns whether the
    /// append was accepted; a poisoned writer must refuse.
    pub fn append(&self) -> bool {
        let state = self.state.lock();
        !state.poisoned
    }

    /// Seal the current segment as `epoch`.  `fail` injects a write error
    /// at the marker write (the disk-full / torn-write case PR 4 hardened
    /// against).  Returns whether the seal succeeded.
    pub fn seal(&self, epoch: u64, fail: bool) -> bool {
        if self.variant == WalVariant::PublishBeforeSealCompletes {
            // Buggy: advertise the epoch before the marker is durable.
            let mut state = self.state.lock();
            if state.poisoned {
                return false;
            }
            state.published_sealed = epoch;
        }
        // The marker write happens outside the state lock (it is real I/O in
        // production); the lock drop is the window a checkpoint can race into.
        {
            let mut state = self.state.lock();
            if state.poisoned {
                return false;
            }
            if fail {
                if self.variant != WalVariant::SealFailureWithoutPoison {
                    state.poisoned = true;
                }
                return false;
            }
            state.durable_sealed = epoch;
            if self.variant != WalVariant::PublishBeforeSealCompletes {
                state.published_sealed = epoch;
            }
        }
        true
    }

    /// The checkpointer: stamp a manifest covering the newest advertised
    /// epoch.  The invariant checked is the production gate — a manifest
    /// must never raise the recovery floor past an unsealed tail.
    pub fn checkpoint(&self) {
        let mut state = self.state.lock();
        let epoch = state.published_sealed;
        if epoch > state.checkpointed {
            assert!(
                epoch <= state.durable_sealed,
                "checkpoint covers epoch {epoch} but only {} is durably \
                 sealed: recovery floor raised past an unsealed tail",
                state.durable_sealed
            );
            state.checkpointed = epoch;
        }
    }
}

/// Scenario: an ingestion thread seals epoch 1, then appends into epoch 2
/// whose seal fails, while the root thread checkpoints concurrently.
/// Checks, across every interleaving: checkpoints only ever cover durably
/// sealed epochs, and after the failed seal the writer is poisoned (the
/// next append is refused and a retried seal does not resurrect the
/// segment).
pub fn seal_failure_scenario(variant: WalVariant) {
    let wal = Arc::new(ModelWal::new(variant));
    let w2 = Arc::clone(&wal);
    let ingest = thread::spawn(move || {
        assert!(w2.append(), "fresh writer accepts appends");
        assert!(w2.seal(1, false), "healthy seal succeeds");
        assert!(w2.append(), "writer stays open after a healthy seal");
        assert!(!w2.seal(2, true), "injected seal failure reports the error");
        assert!(
            !w2.append(),
            "append accepted after a failed seal: the writer must be poisoned"
        );
        assert!(
            !w2.seal(2, false),
            "a poisoned writer must not seal a new segment until reopened"
        );
    });
    // The checkpointer races the ingestion thread; every interleaving of
    // these probes against the seal steps is explored.
    wal.checkpoint();
    wal.checkpoint();
    ingest.join();
    wal.checkpoint();
    let state = wal.state.lock();
    assert!(
        state.checkpointed <= state.durable_sealed,
        "final manifest covers an unsealed epoch"
    );
}
