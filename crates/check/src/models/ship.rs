//! Model of the replication shipping handoff (`Shipper` /
//! `StandbyEngine` in `crates/replica`): the primary ships sealed epochs
//! over a transport, the standby mirrors then applies each one and only
//! then acknowledges, the primary's checkpoint truncation never outruns
//! the acknowledged floor (the retention pin), and a promote drains every
//! in-flight epoch before the standby becomes writable.
//!
//! Three invariants, each one careless edit away from a silent
//! data-loss bug:
//!
//! * **ack-after-durable-receipt** — an epoch is acknowledged only after
//!   the standby has durably mirrored *and* applied it; acking earlier
//!   lets the primary release retention for state the standby does not
//!   have yet;
//! * **no-truncate-before-ack** — checkpoint truncation is clamped to the
//!   acknowledged floor, so a lagging standby can always resume from the
//!   primary's directory;
//! * **promote-drains-inflight** — takeover first applies every shipped
//!   epoch; promoting earlier would open the new primary's WAL *on top
//!   of* sealed history it never executed.

use std::sync::Arc;

use crate::sync::{Condvar, Mutex};
use crate::thread;

/// Which variant of the shipping handoff to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShipVariant {
    /// The shipped ordering: mirror, apply, then ack; truncate only below
    /// the acked floor; promote waits until every shipped epoch applied.
    Correct,
    /// Acks an epoch at receipt, before the standby applied it — the
    /// primary may release retention for an epoch whose effects the
    /// standby does not have.
    AckBeforeApply,
    /// Truncates through the checkpointed epoch without clamping to the
    /// acked floor — exactly the pre-retention-pin truncation path.
    TruncateIgnoresAcks,
    /// Promotes without draining the in-flight queue, leaving shipped
    /// epochs unapplied behind the new primary's write position.
    PromoteWithoutDrain,
}

#[derive(Debug, Default)]
struct ShipState {
    /// Epochs the primary has shipped (0..shipped).
    shipped: u64,
    /// In-flight epochs, oldest first (the transport).
    queue: Vec<u64>,
    /// Epochs durably mirrored on the standby's disk.
    mirrored: u64,
    /// Epochs the standby has fully applied.
    applied: u64,
    /// Epochs the standby has acknowledged (0..acked).
    acked: u64,
    /// Epochs the primary has deleted (0..truncated): the retention
    /// outcome.
    truncated: u64,
    /// Set once the standby promoted to primary.
    promoted: bool,
}

/// The model handoff (see [`ShipVariant`]).
pub struct ModelShipping {
    variant: ShipVariant,
    state: Mutex<ShipState>,
    cv: Condvar,
}

impl ModelShipping {
    /// A fresh handoff with nothing shipped.
    pub fn new(variant: ShipVariant) -> Self {
        ModelShipping {
            variant,
            state: Mutex::new(ShipState::default()),
            cv: Condvar::new(),
        }
    }

    /// Primary: seal epoch `epoch` and hand it to the transport.
    pub fn ship_epoch(&self, epoch: u64) {
        let mut state = self.state.lock();
        state.queue.push(epoch);
        state.shipped += 1;
        self.cv.notify_all();
    }

    /// Primary: a checkpoint covering `epoch` became durable; truncate the
    /// now-redundant segments — clamped to the acknowledged floor, because
    /// an unacked segment is the standby's only way to catch up.
    pub fn checkpoint(&self, epoch: u64) {
        let mut state = self.state.lock();
        let through = if self.variant == ShipVariant::TruncateIgnoresAcks {
            // Buggy: the pre-pin path — everything the checkpoint covers
            // goes, acked or not.
            epoch + 1
        } else {
            (epoch + 1).min(state.acked)
        };
        if through > state.truncated {
            state.truncated = through;
        }
        assert!(
            state.truncated <= state.acked,
            "truncated a sealed segment the standby has not acknowledged: \
             a lagging standby can never resume"
        );
    }

    /// Standby: receive one epoch from the transport (durable mirror),
    /// then apply it; ack only after both.
    pub fn receive_and_apply(&self) {
        // Mirror: the epoch is durably on the standby's disk.
        let mut state = self.state.lock();
        while state.queue.is_empty() {
            self.cv.wait(&mut state);
        }
        state.queue.remove(0);
        state.mirrored += 1;
        if self.variant == ShipVariant::AckBeforeApply {
            // Buggy: acknowledge at receipt — the apply has not run.
            state.acked += 1;
        }
        drop(state);
        // Apply: replay the epoch through the session path (outside the
        // receive critical section, as in the real standby).
        let mut state = self.state.lock();
        state.applied += 1;
        if self.variant != ShipVariant::AckBeforeApply {
            state.acked += 1;
        }
        self.cv.notify_all();
    }

    /// Standby: take over as primary.  Drains the in-flight queue first —
    /// a shipped-but-unapplied epoch would be sealed on disk behind the
    /// new primary's write position and silently shadowed.
    pub fn promote(&self) {
        let mut state = self.state.lock();
        if self.variant != ShipVariant::PromoteWithoutDrain {
            while state.applied < state.shipped {
                self.cv.wait(&mut state);
            }
        }
        assert!(
            state.applied == state.shipped && state.queue.is_empty(),
            "promote left shipped epochs unapplied: the new primary would \
             shadow sealed history it never executed"
        );
        state.promoted = true;
    }

    /// The retention probe: at any instant, every acknowledged epoch must
    /// be durably mirrored *and* applied — the ack is what licenses the
    /// primary to truncate.
    pub fn probe(&self) {
        let state = self.state.lock();
        assert!(
            state.acked <= state.mirrored && state.acked <= state.applied,
            "epoch acked before the standby applied it ({} acked, {} \
             mirrored, {} applied): the primary may release retention the \
             standby still needs",
            state.acked,
            state.mirrored,
            state.applied
        );
    }
}

/// Scenario: the primary ships two epochs and checkpoints the second, the
/// standby receives/applies/acks both, and the root thread probes the
/// retention invariant throughout, then promotes the standby.  Checks,
/// across every interleaving: acks never precede the apply, truncation
/// never passes the acked floor, and promote drains the pipeline.
pub fn shipping_scenario(variant: ShipVariant) {
    let ship = Arc::new(ModelShipping::new(variant));
    let standby = {
        let ship = Arc::clone(&ship);
        thread::spawn(move || {
            ship.receive_and_apply();
            ship.receive_and_apply();
        })
    };
    let primary = {
        let ship = Arc::clone(&ship);
        thread::spawn(move || {
            ship.ship_epoch(0);
            ship.ship_epoch(1);
            ship.checkpoint(1);
        })
    };
    // The probe races both threads; every interleaving against the ship,
    // ack and truncate steps is explored.
    ship.probe();
    primary.join();
    // The primary is gone; takeover races the standby's replay.
    ship.promote();
    standby.join();
    ship.probe();
    let state = ship.state.lock();
    assert_eq!(state.applied, 2, "both epochs applied");
    assert_eq!(state.acked, 2, "both epochs acknowledged");
    assert!(state.truncated <= 2);
    assert!(state.promoted);
}
