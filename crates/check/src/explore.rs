//! Depth-first schedule exploration with a preemption bound, and seed
//! replay of individual schedules.

use std::fmt;
use std::sync::Arc;

use crate::sched::run_once;

/// A bounded model-checking configuration.
///
/// The defaults (preemption bound 2, 200k-schedule budget) complete in
/// seconds for the protocol models in [`crate::models`] while covering every
/// interleaving reachable with up to two preemptive context switches — the
/// bound at which, empirically (CHESS), almost all real concurrency bugs
/// already manifest.
#[derive(Debug, Clone)]
pub struct Model {
    preemption_bound: usize,
    max_schedules: u64,
}

impl Default for Model {
    fn default() -> Self {
        Model {
            preemption_bound: 2,
            max_schedules: 200_000,
        }
    }
}

/// Statistics of a completed exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Report {
    /// Number of schedules executed.
    pub schedules: u64,
    /// Whether the state space (within the preemption bound) was fully
    /// explored.  `false` only when the schedule budget ran out.
    pub complete: bool,
}

/// A failing schedule: what went wrong and the seed that replays it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Dot-separated branch choices; feed to [`Model::replay`].
    pub seed: String,
    /// The assertion or deadlock message.
    pub message: String,
    /// Schedules executed before this one failed.
    pub schedules: u64,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "model violation after {} schedule(s): {}\n  replay seed: {}\n  \
             (reproduce with Model::replay(\"{}\", model_fn))",
            self.schedules, self.message, self.seed, self.seed
        )
    }
}

impl std::error::Error for Violation {}

fn seed_string(path: &[(u8, u8)]) -> String {
    if path.is_empty() {
        return "-".to_owned();
    }
    path.iter()
        .map(|&(c, _)| c.to_string())
        .collect::<Vec<_>>()
        .join(".")
}

fn parse_seed(seed: &str) -> Vec<u8> {
    if seed == "-" || seed.is_empty() {
        return Vec::new();
    }
    seed.split('.')
        .map(|part| {
            part.parse::<u8>()
                .unwrap_or_else(|_| panic!("malformed schedule seed component `{part}`"))
        })
        .collect()
}

/// The deepest not-yet-exhausted branch point determines the next schedule:
/// replay every choice above it, take its next alternative, default below.
fn next_prefix(mut path: Vec<(u8, u8)>) -> Option<Vec<u8>> {
    while let Some((chosen, alternatives)) = path.pop() {
        if chosen + 1 < alternatives {
            let mut prefix: Vec<u8> = path.iter().map(|&(c, _)| c).collect();
            prefix.push(chosen + 1);
            return Some(prefix);
        }
    }
    None
}

impl Model {
    /// A model with the default bounds.
    pub fn new() -> Self {
        Model::default()
    }

    /// Sets the preemption bound: the maximum number of context switches
    /// away from a thread that could have continued, per schedule.  Forced
    /// switches (the running thread blocked or finished) are always free, so
    /// every model still runs to completion at bound 0.
    pub fn preemption_bound(mut self, bound: usize) -> Self {
        self.preemption_bound = bound;
        self
    }

    /// Sets the schedule budget after which exploration reports
    /// `complete: false` instead of running unbounded.
    pub fn max_schedules(mut self, budget: u64) -> Self {
        self.max_schedules = budget.max(1);
        self
    }

    /// Explores every schedule of `f` within the bounds.
    ///
    /// Returns the exploration [`Report`] on success, or the first
    /// [`Violation`] (with its replay seed) on failure.  Use this form in
    /// self-tests that *expect* a buggy protocol to fail.
    pub fn try_check<F>(&self, f: F) -> Result<Report, Violation>
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        let mut prefix = Vec::new();
        let mut schedules = 0u64;
        loop {
            let outcome = run_once(Arc::clone(&f), prefix, self.preemption_bound);
            schedules += 1;
            if let Some(message) = outcome.failure {
                return Err(Violation {
                    seed: seed_string(&outcome.path),
                    message,
                    schedules,
                });
            }
            match next_prefix(outcome.path) {
                None => {
                    return Ok(Report {
                        schedules,
                        complete: true,
                    })
                }
                Some(next) => prefix = next,
            }
            if schedules >= self.max_schedules {
                return Ok(Report {
                    schedules,
                    complete: false,
                });
            }
        }
    }

    /// Explores every schedule of `f` and panics on the first violation
    /// (printing its replay seed) or if the schedule budget was exhausted
    /// before the bounded state space was covered — an *exhaustive* check
    /// must never silently under-explore.
    pub fn check<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        match self.try_check(f) {
            Ok(report) => {
                assert!(
                    report.complete,
                    "exploration budget of {} schedules exhausted before the \
                     bounded state space was covered; raise max_schedules or \
                     simplify the model",
                    self.max_schedules
                );
                report
            }
            Err(violation) => panic!("{violation}"),
        }
    }

    /// Replays exactly one schedule from a printed seed.
    ///
    /// Returns `Err` with the reproduced [`Violation`] if that schedule
    /// still fails, `Ok(())` if it now passes (e.g. after a fix).
    pub fn replay<F>(&self, seed: &str, f: F) -> Result<(), Violation>
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        let outcome = run_once(f, parse_seed(seed), self.preemption_bound);
        match outcome.failure {
            Some(message) => Err(Violation {
                seed: seed_string(&outcome.path),
                message,
                schedules: 1,
            }),
            None => Ok(()),
        }
    }
}
