//! Self-tests of the model checker itself: known-buggy two-thread protocols
//! must be found within the preemption bound, known-correct ones must pass
//! exhaustively, failures must replay deterministically from their seed.

use std::sync::Arc;

use tstream_check::sync::atomic::{AtomicUsize, Ordering};
use tstream_check::sync::Mutex;
use tstream_check::{thread, Model};

/// The canonical lost-update race: two threads increment a counter with a
/// non-atomic load/store pair.  One preemption between the load and the
/// store loses an update; the checker must find it.
fn racy_increment() {
    let counter = Arc::new(AtomicUsize::new(0));
    let c2 = Arc::clone(&counter);
    let t = thread::spawn(move || {
        let v = c2.load(Ordering::SeqCst);
        c2.store(v + 1, Ordering::SeqCst);
    });
    let v = counter.load(Ordering::SeqCst);
    counter.store(v + 1, Ordering::SeqCst);
    t.join();
    assert_eq!(counter.load(Ordering::SeqCst), 2, "an increment was lost");
}

#[test]
fn lost_update_race_is_found_within_one_preemption() {
    let violation = Model::new()
        .preemption_bound(1)
        .try_check(racy_increment)
        .expect_err("the load/store race must be found");
    assert!(
        violation.message.contains("an increment was lost"),
        "unexpected violation: {violation}"
    );
}

#[test]
fn fetch_add_version_passes_exhaustively() {
    let report = Model::new().preemption_bound(2).check(|| {
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&counter);
        let t = thread::spawn(move || {
            c2.fetch_add(1, Ordering::SeqCst);
        });
        counter.fetch_add(1, Ordering::SeqCst);
        t.join();
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    });
    assert!(report.complete);
    assert!(
        report.schedules > 1,
        "two racing threads must produce more than one schedule"
    );
}

/// Mutexed increments can never lose an update, at any explored bound.
#[test]
fn mutexed_increments_pass_exhaustively() {
    let report = Model::new().preemption_bound(3).check(|| {
        let counter = Arc::new(Mutex::new(0u32));
        let c2 = Arc::clone(&counter);
        let t = thread::spawn(move || *c2.lock() += 1);
        *counter.lock() += 1;
        t.join();
        assert_eq!(*counter.lock(), 2);
    });
    assert!(report.complete);
}

fn abba_deadlock() {
    let a = Arc::new(Mutex::new(()));
    let b = Arc::new(Mutex::new(()));
    let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
    let t = thread::spawn(move || {
        let _b = b2.lock();
        let _a = a2.lock();
    });
    let _a = a.lock();
    let _b = b.lock();
    drop(_b);
    drop(_a);
    t.join();
}

#[test]
fn abba_deadlock_is_detected_and_named() {
    let violation = Model::new()
        .preemption_bound(1)
        .try_check(abba_deadlock)
        .expect_err("the ABBA deadlock must be found");
    assert!(
        violation.message.contains("deadlock"),
        "unexpected violation: {violation}"
    );
    assert!(
        violation.message.contains("blocked acquiring mutex"),
        "the report must say what each thread is blocked on: {violation}"
    );
}

#[test]
fn violations_replay_deterministically_from_their_seed() {
    let first = Model::new()
        .preemption_bound(1)
        .try_check(abba_deadlock)
        .expect_err("deadlock expected");
    // Exploration is deterministic: a second search finds the same schedule.
    let second = Model::new()
        .preemption_bound(1)
        .try_check(abba_deadlock)
        .expect_err("deadlock expected");
    assert_eq!(first, second, "exploration must be deterministic");
    // And the printed seed replays straight to the same failure.
    let replayed = Model::new()
        .preemption_bound(1)
        .replay(&first.seed, abba_deadlock)
        .expect_err("the seed must reproduce the deadlock");
    assert_eq!(replayed.message, first.message);
    // A correct protocol replayed on any seed-shaped prefix passes.
    Model::new()
        .preemption_bound(1)
        .replay("-", || {
            let m = Mutex::new(1u8);
            *m.lock() += 1;
        })
        .expect("a single-threaded model cannot fail");
}

/// A consumer waiting on a condvar whose producer forgets to notify is the
/// smallest lost-wakeup deadlock; it must be found even at bound 0 (the
/// failing schedule needs only forced switches).
#[test]
fn lost_condvar_wakeup_is_a_deadlock() {
    let violation = Model::new()
        .preemption_bound(0)
        .try_check(|| {
            let shared = Arc::new((Mutex::new(false), tstream_check::sync::Condvar::new()));
            let s2 = Arc::clone(&shared);
            let t = thread::spawn(move || {
                *s2.0.lock() = true; // sets the flag but never notifies
            });
            let (lock, cond) = &*shared;
            let mut ready = lock.lock();
            while !*ready {
                cond.wait(&mut ready);
            }
            drop(ready);
            t.join();
        })
        .expect_err("the missing notify must deadlock in some schedule");
    assert!(
        violation.message.contains("blocked waiting on condvar"),
        "unexpected violation: {violation}"
    );
}

/// The exploration honours its budget and reports incompleteness instead of
/// silently under-exploring.
#[test]
fn budget_exhaustion_is_reported_not_hidden() {
    let report = Model::new()
        .preemption_bound(8)
        .max_schedules(3)
        .try_check(|| {
            let c = Arc::new(AtomicUsize::new(0));
            let mk = |c: &Arc<AtomicUsize>| {
                let c = Arc::clone(c);
                thread::spawn(move || {
                    for _ in 0..4 {
                        c.fetch_add(1, Ordering::SeqCst);
                    }
                })
            };
            let (t1, t2) = (mk(&c), mk(&c));
            t1.join();
            t2.join();
        })
        .expect("no violation in a pure fetch_add model");
    assert!(
        !report.complete,
        "3 schedules cannot cover this state space"
    );
    assert_eq!(report.schedules, 3);
}
